"""Adversarial request-set search and runner-level failure injection."""

from __future__ import annotations

import pytest

from repro.arrow import run_arrow
from repro.core.adversary import adversarial_search
from repro.core.request import exhaustive_request_sets
from repro.core.verify import VerificationError
from repro.counting import run_central_counting
from repro.topology import complete_graph, path_graph, star_graph
from repro.topology.spanning import path_spanning_tree, star_spanning_tree


class TestAdversarialSearch:
    def test_matches_exhaustive_on_tiny_star(self):
        g = star_graph(6)
        cost = lambda req: run_central_counting(g, req).total_delay
        truth = max(cost(r) for r in exhaustive_request_sets(6))
        found = adversarial_search(g, cost, max_evaluations=200)
        assert found.best_total == truth

    def test_matches_exhaustive_on_tiny_path_arrow(self):
        g = path_graph(6)
        st = path_spanning_tree(g)
        cost = lambda req: run_arrow(st, req, capacity=1).total_delay
        truth = max(cost(r) for r in exhaustive_request_sets(6))
        found = adversarial_search(g, cost, max_evaluations=250)
        assert found.best_total == truth

    def test_structured_scenarios_are_strong_on_star(self):
        """On the star, all-nodes should already be (near) worst-case."""
        g = star_graph(12)
        cost = lambda req: run_central_counting(g, req).total_delay
        found = adversarial_search(g, cost, max_evaluations=120)
        all_total = cost(list(range(12)))
        assert found.best_total <= all_total * 1.05  # no big win over R=V

    def test_deterministic(self):
        g = complete_graph(8)
        cost = lambda req: run_central_counting(g, req).total_delay
        a = adversarial_search(g, cost, max_evaluations=60)
        b = adversarial_search(g, cost, max_evaluations=60)
        assert a == b

    def test_respects_budget(self):
        g = path_graph(8)
        calls = 0

        def cost(req):
            nonlocal calls
            calls += 1
            return len(req)

        adversarial_search(g, cost, max_evaluations=10)
        assert calls <= 10

    def test_custom_seeds(self):
        g = path_graph(6)
        cost = lambda req: sum(req)
        found = adversarial_search(g, cost, seeds=[[0], [5]], max_evaluations=50)
        assert found.best_total >= 5


class TestFailureInjection:
    """Corrupt a protocol and confirm the runner's verifier catches it."""

    def test_broken_central_counter_is_caught(self, monkeypatch):
        from repro.counting import central as central_mod

        original = central_mod._CentralNode._serve

        def broken(self, origin, path, ctx):
            self.counter += 1  # double-increment: counts get holes
            original(self, origin, path, ctx)

        monkeypatch.setattr(central_mod._CentralNode, "_serve", broken)
        with pytest.raises(VerificationError):
            run_central_counting(star_graph(6), range(6))

    def test_broken_sweep_is_caught(self, monkeypatch):
        from repro.counting import sweep as sweep_mod
        from repro.counting.sweep import run_sweep_counting

        original = sweep_mod._SweepNode._pass

        def broken(self, carried, ctx):
            if self.mode == "count" and self.requesting and carried == 2:
                carried = 7  # skip values
            original(self, carried, ctx)

        monkeypatch.setattr(sweep_mod._SweepNode, "_pass", broken)
        with pytest.raises(VerificationError):
            run_sweep_counting(path_graph(5), range(5))

    def test_broken_arrow_order_is_caught(self):
        """A predecessor map with a fork fails queuing verification."""
        from repro.core.verify import verify_queuing

        g = star_graph(5)
        res = run_arrow(star_spanning_tree(g), range(5), capacity=1)
        bad = dict(res.predecessors)
        # make two ops claim the same predecessor
        ops = list(bad)
        bad[ops[0]] = bad[ops[1]]
        with pytest.raises(VerificationError):
            verify_queuing(range(5), bad, tail=0)

    def test_broken_addition_is_caught(self, monkeypatch):
        from repro.adding import combining as add_mod
        from repro.adding import run_combining_addition
        from repro.topology.spanning import path_spanning_tree as pst

        original = add_mod._AddNode._distribute

        def broken(self, base, ctx):
            original(self, base + (1 if self.node_id == 2 else 0), ctx)

        monkeypatch.setattr(add_mod._AddNode, "_distribute", broken)
        with pytest.raises(AssertionError):
            run_combining_addition(pst(path_graph(5)), {v: 1 for v in range(5)})
