"""Coverage for the smaller utility surfaces.

Metrics reduction, node helpers, table formatting, figure generation,
graph-property edge cases, and the harness slope fitter.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import ALL_FIGURES, figure_latency_profiles, figure_separation_curve
from repro.experiments.harness import fit_slope
from repro.sim.metrics import DelayRecorder, summarize_delays
from repro.sim.node import Node, make_nodes
from repro.topology import (
    all_pairs_distances,
    bfs_distances,
    complete_graph,
    degree_histogram,
    eccentricity,
    mesh_graph,
    path_graph,
)
from repro.topology.base import Graph


class TestMetrics:
    def test_summarize_mapping(self):
        s = summarize_delays({"a": 2, "b": 4})
        assert (s.count, s.total, s.maximum, s.mean) == (2, 6, 4, 3.0)

    def test_summarize_iterable(self):
        s = summarize_delays([1, 2, 3])
        assert s.total == 6 and s.maximum == 3

    def test_summarize_empty(self):
        s = summarize_delays([])
        assert s.count == 0 and s.mean == 0.0 and s.maximum == 0

    def test_recorder_accessors(self):
        rec = DelayRecorder()
        rec.record("x", 5, result=42, at_node=1)
        assert "x" in rec and len(rec) == 1
        assert rec.record_for("x").result == 42
        assert rec.total_delay() == 5
        assert rec.max_delay() == 5
        assert rec.records()[0].at_node == 1

    def test_recorder_empty_max(self):
        assert DelayRecorder().max_delay() == 0


class TestNodeHelpers:
    def test_make_nodes(self):
        nodes = make_nodes(lambda v: Node(v), range(4))
        assert sorted(nodes) == [0, 1, 2, 3]
        assert all(nodes[v].node_id == v for v in nodes)

    def test_node_repr(self):
        assert "node_id=3" in repr(Node(3))


class TestGraphProperties:
    def test_bfs_unreachable_marked(self):
        g = Graph({0: (), 1: ()}, name="disc")
        dist = bfs_distances(g, 0)
        assert dist[1] == -1

    def test_eccentricity_values(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_eccentricity_disconnected_raises(self):
        g = Graph({0: (), 1: ()}, name="disc")
        with pytest.raises(ValueError):
            eccentricity(g, 0)

    def test_all_pairs_symmetric(self):
        g = mesh_graph([3, 3])
        d = all_pairs_distances(g)
        assert (d == d.T).all()
        assert (d.diagonal() == 0).all()

    def test_degree_histogram_complete(self):
        assert degree_histogram(complete_graph(5)) == {4: 5}


class TestHarnessHelpers:
    def test_fit_slope(self):
        rows = [{"n": 10, "y": 100}, {"n": 20, "y": 400}, {"n": 40, "y": 1600}]
        assert abs(fit_slope(rows, "n", "y") - 2.0) < 1e-9


class TestFigures:
    def test_registry(self):
        assert set(ALL_FIGURES) == {"F1", "F2"}

    def test_f1_contains_monotone_ratios(self):
        text = figure_separation_curve(sizes=(8, 16))
        assert "F1" in text and "n=8" in text and "n=16" in text

    def test_f2_bounds_respected(self):
        text = figure_latency_profiles(n=16)
        assert "respected: True" in text
        assert text.count("respected: True") == 2
