"""Exhaustive validation on tiny instances: every request set, every tail.

Small enough to enumerate completely, these tests leave no adversarial
corner unexplored: for *every* non-empty request set on 5-6 vertex
topologies (and every initial tail for arrow), the protocols must
produce valid outputs and respect the bounds.
"""

from __future__ import annotations

import pytest

from repro.arrow import run_arrow
from repro.bounds import arrow_upper_bound
from repro.core.request import exhaustive_request_sets
from repro.core.verify import verify_counting, verify_queuing
from repro.counting import (
    run_central_counting,
    run_combining_counting,
    run_flood_counting,
)
from repro.topology import complete_graph, mesh_graph, path_graph, star_graph
from repro.topology.spanning import (
    bfs_spanning_tree,
    path_spanning_tree,
    star_spanning_tree,
)
from repro.tsp import nearest_neighbor_tour, tsp_path_lower_bound


class TestArrowExhaustive:
    def test_path5_every_request_set_every_tail(self):
        g = path_graph(5)
        st = path_spanning_tree(g)
        for req in exhaustive_request_sets(5):
            for tail in range(5):
                res = run_arrow(st, req, tail=tail)
                verify_queuing(req, res.predecessors, tail=tail)
                assert res.total_delay <= arrow_upper_bound(st.tree, req) or (
                    # the bound's NN tour starts at the tree root; re-check
                    # against the tour from the actual tail
                    res.total_delay
                    <= 2 * nearest_neighbor_tour(st.tree, req, start=tail).cost
                )

    def test_star5_every_request_set(self):
        g = star_graph(5)
        st = star_spanning_tree(g)
        for req in exhaustive_request_sets(5):
            res = run_arrow(st, req, capacity=1)
            verify_queuing(req, res.predecessors, tail=0)

    def test_complete5_binary_tree_every_request_set(self):
        from repro.topology.spanning import embedded_binary_tree

        g = complete_graph(5)
        st = embedded_binary_tree(g)
        for req in exhaustive_request_sets(5):
            res = run_arrow(st, req)
            verify_queuing(req, res.predecessors, tail=0)
            assert res.total_delay <= arrow_upper_bound(st.tree, req)


class TestCountingExhaustive:
    @pytest.mark.parametrize(
        "g",
        [path_graph(5), star_graph(5), complete_graph(5), mesh_graph([2, 3])],
        ids=lambda g: g.name,
    )
    def test_central_every_request_set(self, g):
        for req in exhaustive_request_sets(g.n):
            r = run_central_counting(g, req)
            verify_counting(req, r.counts)

    def test_flood_every_request_set_on_path(self):
        g = path_graph(5)
        for req in exhaustive_request_sets(5):
            r = run_flood_counting(g, req)
            verify_counting(req, r.counts)

    def test_combining_every_request_set_on_mesh(self):
        g = mesh_graph([2, 3])
        st = bfs_spanning_tree(g)
        for req in exhaustive_request_sets(6):
            r = run_combining_counting(st, req)
            verify_counting(req, r.counts)


class TestTspExhaustive:
    def test_nn_dominates_optimum_on_all_subsets(self):
        from repro.tree import RootedTree

        tree = RootedTree([0, 0, 0, 1, 1, 2])  # small branching tree
        for req in exhaustive_request_sets(6):
            tour = nearest_neighbor_tour(tree, req)
            assert tour.cost >= tsp_path_lower_bound(tree, req)
            assert sorted(tour.order) == sorted(req)

    def test_list_bound_on_all_subsets_and_starts(self):
        from repro.tree import RootedTree
        from repro.tsp import lemma44_legs, list_tsp_bound
        from repro.tsp.runs import satisfies_lemma44

        tree = RootedTree.from_path(list(range(6)))
        for req in exhaustive_request_sets(6):
            for start in range(6):
                tour = nearest_neighbor_tour(tree, req, start=start)
                assert tour.cost <= list_tsp_bound(6)
                assert satisfies_lemma44(lemma44_legs(tour.order, start=start))
