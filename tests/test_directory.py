"""The arrow distributed directory (find on tree, move on graph)."""

from __future__ import annotations

import random

import pytest

from repro.directory import run_object_directory
from repro.mutex import run_token_mutex
from repro.sim import UniformDelay
from repro.topology import complete_graph, mesh_graph, path_graph
from repro.topology.spanning import bfs_spanning_tree, path_spanning_tree


class TestBasics:
    def test_home_requester_acquires_at_zero(self):
        g = path_graph(5)
        out = run_object_directory(g, path_spanning_tree(g), [0])
        assert out.acquire_rounds[0] == 0

    def test_single_remote_requester(self):
        g = path_graph(6)
        out = run_object_directory(g, path_spanning_tree(g), [5])
        # find travels 5 hops, object travels 5 back
        assert out.acquire_rounds[5] == 10

    def test_all_acquire_in_order(self):
        g = mesh_graph([3, 3])
        out = run_object_directory(g, bfs_spanning_tree(g), range(9), use_rounds=2)
        assert sorted(out.order) == list(range(9))
        assert out.exclusive_holding()

    def test_use_rounds_spacing(self):
        g = path_graph(6)
        out = run_object_directory(g, path_spanning_tree(g), range(6), use_rounds=3)
        entries = sorted(out.acquire_rounds.values())
        assert all(b - a >= 3 for a, b in zip(entries, entries[1:]))

    def test_invalid_use_rounds(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            run_object_directory(g, path_spanning_tree(g), [1], use_rounds=-1)

    def test_custom_home(self):
        g = path_graph(5)
        out = run_object_directory(g, path_spanning_tree(g), [0, 4], home=4)
        assert out.order[0] == 4


class TestShortcutting:
    def test_direct_object_moves_beat_tree_walks(self):
        """On K_n with spread-out requesters the object takes 1-hop
        shortcuts while the token mutex must walk the tree."""
        g = complete_graph(32)
        st = path_spanning_tree(g)
        req = list(range(0, 32, 4))
        d = run_object_directory(g, st, req, use_rounds=1)
        m = run_token_mutex(st, req, cs_rounds=1)
        assert d.total_waiting < m.total_waiting

    def test_on_a_tree_graph_no_shortcut_exists(self):
        g = path_graph(16)
        st = path_spanning_tree(g)
        req = list(range(0, 16, 3))
        d = run_object_directory(g, st, req, use_rounds=1)
        m = run_token_mutex(st, req, cs_rounds=1)
        assert d.total_waiting == m.total_waiting


class TestRobustness:
    def test_random_instances(self):
        rng = random.Random(77)
        for trial in range(25):
            n = rng.randint(2, 24)
            g = rng.choice([complete_graph(n), path_graph(n)])
            st = bfs_spanning_tree(g, root=rng.randrange(n))
            req = rng.sample(range(n), rng.randint(1, n))
            out = run_object_directory(
                g, st, req, use_rounds=rng.randint(0, 2), home=rng.randrange(n)
            )
            assert sorted(out.order) == sorted(set(req))

    def test_correct_under_async_delays(self):
        g = mesh_graph([3, 4])
        out = run_object_directory(
            g,
            bfs_spanning_tree(g),
            range(12),
            delay_model=UniformDelay(1, 3, seed=9),
        )
        assert sorted(out.order) == list(range(12))
        assert out.exclusive_holding()

    def test_total_waiting_metric(self):
        g = path_graph(4)
        out = run_object_directory(g, path_spanning_tree(g), [1, 3])
        assert out.total_waiting == sum(out.acquire_rounds.values())
