"""Deliberately nondeterministic protocol fixture.

The hub iterates an *unsorted set of strings* to choose its send order —
the iteration order is a function of ``PYTHONHASHSEED``, so two
interpreters with different seeds enqueue the same messages in different
orders.  The engine accepts the run silently (every message is delivered,
every validator would pass); only the determinism sanitizer's
cross-interpreter trace diff exposes it.
"""

from __future__ import annotations

from repro.sim import EventTrace, Message, Node, NodeContext, SynchronousNetwork

N = 9


class NondetHub(Node):
    """Sends one ping per leaf, in set-of-strings iteration order."""

    def on_start(self, ctx: NodeContext) -> None:
        labels = {f"peer-{u}" for u in ctx.neighbors}
        for label in labels:
            ctx.send(int(label.split("-")[1]), "ping", payload=label)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        pass


class QuietLeaf(Node):
    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        pass


def _star() -> dict[int, list[int]]:
    graph: dict[int, list[int]] = {0: list(range(1, N))}
    for v in range(1, N):
        graph[v] = [0]
    return graph


def run_trace() -> EventTrace:
    """One complete run on a star; returns its event trace."""
    nodes: dict[int, Node] = {0: NondetHub(0)}
    for v in range(1, N):
        nodes[v] = QuietLeaf(v)
    trace = EventTrace()
    net = SynchronousNetwork(
        _star(), nodes, send_capacity=N, recv_capacity=N, trace=trace
    )
    net.run(max_rounds=100)
    return trace
