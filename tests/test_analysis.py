"""Analysis package: rank-latency profiles, contention, ASCII charts."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ascii_bars,
    contention_profile,
    delay_histogram,
    latency_by_rank,
    sparkline,
)
from repro.counting import run_central_counting, run_flood_counting
from repro.topology import complete_graph, diameter, path_graph


class TestRankLatency:
    def test_profile_sorted_by_rank(self):
        g = complete_graph(12)
        r = run_flood_counting(g, range(12))
        prof = latency_by_rank(r, n=12, diameter=1)
        assert prof.ranks == tuple(range(1, 13))
        assert len(prof.delays) == 12
        assert prof.respects_bounds()

    def test_diameter_bounds_populated_when_all_count(self):
        g = path_graph(10)
        r = run_central_counting(g, range(10))
        prof = latency_by_rank(r, n=10, diameter=9)
        assert any(b > 0 for b in prof.diameter_bounds)
        assert prof.respects_bounds()

    def test_diameter_bounds_zero_for_subsets(self):
        g = path_graph(10)
        r = run_central_counting(g, [2, 7])
        prof = latency_by_rank(r, n=10, diameter=9)
        assert all(b == 0 for b in prof.diameter_bounds)

    def test_slack_nonnegative_everywhere(self):
        g = complete_graph(16)
        r = run_flood_counting(g, range(16))
        prof = latency_by_rank(r, n=16, diameter=diameter(g))
        assert all(s >= 0 for s in prof.slack())

    def test_high_ranks_need_more(self):
        """The general per-op bound is non-decreasing in rank."""
        g = complete_graph(20)
        r = run_flood_counting(g, range(20))
        prof = latency_by_rank(r)
        assert list(prof.general_bounds) == sorted(prof.general_bounds)


class TestContentionAndHistogram:
    def test_contention_top_k(self):
        prof = contention_profile({0: 5, 1: 9, 2: 9, 3: 1}, top=2)
        assert prof == [(1, 9), (2, 9)]

    def test_histogram_sums_to_count(self):
        rows = delay_histogram({i: i for i in range(25)}, bins=5)
        assert sum(c for _, c in rows) == 25

    def test_histogram_single_value(self):
        assert delay_histogram({0: 4, 1: 4}) == [("4", 2)]

    def test_histogram_empty(self):
        assert delay_histogram({}) == []


class TestCharts:
    def test_sparkline_monotone(self):
        s = sparkline([1, 2, 3, 4, 5])
        assert len(s) == 5
        assert s[0] != s[-1]

    def test_sparkline_flat(self):
        assert sparkline([7, 7, 7]) == "..."

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_resampled(self):
        s = sparkline(list(range(100)), width=20)
        assert len(s) == 20

    def test_bars_render(self):
        out = ascii_bars([("a", 10.0), ("bb", 5.0), ("c", 0.0)], width=10)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert "#" not in lines[2]

    def test_bars_mapping_input(self):
        out = ascii_bars({"x": 1.0, "y": 2.0})
        assert "x" in out and "y" in out

    def test_bars_empty(self):
        assert ascii_bars([]) == "(no data)"
