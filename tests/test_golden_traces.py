"""Golden-trace regression tests.

Every protocol runs on a fixed small instance with tracing on; the full
event trace, engine stats, and protocol outputs are compared against a
canonical JSON fixture under ``tests/golden/``.  Any change to engine
scheduling, arbitration order, message routing, or protocol logic — no
matter how subtle — shows up here as a diff against the golden file.

Regenerate the fixtures (after an *intentional* semantics change) with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen

and review the resulting diff like any other code change.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

import pytest

from repro import (
    bfs_spanning_tree,
    complete_graph,
    mesh_graph,
    path_graph,
    path_spanning_tree,
    run_arrow,
    run_central_counting,
    run_central_queuing,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
    run_periodic_counting,
    star_graph,
)
from repro.counting import run_sweep_counting
from repro.sim import EventTrace

GOLDEN_DIR = Path(__file__).parent / "golden"


def _canonical(obj: Any) -> Any:
    """JSON round-trip: tuples -> lists, int keys -> strings, sorted keys."""
    return json.loads(json.dumps(obj, sort_keys=True))


def _doc(trace: EventTrace, stats, **extra: Any) -> Any:
    return _canonical(
        {
            "events": [[e.kind, e.round, e.data] for e in trace.events],
            "stats": asdict(stats),
            **extra,
        }
    )


def _op_map(d: dict) -> list:
    """Tuple-keyed mapping as a sorted pair list (JSON-safe)."""
    return [[list(k) if isinstance(k, tuple) else k, v] for k, v in sorted(d.items())]


def _case_arrow() -> Any:
    tr = EventTrace()
    r = run_arrow(path_spanning_tree(path_graph(8)), range(8), trace=tr)
    return _doc(
        tr, r.stats,
        order=r.order(), total_delay=r.total_delay, delays=_op_map(r.delays),
    )


def _case_central_counting() -> Any:
    tr = EventTrace()
    r = run_central_counting(star_graph(6), range(6), trace=tr)
    return _doc(tr, r.stats, counts=sorted(r.counts.items()), delays=sorted(r.delays.items()))


def _case_central_queuing() -> Any:
    tr = EventTrace()
    r = run_central_queuing(star_graph(6), range(6), trace=tr)
    return _doc(
        tr, r.stats,
        predecessors=_op_map(
            {k: list(v) if isinstance(v, tuple) else v for k, v in r.predecessors.items()}
        ),
        delays=_op_map(r.delays),
    )


def _case_combining() -> Any:
    tr = EventTrace()
    r = run_combining_counting(bfs_spanning_tree(complete_graph(8)), range(8), trace=tr)
    return _doc(tr, r.stats, counts=sorted(r.counts.items()), delays=sorted(r.delays.items()))


def _case_flood() -> Any:
    tr = EventTrace()
    r = run_flood_counting(mesh_graph([3, 3]), range(9), trace=tr)
    return _doc(tr, r.stats, counts=sorted(r.counts.items()), delays=sorted(r.delays.items()))


def _case_cnet() -> Any:
    tr = EventTrace()
    r = run_counting_network(complete_graph(6), range(6), trace=tr)
    return _doc(tr, r.stats, counts=sorted(r.counts.items()), delays=sorted(r.delays.items()))


def _case_periodic() -> Any:
    tr = EventTrace()
    r = run_periodic_counting(complete_graph(8), range(8), trace=tr)
    return _doc(tr, r.stats, counts=sorted(r.counts.items()), delays=sorted(r.delays.items()))


def _case_sweep() -> Any:
    tr = EventTrace()
    r = run_sweep_counting(path_graph(8), range(8), trace=tr)
    return _doc(tr, r.stats, counts=sorted(r.counts.items()), delays=sorted(r.delays.items()))


def _case_arrow_perfetto() -> Any:
    """The Chrome trace-event export of the arrow case, pinned exactly.

    Guards the exporter's whole output contract — span pairing via FIFO
    link order, timestamps (1 round = 1000 us), track metadata, counter
    samples, and the deterministic event sort.
    """
    from repro.obs import chrome_trace

    tr = EventTrace()
    run_arrow(path_spanning_tree(path_graph(8)), range(8), trace=tr)
    return _canonical(chrome_trace(tr, label="arrow path-8"))


CASES = {
    "arrow": _case_arrow,
    "central_counting": _case_central_counting,
    "central_queuing": _case_central_queuing,
    "combining": _case_combining,
    "flood": _case_flood,
    "cnet": _case_cnet,
    "periodic": _case_periodic,
    "sweep": _case_sweep,
    "arrow_perfetto": _case_arrow_perfetto,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_trace(name: str, request: pytest.FixtureRequest) -> None:
    doc = CASES[name]()
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--regen"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden fixture {path.name}; run with --regen to create it"
    )
    golden = json.loads(path.read_text())
    assert doc == golden, (
        f"{name}: execution diverged from the golden fixture. If the change "
        f"is intentional, regenerate with `pytest {__file__} --regen` and "
        f"review the fixture diff."
    )


def test_golden_dir_matches_cases() -> None:
    """Every fixture has a case and vice versa (no stale goldens)."""
    have = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert have == set(CASES)
