"""Larger-instance smoke tests: the asymptotics hold one decade further up.

These run in a few seconds total and confirm that the engine and the
protocols behave at sizes an order of magnitude beyond the unit tests —
including the exact closed forms the theory predicts.
"""

from __future__ import annotations

from repro.arrow import run_arrow
from repro.bounds import list_queuing_bound, theorem36_lower_bound
from repro.counting import run_central_counting, run_sweep_counting
from repro.faults import FaultPlan, run_arrow_ft, run_central_counting_ft
from repro.sim import EventTrace
from repro.topology import complete_graph, mesh_graph, path_graph, star_graph
from repro.topology.spanning import path_spanning_tree
from repro.tsp import list_tsp_bound, nearest_neighbor_tour
from repro.tree import RootedTree


class TestLargeArrow:
    def test_arrow_wave_on_4096_path(self):
        n = 4096
        st = path_spanning_tree(path_graph(n))
        res = run_arrow(st, range(n))
        # the concurrent wave: every non-tail op terminates at distance 1
        assert res.total_delay == n - 1
        assert res.max_delay == 1
        assert res.total_delay <= list_queuing_bound(n)

    def test_arrow_alternating_on_2048_path(self):
        n = 2048
        st = path_spanning_tree(path_graph(n))
        res = run_arrow(st, range(0, n, 2))
        # each op's message travels 2 hops to its left neighbor requester
        assert res.max_delay <= 4
        assert sorted(res.order()) == list(range(0, n, 2))


class TestLargeCounting:
    def test_central_star_512_exact_quadratic_shape(self):
        n = 512
        res = run_central_counting(star_graph(n), range(n))
        assert res.total_delay >= theorem36_lower_bound(2)
        # hub serialisation: the k-th served leaf waits ~2k rounds
        assert res.total_delay > n * n // 2

    def test_central_list_256_respects_diameter_bound(self):
        n = 256
        res = run_central_counting(path_graph(n), range(n))
        assert res.total_delay >= theorem36_lower_bound(n - 1)

    def test_sweep_1024(self):
        n = 1024
        res = run_sweep_counting(complete_graph(64), range(64))
        assert res.total_delay == 64 * 63 // 2
        # and a long path sweep
        res2 = run_sweep_counting(path_graph(n), range(0, n, 16))
        assert len(res2.counts) == n // 16


class TestLargeTsp:
    def test_nn_tour_on_8192_list(self):
        n = 8192
        tree = RootedTree.from_path(list(range(n)))
        tour = nearest_neighbor_tour(tree, range(0, n, 3), start=n // 2)
        assert tour.cost <= list_tsp_bound(n)

    def test_nn_tour_on_deep_binary_tree(self):
        from repro.topology import perfect_mary_tree
        from repro.tsp import binary_tree_tsp_bound

        g = perfect_mary_tree(2, 11)  # 4095 vertices
        tree = RootedTree.from_edges(g.n, g.edges(), root=0)
        tour = nearest_neighbor_tour(tree, range(g.n))
        assert tour.cost <= binary_tree_tsp_bound(g.n)


class TestLargeMesh:
    def test_mesh_16x16_counting_vs_arrow(self):
        g = mesh_graph([16, 16])
        counting = run_central_counting(g, range(g.n))
        arrow = run_arrow(path_spanning_tree(g), range(g.n))
        assert counting.total_delay > 10 * arrow.total_delay


class TestChaosSmoke:
    """n=64 protocols survive 10% message loss inside the retry envelope.

    With the default policy (timeout 6, backoff 2, intervals capped) and
    drop runs bounded at 3, a lost hop is re-offered at most 4 times
    before it must get through, costing at most ``6+12+24+48 = 90`` extra
    rounds — so a fault-free run of ``R`` rounds is bounded by roughly
    ``90x`` its length once every hop can be unlucky.  The assertions use
    that envelope with slack; blowing it means retries stopped working.
    """

    PLAN = FaultPlan(seed=11, drop_rate=0.1, max_consecutive_drops=3)

    @staticmethod
    def _envelope(fault_free_rounds: int) -> int:
        return 90 * fault_free_rounds + 200

    def test_star_64_central_counting_under_drop(self):
        g = star_graph(64)
        base = run_central_counting(g, range(g.n))
        ft = run_central_counting_ft(g, range(g.n), self.PLAN)
        assert sorted(ft.counts.values()) == list(range(1, g.n + 1))
        assert ft.stats.messages_dropped > 0
        assert ft.stats.rounds <= self._envelope(base.stats.rounds)

    def test_path_64_arrow_under_drop(self):
        sp = path_spanning_tree(path_graph(64))
        base = run_arrow(sp, range(64))
        ft = run_arrow_ft(sp, range(64), self.PLAN)
        assert sorted(ft.order()) == list(range(64))
        assert ft.stats.messages_dropped > 0
        assert ft.stats.rounds <= self._envelope(base.stats.rounds)

    def test_mesh_64_central_counting_under_drop(self):
        g = mesh_graph([8, 8])
        base = run_central_counting(g, range(g.n))
        ft = run_central_counting_ft(g, range(g.n), self.PLAN)
        assert sorted(ft.counts.values()) == list(range(1, g.n + 1))
        assert ft.stats.rounds <= self._envelope(base.stats.rounds)

    def test_no_fault_plan_is_a_verified_noop(self):
        """An empty plan reproduces the plain run exactly, trace and all."""
        sp = path_spanning_tree(path_graph(64))
        t_plain, t_empty = EventTrace(), EventTrace()
        plain = run_arrow(sp, range(64), trace=t_plain)
        empty = run_arrow(sp, range(64), trace=t_empty, faults=FaultPlan())
        assert t_plain.events == t_empty.events
        assert plain.stats == empty.stats
        assert plain.delays == empty.delays
        assert plain.order() == empty.order()
