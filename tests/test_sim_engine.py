"""Engine semantics: unit delay, capacities, FIFO, arbitration, wakeups."""

from __future__ import annotations

import pytest

from repro.sim import (
    CapacityError,
    EventTrace,
    Message,
    Node,
    ProtocolViolation,
    RoundLimitExceeded,
    SynchronousNetwork,
)
from repro.topology import complete_graph, path_graph, star_graph


class Sender(Node):
    """Sends a fixed batch of messages at start, counts receipts."""

    def __init__(self, node_id, sends=()):
        super().__init__(node_id)
        self.sends = list(sends)
        self.received: list[Message] = []
        self.recv_rounds: list[int] = []

    def on_start(self, ctx):
        for dst, kind in self.sends:
            ctx.send(dst, kind)

    def on_receive(self, msg, ctx):
        self.received.append(msg)
        self.recv_rounds.append(ctx.now)


def line(n=2, **caps):
    g = path_graph(n)
    nodes = {v: Sender(v) for v in range(n)}
    return g, nodes


class TestBasics:
    def test_single_message_takes_one_round(self):
        g, nodes = line(2)
        nodes[0].sends = [(1, "x")]
        net = SynchronousNetwork(g, nodes)
        stats = net.run()
        assert stats.rounds == 1
        assert nodes[1].recv_rounds == [1]

    def test_message_fields_filled(self):
        g, nodes = line(2)
        nodes[0].sends = [(1, "x")]
        SynchronousNetwork(g, nodes).run()
        (msg,) = nodes[1].received
        assert (msg.src, msg.dst, msg.kind) == (0, 1, "x")
        assert msg.sent_at == 0 and msg.delivered_at == 1
        assert msg.link_wait() == 0

    def test_no_messages_means_zero_rounds(self):
        g, nodes = line(3)
        stats = SynchronousNetwork(g, nodes).run()
        assert stats.rounds == 0
        assert stats.messages_sent == 0

    def test_undelivered_message_link_wait_raises(self):
        msg = Message(src=0, dst=1, kind="x")
        with pytest.raises(ValueError):
            msg.link_wait()

    def test_run_twice_rejected(self):
        g, nodes = line(2)
        net = SynchronousNetwork(g, nodes)
        net.run()
        with pytest.raises(ProtocolViolation):
            net.run()

    def test_send_to_non_neighbor_rejected(self):
        g = path_graph(3)
        nodes = {v: Sender(v) for v in range(3)}
        nodes[0].sends = [(2, "x")]  # 0 and 2 are not adjacent
        with pytest.raises(ProtocolViolation):
            SynchronousNetwork(g, nodes).run()

    def test_missing_node_rejected(self):
        g = path_graph(3)
        with pytest.raises(ProtocolViolation):
            SynchronousNetwork(g, {0: Sender(0)})

    def test_extra_node_rejected(self):
        g = path_graph(3)
        nodes = {v: Sender(v) for v in range(4)}  # vertex 3 is not in the graph
        with pytest.raises(ProtocolViolation, match="not in the graph"):
            SynchronousNetwork(g, nodes)

    def test_invalid_capacities_rejected(self):
        g, nodes = line(2)
        with pytest.raises(CapacityError):
            SynchronousNetwork(g, nodes, send_capacity=0)
        with pytest.raises(CapacityError):
            SynchronousNetwork(g, nodes, recv_capacity=-1)


class TestContention:
    def test_receive_capacity_serialises_star_hub(self):
        """k leaves send to the hub; hub receives exactly one per round."""
        n = 8
        g = star_graph(n)
        nodes = {v: Sender(v) for v in range(n)}
        for v in range(1, n):
            nodes[v].sends = [(0, "x")]
        trace = EventTrace()
        net = SynchronousNetwork(g, nodes, trace=trace)
        stats = net.run()
        assert stats.rounds == n - 1
        assert nodes[0].recv_rounds == list(range(1, n))
        assert trace.max_deliveries_in_a_round() == 1

    def test_send_capacity_serialises_broadcast(self):
        """The hub sends to k leaves; one message leaves per round."""
        n = 6
        g = star_graph(n)
        nodes = {v: Sender(v) for v in range(n)}
        nodes[0].sends = [(v, "x") for v in range(1, n)]
        trace = EventTrace()
        net = SynchronousNetwork(g, nodes, trace=trace)
        net.run()
        assert trace.max_sends_in_a_round() == 1
        # leaf v is the (v)-th message out: leaves round v-1, arrives v.
        for v in range(1, n):
            assert nodes[v].recv_rounds == [v]

    def test_recv_capacity_two_halves_the_time(self):
        n = 9
        g = star_graph(n)
        nodes = {v: Sender(v) for v in range(n)}
        for v in range(1, n):
            nodes[v].sends = [(0, "x")]
        net = SynchronousNetwork(g, nodes, recv_capacity=2)
        stats = net.run()
        assert stats.rounds == (n - 1 + 1) // 2

    def test_fifo_per_link(self):
        """Messages on one link are delivered in send order."""
        g = path_graph(2)
        nodes = {0: Sender(0, [(1, f"m{i}") for i in range(5)]), 1: Sender(1)}
        SynchronousNetwork(g, nodes).run()
        assert [m.kind for m in nodes[1].received] == [f"m{i}" for i in range(5)]

    def test_arbitration_deterministic_by_send_time_then_seq(self):
        """Simultaneous arrivals are served oldest-first, then by creation."""
        g = star_graph(4)
        nodes = {v: Sender(v) for v in range(4)}
        for v in (3, 2, 1):  # creation order 3, 2, 1 by on_start node order 1,2,3
            nodes[v].sends = [(0, "x")]
        SynchronousNetwork(g, nodes).run()
        # on_start runs in node-id order, so seq order is 1, 2, 3.
        assert [m.src for m in nodes[0].received] == [1, 2, 3]

    def test_total_link_wait_accounts_contention(self):
        n = 5
        g = star_graph(n)
        nodes = {v: Sender(v) for v in range(n)}
        for v in range(1, n):
            nodes[v].sends = [(0, "x")]
        net = SynchronousNetwork(g, nodes)
        stats = net.run()
        # waits are 0,1,2,3 for the four messages
        assert stats.total_link_wait == 0 + 1 + 2 + 3


class RelayNode(Node):
    """Forwards every received message along a fixed next pointer."""

    def __init__(self, node_id, nxt=None):
        super().__init__(node_id)
        self.nxt = nxt
        self.recv_rounds: list[int] = []

    def on_start(self, ctx):
        if self.node_id == 0 and self.nxt is not None:
            ctx.send(self.nxt, "hop")

    def on_receive(self, msg, ctx):
        self.recv_rounds.append(ctx.now)
        if self.nxt is not None:
            ctx.send(self.nxt, "hop")


class TestPipelines:
    def test_relay_chain_delay_equals_distance(self):
        n = 6
        g = path_graph(n)
        nodes = {v: RelayNode(v, nxt=v + 1 if v + 1 < n else None) for v in range(n)}
        stats = SynchronousNetwork(g, nodes).run()
        assert nodes[n - 1].recv_rounds == [n - 1]
        assert stats.rounds == n - 1

    def test_round_limit_exceeded(self):
        class PingPong(Node):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(1, "ping")

            def on_receive(self, msg, ctx):
                ctx.send(msg.src, "ping")

        g = path_graph(2)
        nodes = {0: PingPong(0), 1: PingPong(1)}
        with pytest.raises(RoundLimitExceeded) as exc:
            SynchronousNetwork(g, nodes).run(max_rounds=50)
        assert exc.value.max_rounds == 50
        assert exc.value.in_flight >= 1


class WakerNode(Node):
    def __init__(self, node_id, at=()):
        super().__init__(node_id)
        self.at = list(at)
        self.woke: list[int] = []

    def on_start(self, ctx):
        for t in self.at:
            ctx.schedule_wakeup(t)

    def on_wake(self, ctx):
        self.woke.append(ctx.now)


class TestWakeups:
    def test_wakeup_fires_at_scheduled_round(self):
        g = path_graph(2)
        nodes = {0: WakerNode(0, at=[3]), 1: WakerNode(1)}
        net = SynchronousNetwork(g, nodes)
        net.run()
        assert nodes[0].woke == [3]

    def test_idle_clock_jumps_to_next_wakeup(self):
        g = path_graph(2)
        nodes = {0: WakerNode(0, at=[1000]), 1: WakerNode(1)}
        net = SynchronousNetwork(g, nodes)
        stats = net.run(max_rounds=2000)
        assert nodes[0].woke == [1000]
        assert stats.rounds == 1000

    def test_past_wakeup_rejected(self):
        class BadWaker(Node):
            def on_start(self, ctx):
                ctx.schedule_wakeup(0)

        g = path_graph(2)
        with pytest.raises(ProtocolViolation):
            SynchronousNetwork(g, {0: BadWaker(0), 1: BadWaker(1)}).run()

    def test_multiple_nodes_wake_same_round(self):
        g = path_graph(3)
        nodes = {v: WakerNode(v, at=[2]) for v in range(3)}
        SynchronousNetwork(g, nodes).run()
        assert all(nodes[v].woke == [2] for v in range(3))

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_long_idle_schedule_executes_few_rounds(self, fast_path):
        """A sparse wakeup schedule must cost work per *event*, not per round.

        The engine's next-event heap jumps the clock over idle stretches:
        wakeups at rounds 10^3, 10^6, 10^9 execute only a handful of
        rounds.  Asserting ``rounds_executed`` (not just the results)
        pins the jumping itself — a regression to linear scanning would
        still produce the right wake rounds, just astronomically slower.
        """
        marks = [1_000, 1_000_000, 1_000_000_000]
        g = path_graph(2)
        nodes = {0: WakerNode(0, at=marks), 1: WakerNode(1)}
        net = SynchronousNetwork(g, nodes, fast_path=fast_path)
        stats = net.run(max_rounds=2_000_000_000)
        assert nodes[0].woke == marks
        assert stats.rounds == marks[-1]
        # One executed round per wakeup event (the engine enters the loop
        # once per jump target), not one per clock tick.
        assert net.rounds_executed <= len(marks) + 1

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_rounds_executed_counts_busy_rounds(self, fast_path):
        n = 6
        g = path_graph(n)
        nodes = {v: RelayNode(v, nxt=v + 1 if v + 1 < n else None) for v in range(n)}
        net = SynchronousNetwork(g, nodes, fast_path=fast_path)
        stats = net.run()
        # A relay chain is busy every round: no jumps, executed == clock.
        assert net.rounds_executed == stats.rounds == n - 1


class CompletingNode(Node):
    def on_start(self, ctx):
        ctx.complete(("op", self.node_id), result=self.node_id * 10)


class TestCompletions:
    def test_completion_recorded_with_round_and_result(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, {0: CompletingNode(0), 1: CompletingNode(1)})
        net.run()
        assert net.delays.delay_by_op() == {("op", 0): 0, ("op", 1): 0}
        assert net.delays.result_by_op() == {("op", 0): 0, ("op", 1): 10}

    def test_double_completion_rejected(self):
        class Doubler(Node):
            def on_start(self, ctx):
                ctx.complete("x")
                ctx.complete("x")

        g = path_graph(2)
        with pytest.raises(ProtocolViolation):
            SynchronousNetwork(g, {0: Doubler(0), 1: Doubler(1)}).run()


class TestGraphInputs:
    def test_accepts_adjacency_mapping(self):
        adj = {0: [1], 1: [0, 2], 2: [1]}
        nodes = {v: Sender(v) for v in range(3)}
        nodes[0].sends = [(1, "x")]
        net = SynchronousNetwork(adj, nodes)
        net.run()
        assert nodes[1].recv_rounds == [1]

    def test_accepts_edge_list(self):
        nodes = {v: Sender(v) for v in range(3)}
        nodes[2].sends = [(0, "x")]
        net = SynchronousNetwork([(0, 1), (1, 2), (0, 2)], nodes)
        net.run()
        assert nodes[0].recv_rounds == [1]

    def test_neighbors_sorted(self):
        net = SynchronousNetwork(
            complete_graph(4), {v: Sender(v) for v in range(4)}
        )
        assert net.neighbors(2) == (0, 1, 3)
        assert net.neighbor_set(0) == frozenset({1, 2, 3})
        assert net.node_ids == [0, 1, 2, 3]


class TestTraceSliceAndJson:
    """EventTrace windows and the JSON round-trip (resilience evidence)."""

    @staticmethod
    def _trace() -> EventTrace:
        from repro import run_central_counting
        from repro.topology import star_graph

        tr = EventTrace()
        run_central_counting(star_graph(8), range(8), trace=tr)
        return tr

    def test_slice_bounds_inclusive(self):
        tr = self._trace()
        window = tr.slice(2, 4)
        assert window.events
        assert all(2 <= e.round <= 4 for e in window.events)
        expected = [e for e in tr.events if 2 <= e.round <= 4]
        assert window.events == expected

    def test_slice_open_end(self):
        tr = self._trace()
        tail = tr.slice(3)
        assert tail.events == [e for e in tr.events if e.round >= 3]

    def test_slice_shares_frozen_events(self):
        tr = self._trace()
        window = tr.slice(0, tr.last_round())
        assert window.events == tr.events
        assert window.events[0] is tr.events[0]

    def test_json_roundtrip_restores_equality(self):
        tr = self._trace()
        back = EventTrace.from_json(tr.to_json())
        assert back.events == tr.events

    def test_json_roundtrip_preserves_tuples(self):
        from repro import path_spanning_tree, run_arrow
        from repro.topology import path_graph

        tr = EventTrace()
        run_arrow(path_spanning_tree(path_graph(6)), range(6), trace=tr)
        ops = [e.data["op"] for e in tr.of_kind("complete")]
        assert ops and all(isinstance(op, tuple) for op in ops)
        back = EventTrace.from_json(tr.to_json())
        assert [e.data["op"] for e in back.of_kind("complete")] == ops

    def test_json_roundtrip_nested_payloads(self):
        tr = EventTrace()
        tr.record("deliver", 3, src=0, dst=1,
                  payload=(("op", 2), [("op", 3), 4], {"k": (5, 6)}))
        back = EventTrace.from_json(tr.to_json())
        assert back.events == tr.events
        assert back.events[0].data["payload"][0] == ("op", 2)
