"""Sweep-token counting: the O(n)-max / Theta(n^2)-total baseline."""

from __future__ import annotations

import random

import pytest

from repro.core.comparison import growth_exponent
from repro.counting import run_sweep_counting
from repro.topology import complete_graph, hypercube_graph, mesh_graph, path_graph, star_graph


class TestSweep:
    def test_ranks_follow_path_order(self):
        r = run_sweep_counting(path_graph(6), range(6))
        assert r.counts == {v: v + 1 for v in range(6)}
        # delays: requester i completes when the token reaches it
        assert r.delays == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_subset_skips_nonrequesters_in_numbering_not_in_walk(self):
        r = run_sweep_counting(path_graph(8), [2, 6])
        assert r.counts == {2: 1, 6: 2}
        # the token still walks through 0 and 1 before reaching 2
        assert r.delays[2] == 2 and r.delays[6] == 6

    def test_total_quadratic_max_linear(self):
        ns = [8, 16, 32, 64]
        totals, maxes = [], []
        for n in ns:
            r = run_sweep_counting(complete_graph(n), range(n))
            totals.append(r.total_delay)
            maxes.append(r.max_delay)
        assert growth_exponent(ns, totals) > 1.8
        assert growth_exponent(ns, maxes) < 1.2

    def test_exact_total_on_complete(self):
        n = 20
        r = run_sweep_counting(complete_graph(n), range(n))
        assert r.total_delay == n * (n - 1) // 2

    def test_works_on_mesh_and_hypercube(self):
        for g in (mesh_graph([3, 4]), hypercube_graph(3)):
            r = run_sweep_counting(g, range(g.n))
            assert sorted(r.counts.values()) == list(range(1, g.n + 1))

    def test_explicit_order(self):
        g = complete_graph(5)
        r = run_sweep_counting(g, range(5), order=[4, 3, 2, 1, 0])
        assert r.counts[4] == 1 and r.counts[0] == 5

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            run_sweep_counting(path_graph(4), [1], order=[0, 2, 1, 3])

    def test_no_hamilton_path_graph_rejected(self):
        from repro.topology.base import TopologyError

        with pytest.raises(TopologyError):
            run_sweep_counting(star_graph(5), [1])

    def test_random_subsets_valid(self):
        rng = random.Random(8)
        for _ in range(15):
            n = rng.randint(2, 30)
            g = complete_graph(n)
            req = rng.sample(range(n), rng.randint(1, n))
            r = run_sweep_counting(g, req)
            assert sorted(r.counts.values()) == list(range(1, len(set(req)) + 1))
