"""Nearest-neighbour tours, run decomposition, bounds, and optima."""

from __future__ import annotations

import random

import pytest

from helpers import random_tree
from repro.tree import RootedTree
from repro.tsp import (
    binary_tree_tsp_bound,
    doubled_tree_tour,
    held_karp_optimal,
    lemma44_legs,
    list_tsp_bound,
    mary_tree_tsp_bound,
    nearest_neighbor_tour,
    rosenkrantz_nn_bound,
    run_decomposition,
    steiner_subtree_edges,
    tour_cost,
    tsp_path_lower_bound,
)
from repro.tsp.runs import satisfies_lemma44


def list_tree(n: int) -> RootedTree:
    return RootedTree.from_path(list(range(n)))


class TestNearestNeighborTour:
    def test_empty_like_single(self):
        t = list_tree(5)
        tour = nearest_neighbor_tour(t, [0])
        assert tour.order == (0,) and tour.cost == 0

    def test_start_counts_zero_leg_if_requesting(self):
        t = list_tree(5)
        tour = nearest_neighbor_tour(t, [0, 3])
        assert tour.order == (0, 3)
        assert tour.legs == (0, 3)

    def test_greedy_choice(self):
        t = list_tree(10)
        tour = nearest_neighbor_tour(t, [9, 2], start=0)
        assert tour.order == (2, 9)
        assert tour.cost == 2 + 7

    def test_tie_break_smallest_id(self):
        t = list_tree(7)
        # 1 and 5 both at distance 2 from start 3
        tour = nearest_neighbor_tour(t, [1, 5], start=3)
        assert tour.order == (1, 5)

    def test_duplicates_ignored(self):
        t = list_tree(4)
        tour = nearest_neighbor_tour(t, [2, 2, 2])
        assert tour.order == (2,)

    def test_custom_start(self):
        t = list_tree(8)
        tour = nearest_neighbor_tour(t, [0, 7], start=7)
        assert tour.order == (7, 0)

    def test_cost_equals_tour_cost_of_order(self):
        rng = random.Random(5)
        for trial in range(25):
            n = rng.randint(2, 40)
            t = random_tree(n, seed=trial)
            req = rng.sample(range(n), rng.randint(1, n))
            start = rng.randrange(n)
            tour = nearest_neighbor_tour(t, req, start=start)
            assert tour.cost == tour_cost(t, tour.order, start=start)
            assert sorted(tour.order) == sorted(set(req))

    def test_greedy_invariant_each_leg_is_nearest(self):
        rng = random.Random(6)
        for trial in range(15):
            n = rng.randint(2, 25)
            t = random_tree(n, seed=trial + 100)
            req = set(rng.sample(range(n), rng.randint(1, n)))
            tour = nearest_neighbor_tour(t, req)
            cur = t.root
            remaining = set(req)
            for v, leg in zip(tour.order, tour.legs):
                dmin = min(t.distance(cur, u) for u in remaining)
                assert leg == dmin
                assert t.distance(cur, v) == dmin
                remaining.discard(v)
                cur = v


class TestRuns:
    def test_single_run(self):
        runs = run_decomposition([1, 3, 5, 9])
        assert len(runs) == 1
        assert runs[0].direction == 1 and runs[0].last == 9

    def test_alternating(self):
        runs = run_decomposition([5, 3, 4, 2])
        assert [r.vertices for r in runs] == [(5, 3), (4, 2)]
        assert [r.direction for r in runs] == [-1, -1]

    def test_singleton(self):
        runs = run_decomposition([4])
        assert len(runs) == 1 and runs[0].direction == 0

    def test_empty(self):
        assert run_decomposition([]) == []

    def test_legs_from_known_tour(self):
        # start 0, visit 2 then 1 then 5: runs (2,1) and (5); lasts 1, 5;
        # legs are d(0,1)=1 and d(1,5)=4.
        legs = lemma44_legs([2, 1, 5], start=0)
        assert legs == [1, 4]

    def test_lemma44_on_nn_tours(self):
        rng = random.Random(9)
        for trial in range(30):
            n = rng.randint(2, 200)
            t = list_tree(n)
            req = rng.sample(range(n), rng.randint(1, n))
            start = rng.randrange(n)
            tour = nearest_neighbor_tour(t, req, start=start)
            legs = lemma44_legs(tour.order, start=start)
            assert satisfies_lemma44(legs), (n, start, sorted(req))

    def test_lemma44_violated_by_bad_tour(self):
        # A deliberately non-greedy zigzag violates the inequality.
        assert not satisfies_lemma44([5, 4, 3])


class TestBounds:
    def test_list_bound_on_many_instances(self):
        rng = random.Random(2)
        for n in (2, 10, 100, 500):
            t = list_tree(n)
            for trial in range(5):
                req = rng.sample(range(n), rng.randint(1, n))
                start = rng.randrange(n)
                tour = nearest_neighbor_tour(t, req, start=start)
                assert tour.cost <= list_tsp_bound(n)

    def test_list_bound_value(self):
        assert list_tsp_bound(10) == 30
        with pytest.raises(ValueError):
            list_tsp_bound(0)

    def test_binary_bound_formula(self):
        # d = floor(log2 15) = 3 -> 2*3*4 + 8*15
        assert binary_tree_tsp_bound(15) == 24 + 120
        with pytest.raises(ValueError):
            binary_tree_tsp_bound(0)

    def test_binary_bound_on_perfect_trees(self):
        for depth in (2, 3, 4, 5, 6):
            n = 2 ** (depth + 1) - 1
            par = [0] + [(v - 1) // 2 for v in range(1, n)]
            t = RootedTree(par)
            tour = nearest_neighbor_tour(t, list(range(n)))
            assert tour.cost <= binary_tree_tsp_bound(n)

    def test_mary_bound_on_perfect_trees(self):
        from repro.topology import perfect_mary_tree

        for m in (3, 4):
            for depth in (1, 2, 3):
                g = perfect_mary_tree(m, depth)
                t = RootedTree.from_edges(g.n, g.edges(), root=0)
                tour = nearest_neighbor_tour(t, list(range(g.n)))
                assert tour.cost <= mary_tree_tsp_bound(g.n, m)

    def test_mary_bound_validation(self):
        with pytest.raises(ValueError):
            mary_tree_tsp_bound(10, 1)
        with pytest.raises(ValueError):
            mary_tree_tsp_bound(0, 3)

    def test_rosenkrantz_envelope(self):
        rng = random.Random(3)
        for trial in range(20):
            n = rng.randint(2, 60)
            t = random_tree(n, seed=trial + 50)
            k = rng.randint(1, n)
            req = rng.sample(range(n), k)
            tour = nearest_neighbor_tour(t, req)
            assert tour.cost <= rosenkrantz_nn_bound(n, k)

    def test_rosenkrantz_degenerate(self):
        assert rosenkrantz_nn_bound(10, 0) == 0.0
        assert rosenkrantz_nn_bound(10, 1) == 9


class TestSteinerAndOptimal:
    def test_steiner_edges_simple_path(self):
        t = list_tree(10)
        assert steiner_subtree_edges(t, [0, 5]) == 5
        assert steiner_subtree_edges(t, [3, 7], start=3) == 4

    def test_steiner_trims_above(self):
        #     0 - 1 - 2 - 3 with requests {2,3}, start 2
        t = list_tree(4)
        assert steiner_subtree_edges(t, [2, 3], start=2) == 1

    def test_held_karp_matches_closed_form(self):
        rng = random.Random(8)
        for trial in range(40):
            n = rng.randint(2, 16)
            t = random_tree(n, seed=trial + 200)
            k = rng.randint(1, min(7, n))
            req = rng.sample(range(n), k)
            start = rng.randrange(n)
            opt = held_karp_optimal(t, req, start=start)
            closed = tsp_path_lower_bound(t, req, start=start)
            assert opt == closed

    def test_held_karp_rejects_large(self):
        t = list_tree(20)
        with pytest.raises(ValueError):
            held_karp_optimal(t, list(range(18)))

    def test_held_karp_empty(self):
        assert held_karp_optimal(list_tree(3), []) == 0

    def test_nn_between_opt_and_envelope(self):
        rng = random.Random(4)
        for trial in range(25):
            n = rng.randint(2, 30)
            t = random_tree(n, seed=trial + 300)
            k = rng.randint(1, min(8, n))
            req = rng.sample(range(n), k)
            nn = nearest_neighbor_tour(t, req)
            opt = held_karp_optimal(t, req)
            assert opt <= nn.cost <= rosenkrantz_nn_bound(n, k)

    def test_doubled_tree_two_approx(self):
        rng = random.Random(10)
        for trial in range(25):
            n = rng.randint(2, 30)
            t = random_tree(n, seed=trial + 400)
            k = rng.randint(1, n)
            req = rng.sample(range(n), k)
            order, cost = doubled_tree_tour(t, req)
            assert sorted(order) == sorted(set(req))
            assert cost <= 2 * steiner_subtree_edges(t, set(req) | {t.root})

    def test_doubled_tree_empty(self):
        assert doubled_tree_tour(list_tree(4), []) == ([], 0)
