"""Core problem types, verifiers, request scenarios, comparison harness."""

from __future__ import annotations

import pytest

from repro.core import (
    VerificationError,
    all_nodes,
    alternating,
    far_half,
    growth_exponent,
    random_subset,
    scenario_suite,
    single_node,
    verify_counting,
    verify_queuing,
    verify_total_order_consistency,
)
from repro.core.comparison import AlgorithmSpec, ComparisonRow, compare_on_graph, ratio_series
from repro.core.request import exhaustive_request_sets, request_sets_of_size
from repro.topology import complete_graph, path_graph, star_graph


class TestVerifyCounting:
    def test_valid(self):
        verify_counting([3, 5, 9], {3: 2, 5: 1, 9: 3})

    def test_empty_request_set(self):
        with pytest.raises(VerificationError, match="empty request set"):
            verify_counting([], {})

    def test_empty_requests_with_counts(self):
        with pytest.raises(VerificationError):
            verify_counting([], {1: 1})

    def test_wrong_recipients(self):
        with pytest.raises(VerificationError):
            verify_counting([1, 2], {1: 1, 3: 2})

    def test_missing_recipient(self):
        with pytest.raises(VerificationError):
            verify_counting([1, 2], {1: 1})

    def test_duplicate_counts(self):
        with pytest.raises(VerificationError):
            verify_counting([1, 2], {1: 1, 2: 1})

    def test_gap_in_counts(self):
        with pytest.raises(VerificationError):
            verify_counting([1, 2], {1: 1, 2: 3})


class TestVerifyQueuing:
    def test_valid_chain(self):
        preds = {
            ("op", 2): ("init", 0),
            ("op", 5): ("op", 2),
            ("op", 1): ("op", 5),
        }
        chain = verify_queuing([1, 2, 5], preds, tail=0)
        assert chain == [("op", 2), ("op", 5), ("op", 1)]

    def test_wrong_op_set(self):
        with pytest.raises(VerificationError):
            verify_queuing([1, 2], {("op", 1): ("init", 0)}, tail=0)

    def test_fork_detected(self):
        preds = {("op", 1): ("init", 0), ("op", 2): ("init", 0)}
        with pytest.raises(VerificationError):
            verify_queuing([1, 2], preds, tail=0)

    def test_cycle_detected(self):
        preds = {("op", 1): ("op", 2), ("op", 2): ("op", 1)}
        with pytest.raises(VerificationError):
            verify_queuing([1, 2], preds, tail=0)

    def test_chain_not_anchored_at_tail(self):
        preds = {("op", 1): ("init", 9), ("op", 2): ("op", 1)}
        with pytest.raises(VerificationError):
            verify_queuing([1, 2], preds, tail=0)

    def test_empty_request_set(self):
        with pytest.raises(VerificationError, match="empty request set"):
            verify_queuing([], {}, tail=0)

    def test_duplicate_requests_collapse(self):
        # Duplicate request ids denote one operation, not two.
        preds = {("op", 1): ("init", 0)}
        chain = verify_queuing([1, 1], preds, tail=0)
        assert chain == [("op", 1)]

    def test_self_cycle_detected(self):
        preds = {("op", 1): ("init", 0), ("op", 2): ("op", 2)}
        with pytest.raises(VerificationError):
            verify_queuing([1, 2], preds, tail=0)


class TestOrderConsistency:
    def test_identical_orders_pass(self):
        verify_total_order_consistency([[1, 2, 3], [1, 2, 3]])

    def test_divergent_orders_fail(self):
        with pytest.raises(VerificationError):
            verify_total_order_consistency([[1, 2, 3], [1, 3, 2]])

    def test_empty(self):
        verify_total_order_consistency([])


class TestScenarios:
    def test_all_nodes(self):
        assert all_nodes()(path_graph(5)) == [0, 1, 2, 3, 4]

    def test_single(self):
        assert single_node(3)(path_graph(5)) == [3]

    def test_random_subset_seeded(self):
        s = random_subset(0.5, seed=3)
        g = complete_graph(30)
        assert s(g) == s(g)
        assert len(s(g)) >= 1

    def test_random_subset_never_empty(self):
        s = random_subset(0.0001, seed=1)
        assert len(s(path_graph(10))) >= 1

    def test_random_subset_invalid_p(self):
        with pytest.raises(ValueError):
            random_subset(0.0)
        with pytest.raises(ValueError):
            random_subset(1.5)

    def test_far_half_prefers_distance(self):
        req = far_half(0)(path_graph(10))
        assert len(req) == 5
        assert set(req) == {5, 6, 7, 8, 9}

    def test_alternating(self):
        assert alternating(3)(path_graph(10)) == [0, 3, 6, 9]
        with pytest.raises(ValueError):
            alternating(0)

    def test_suite_is_nonempty_and_named(self):
        suite = scenario_suite()
        assert len(suite) >= 4
        assert len({s.name for s in suite}) == len(suite)

    def test_exhaustive_sets(self):
        sets = exhaustive_request_sets(3)
        assert len(sets) == 7
        with pytest.raises(ValueError):
            exhaustive_request_sets(20)

    def test_fixed_size_sets(self):
        sets = request_sets_of_size(10, 3, count=5, seed=0)
        assert len(sets) == 5
        assert all(len(s) == 3 for s in sets)
        assert len({tuple(s) for s in sets}) == 5
        with pytest.raises(ValueError):
            request_sets_of_size(5, 9, count=1)


class TestComparison:
    def test_compare_on_graph_rows(self):
        from repro.counting import run_central_counting

        spec = AlgorithmSpec(
            name="central",
            kind="counting",
            run=lambda g, req: run_central_counting(g, req),
        )
        rows = compare_on_graph(star_graph(6), [spec], [all_nodes()])
        assert len(rows) == 1
        row = rows[0]
        assert isinstance(row, ComparisonRow)
        assert row.requesters == 6 and row.kind == "counting"
        assert row.total_delay > 0

    def test_spec_kind_validated(self):
        with pytest.raises(ValueError):
            AlgorithmSpec(name="x", kind="sorting", run=lambda g, r: None)

    def test_growth_exponent_shapes(self):
        ns = [8, 16, 32, 64]
        assert abs(growth_exponent(ns, [n * n for n in ns]) - 2.0) < 1e-9
        assert abs(growth_exponent(ns, ns) - 1.0) < 1e-9

    def test_growth_exponent_validation(self):
        with pytest.raises(ValueError):
            growth_exponent([1], [1])
        with pytest.raises(ValueError):
            growth_exponent([1, 2], [0, 5])

    def test_ratio_series(self):
        rows = [
            ComparisonRow("g", 8, "all", "count", "counting", 8, 80, 10),
            ComparisonRow("g", 8, "all", "queue", "queuing", 8, 20, 5),
            ComparisonRow("g", 16, "all", "count", "counting", 16, 320, 20),
            ComparisonRow("g", 16, "all", "queue", "queuing", 16, 40, 10),
        ]
        series = ratio_series(rows, "count", "queue")
        assert series == {8: 4.0, 16: 8.0}
