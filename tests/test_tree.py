"""RootedTree: construction, LCA, distances, paths, traversals."""

from __future__ import annotations

import random

import pytest

from helpers import random_tree, tree_as_graph
from repro.topology.properties import bfs_distances
from repro.tree import (
    RootedTree,
    TreeError,
    dfs_preorder,
    euler_tour,
    leaves_of,
    subtree_sizes,
)


class TestConstruction:
    def test_single_vertex(self):
        t = RootedTree([0])
        assert t.n == 1 and t.root == 0 and t.height() == 0

    def test_parent_list(self):
        t = RootedTree([0, 0, 0, 1, 1])
        assert t.root == 0
        assert t.children[0] == (1, 2)
        assert t.children[1] == (3, 4)
        assert t.depth == (0, 1, 1, 2, 2)

    def test_parent_mapping(self):
        t = RootedTree({0: 0, 1: 0, 2: 1})
        assert t.depth[2] == 2

    def test_missing_vertex_in_mapping(self):
        with pytest.raises(TreeError):
            RootedTree({0: 0, 2: 0})

    def test_no_root_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([1, 0])  # two roots? 0->1, 1->0 is a cycle, no self-parent

    def test_two_roots_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([0, 1, 0])

    def test_cycle_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([0, 2, 1])

    def test_empty_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([])

    def test_from_path(self):
        t = RootedTree.from_path([3, 1, 0, 2])
        assert t.root == 3
        assert t.parent[1] == 3 and t.parent[0] == 1 and t.parent[2] == 0
        assert t.height() == 3

    def test_from_edges(self):
        t = RootedTree.from_edges(4, [(0, 1), (1, 2), (1, 3)], root=1)
        assert t.root == 1
        assert sorted(t.children[1]) == [0, 2, 3]

    def test_from_edges_wrong_count(self):
        with pytest.raises(TreeError):
            RootedTree.from_edges(4, [(0, 1), (1, 2)])

    def test_from_edges_disconnected(self):
        with pytest.raises(TreeError):
            RootedTree.from_edges(4, [(0, 1), (0, 1), (2, 3)])


class TestQueries:
    def make(self):
        #        0
        #      /   \
        #     1     2
        #    / \     \
        #   3   4     5
        #  /
        # 6
        return RootedTree([0, 0, 0, 1, 1, 2, 3])

    def test_lca(self):
        t = self.make()
        assert t.lca(3, 4) == 1
        assert t.lca(6, 4) == 1
        assert t.lca(6, 5) == 0
        assert t.lca(2, 5) == 2
        assert t.lca(0, 6) == 0
        assert t.lca(4, 4) == 4

    def test_distance(self):
        t = self.make()
        assert t.distance(6, 5) == 5
        assert t.distance(3, 4) == 2
        assert t.distance(0, 0) == 0
        assert t.distance(6, 6) == 0

    def test_path(self):
        t = self.make()
        assert t.path(6, 5) == [6, 3, 1, 0, 2, 5]
        assert t.path(4, 4) == [4]
        assert t.path(0, 6) == [0, 1, 3, 6]

    def test_ancestor(self):
        t = self.make()
        assert t.ancestor(6, 1) == 3
        assert t.ancestor(6, 3) == 0
        assert t.ancestor(6, 99) == 0  # clamped at root

    def test_degree(self):
        t = self.make()
        assert t.degree(0) == 2
        assert t.degree(1) == 3
        assert t.degree(6) == 1
        assert t.max_degree() == 3

    def test_edges(self):
        t = self.make()
        assert sorted(t.edges()) == [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (3, 6)]

    def test_distance_matches_bfs_on_random_trees(self):
        rng = random.Random(11)
        for trial in range(20):
            n = rng.randint(2, 40)
            t = random_tree(n, seed=trial)
            g = tree_as_graph(t)
            src = rng.randrange(n)
            dist = bfs_distances(g, src)
            for v in range(n):
                assert t.distance(src, v) == dist[v]


class TestTraversal:
    def test_preorder(self):
        t = RootedTree([0, 0, 0, 1, 1, 2, 3])
        assert dfs_preorder(t) == [0, 1, 3, 6, 4, 2, 5]

    def test_euler_tour_length_and_endpoints(self):
        t = random_tree(15, seed=3)
        tour = euler_tour(t)
        assert len(tour) == 2 * t.n - 1
        assert tour[0] == t.root and tour[-1] == t.root

    def test_euler_tour_steps_are_edges(self):
        t = random_tree(25, seed=4)
        edge_set = {frozenset(e) for e in t.edges()}
        tour = euler_tour(t)
        for a, b in zip(tour, tour[1:]):
            assert frozenset((a, b)) in edge_set

    def test_euler_tour_each_edge_twice(self):
        from collections import Counter

        t = random_tree(12, seed=5)
        tour = euler_tour(t)
        counts = Counter(frozenset(p) for p in zip(tour, tour[1:]))
        assert all(c == 2 for c in counts.values())
        assert len(counts) == t.n - 1

    def test_leaves(self):
        t = RootedTree([0, 0, 0, 1, 1, 2, 3])
        assert leaves_of(t) == [4, 5, 6]

    def test_subtree_sizes(self):
        t = RootedTree([0, 0, 0, 1, 1, 2, 3])
        sizes = subtree_sizes(t)
        assert sizes[0] == 7
        assert sizes[1] == 4
        assert sizes[2] == 2
        assert sizes[6] == 1

    def test_single_vertex_tour(self):
        t = RootedTree([0])
        assert euler_tour(t) == [0]
        assert dfs_preorder(t) == [0]
