"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen",
        action="store_true",
        default=False,
        help="rewrite the golden trace fixtures under tests/golden/ from "
        "the current engine instead of comparing against them",
    )


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)
