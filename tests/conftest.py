"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)
