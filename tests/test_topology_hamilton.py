"""Hamilton-path constructions (Lemma 4.6)."""

from __future__ import annotations

import pytest

from repro.topology import (
    complete_graph,
    hamilton_path_complete,
    hamilton_path_hypercube,
    hamilton_path_mesh,
    hamilton_path_of,
    hypercube_graph,
    is_hamilton_path,
    mesh_graph,
    path_graph,
    star_graph,
)
from repro.topology.base import TopologyError
from repro.topology.hamilton import find_hamilton_path


class TestConstructions:
    @pytest.mark.parametrize("n", [1, 2, 5, 12])
    def test_complete(self, n):
        order = hamilton_path_complete(n)
        assert is_hamilton_path(complete_graph(n), order)

    @pytest.mark.parametrize(
        "dims", [[4], [2, 3], [3, 3], [4, 5], [2, 2, 2], [3, 2, 4], [2, 3, 2, 2]]
    )
    def test_mesh_boustrophedon(self, dims):
        order = hamilton_path_mesh(dims)
        assert is_hamilton_path(mesh_graph(dims), order)

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 6])
    def test_hypercube_gray_code(self, d):
        order = hamilton_path_hypercube(d)
        assert is_hamilton_path(hypercube_graph(d), order)

    def test_invalid_args(self):
        with pytest.raises(TopologyError):
            hamilton_path_complete(0)
        with pytest.raises(TopologyError):
            hamilton_path_mesh([])
        with pytest.raises(TopologyError):
            hamilton_path_hypercube(0)


class TestValidation:
    def test_rejects_wrong_vertex_set(self):
        g = complete_graph(4)
        assert not is_hamilton_path(g, [0, 1, 2])
        assert not is_hamilton_path(g, [0, 1, 2, 2])

    def test_rejects_non_edges(self):
        g = path_graph(4)
        assert not is_hamilton_path(g, [0, 2, 1, 3])
        assert is_hamilton_path(g, [0, 1, 2, 3])
        assert is_hamilton_path(g, [3, 2, 1, 0])


class TestDispatch:
    @pytest.mark.parametrize(
        "g",
        [
            complete_graph(6),
            mesh_graph([3, 4]),
            hypercube_graph(3),
            path_graph(9),
        ],
    )
    def test_recognised_families(self, g):
        assert is_hamilton_path(g, hamilton_path_of(g))

    def test_fallback_search_on_ring(self):
        from repro.topology import ring_graph

        g = ring_graph(8)
        assert is_hamilton_path(g, hamilton_path_of(g))

    def test_star_has_no_hamilton_path(self):
        with pytest.raises(TopologyError):
            hamilton_path_of(star_graph(5))


class TestBacktracking:
    def test_finds_on_small_graphs(self):
        g = mesh_graph([2, 3])
        order = find_hamilton_path(g)
        assert order is not None and is_hamilton_path(g, order)

    def test_none_when_absent(self):
        assert find_hamilton_path(star_graph(4)) is None

    def test_single_vertex(self):
        from repro.topology.base import Graph

        g = Graph.from_edges(1, [])
        assert find_hamilton_path(g) == [0]
