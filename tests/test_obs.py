"""Observability layer tests: registry, exporters, profiler, instrumentation.

Covers the ``repro.obs`` contract end to end: metric primitives and the
pinned histogram bucket edges, the Chrome/Perfetto and JSONL exporters,
the wall-clock phase profiler, the engine/fault/reliable instrumentation
sites, the zero-perturbation guarantee (attaching observers never changes
the execution), and the paper-facing payoff — flood's Theta(n^2) and
arrow's near-constant per-op delays land in visibly different histogram
buckets on the path graph.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    path_graph,
    path_spanning_tree,
    run_arrow,
    run_flood_counting,
    star_graph,
)
from repro.obs import (
    DEFAULT_ROUND_BUCKETS,
    FAULT_EVENT_KINDS,
    Histogram,
    MetricsRegistry,
    PhaseProfiler,
    ROUND_US,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import EventTrace


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        assert reg.counters["c"].value == 5
        reg.set_gauge("g", 7)
        reg.set_gauge("g", 3)
        assert reg.gauges["g"].value == 3
        assert reg.gauges["g"].high == 7
        reg.observe("h", 2)
        reg.observe("h", 2)
        assert reg.histograms["h"].count == 2
        reg.sample("s", 0, 10)
        reg.sample("s", 1, 20)
        assert reg.series["s"] == [(0, 10), (1, 20)]
        assert list(reg.names()) == ["c", "g", "h", "s"]

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("x") is reg.gauge("x")
        assert reg.histogram("x") is reg.histogram("x")

    def test_histogram_bucket_conflict(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1, 2, 4))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1, 2, 8))

    def test_to_dict_is_json_safe(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 3)
        reg.sample("s", 0, 1)
        doc = json.loads(json.dumps(reg.to_dict()))
        assert doc["counters"]["c"] == 1
        assert doc["gauges"]["g"] == {"value": 1, "high": 1}
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["series"]["s"] == [[0, 1]]

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        path = tmp_path / "m.json"
        reg.write_json(str(path))
        assert json.loads(path.read_text())["counters"]["c"] == 2


class TestHistogram:
    def test_default_bucket_edges_pinned(self):
        # Part of the exported-metrics contract: 0, then 2^0 .. 2^20.
        assert DEFAULT_ROUND_BUCKETS == (
            0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
            8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576,
        )

    def test_bucketing(self):
        h = Histogram("h", buckets=(0, 2, 4))
        for v in (0, 1, 2, 3, 4, 5):
            h.observe(v)
        # v=0 -> edge 0; v in {1,2} -> edge 2; v in {3,4} -> edge 4; 5 overflows.
        assert h.counts == [1, 2, 2, 1]
        assert h.count == 6
        assert h.total == 15
        assert h.mean == 2.5
        assert (h.min, h.max) == (0, 5)

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2, 1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1, 2))

    def test_percentile(self):
        h = Histogram("h", buckets=(1, 2, 4, 8))
        for v in (1, 1, 1, 1, 1, 1, 1, 1, 1, 7):
            h.observe(v)
        assert h.percentile(0.5) == 1
        assert h.percentile(1.0) == 8
        with pytest.raises(ValueError):
            h.percentile(0.0)
        assert Histogram("e").percentile(0.5) == 0

    def test_percentile_overflow_bucket(self):
        h = Histogram("h", buckets=(1, 2))
        h.observe(100)
        assert h.percentile(0.9) == 100  # overflow bucket reports the max


def _arrow_trace(n: int = 6) -> EventTrace:
    tr = EventTrace()
    run_arrow(path_spanning_tree(path_graph(n)), range(n), trace=tr)
    return tr


class TestChromeTrace:
    def test_every_event_well_formed(self):
        doc = chrome_trace(_arrow_trace())
        assert doc["displayTimeUnit"] == "ms"
        evs = doc["traceEvents"]
        assert evs, "empty trace export"
        for e in evs:
            assert e["ph"] in ("X", "i", "M", "C")
            assert e["pid"] == 1
            if e["ph"] != "M":
                assert isinstance(e["ts"], int) and e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 1

    def test_tracks_and_spans(self):
        doc = chrome_trace(_arrow_trace(), label="unit")
        evs = doc["traceEvents"]
        names = {e["name"] for e in evs}
        procs = [e for e in evs if e["name"] == "process_name"]
        assert procs[0]["args"]["name"] == "unit"
        threads = {e["tid"] for e in evs if e["name"] == "thread_name"}
        assert threads == set(range(6))  # one track per node
        assert any(n.startswith("op (") for n in names)  # op spans
        assert any("->" in n for n in names)  # message spans
        assert "messages/round" in names  # counter track

    def test_round_scale(self):
        doc = chrome_trace(_arrow_trace())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["ts"] % ROUND_US == 0 for e in spans)
        assert all(e["dur"] % ROUND_US == 0 for e in spans)

    def test_unmatched_send_flagged(self):
        tr = EventTrace()
        tr.record("send", 2, src=0, dst=1, kind="req")
        doc = chrome_trace(tr)
        inst = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst[0]["name"] == "unmatched send 0->1"
        assert inst[0]["args"]["unmatched"] is True

    def test_fault_instants(self):
        tr = EventTrace()
        tr.record("drop", 1, src=0, dst=1, kind="req", reason="outage")
        tr.record("duplicate", 2, src=1, dst=0, kind="ack")
        tr.record("crash", 3, node=2)
        tr.record("recover", 5, node=2)
        doc = chrome_trace(tr)
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "i"}
        assert by_name["drop 0-x>1"]["args"]["reason"] == "outage"
        assert "duplicate 1->0" in by_name
        assert by_name["crash"]["tid"] == 2
        assert by_name["recover"]["ts"] == 5 * ROUND_US
        assert set(FAULT_EVENT_KINDS) == {"drop", "duplicate", "crash", "recover"}

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "t.perfetto.json"
        write_chrome_trace(_arrow_trace(), str(path))
        doc = json.loads(path.read_text())
        assert all("ph" in e and "pid" in e for e in doc["traceEvents"])


class TestJsonl:
    def test_round_trips_through_json_loads(self, tmp_path):
        tr = _arrow_trace()
        lines = list(jsonl_lines(tr))
        assert len(lines) == len(tr)
        for line, ev in zip(lines, tr.events):
            doc = json.loads(line)
            assert doc["event"] == ev.kind
            assert doc["round"] == ev.round
        path = tmp_path / "t.jsonl"
        assert write_jsonl(tr, str(path)) == len(tr)
        assert path.read_text().count("\n") == len(tr)

    def test_non_json_values_reprd(self):
        tr = EventTrace()
        tr.record("complete", 4, node=0, op=("op", 0))
        doc = json.loads(next(jsonl_lines(tr)))
        assert doc["op"] == repr(("op", 0))


class TestEngineInstrumentation:
    def test_run_stats_view_matches_engine_stats(self):
        reg = MetricsRegistry()
        res = run_flood_counting(path_graph(8), range(8), metrics=reg)
        assert reg.run_stats_view() == res.stats

    def test_observers_do_not_perturb_execution(self):
        base = EventTrace()
        run_arrow(path_spanning_tree(path_graph(8)), range(8), trace=base)
        observed = EventTrace()
        run_arrow(
            path_spanning_tree(path_graph(8)), range(8), trace=observed,
            metrics=MetricsRegistry(), profiler=PhaseProfiler(),
        )
        assert [(e.kind, e.round, e.data) for e in base.events] == [
            (e.kind, e.round, e.data) for e in observed.events
        ]

    def test_delay_histogram_and_series(self):
        reg = MetricsRegistry()
        res = run_flood_counting(star_graph(6), range(6), metrics=reg)
        h = reg.histograms["op.delay"]
        assert h.count == 6
        assert h.total == sum(res.delays.values())
        assert reg.histograms["msg.link_wait"].count > 0
        assert reg.series["engine.in_flight"]  # one sample per executed round

    def test_fault_metrics(self):
        from repro.faults import FaultPlan, NodeCrash, run_central_counting_ft

        reg = MetricsRegistry()
        plan = FaultPlan(
            seed=3, drop_rate=0.2, max_consecutive_drops=2,
            crashes=(NodeCrash(0, 2, 12),),  # the star hub goes dark
        )
        res = run_central_counting_ft(star_graph(8), range(8), plan, metrics=reg)
        c = reg.counters
        assert c["faults.node_crashes"].value == 1
        assert c["faults.node_recoveries"].value == 1
        assert c["engine.messages_dropped"].value > 0
        assert c["reliable.app_sends"].value > 0
        assert c["reliable.acks_sent"].value > 0
        assert c["reliable.retransmits"].value > 0
        assert reg.series["faults.crash"] == [(2, 0)]
        assert reg.run_stats_view() == res.stats


class TestProfiler:
    def test_phases_recorded(self):
        prof = PhaseProfiler()
        run_flood_counting(path_graph(8), range(8), profiler=prof)
        names = {r["phase"] for r in prof.phases()}
        assert {"send", "receive", "wake", "node.on_receive"} <= names
        assert prof.rounds > 0
        assert prof.wall > 0.0
        assert prof.hottest() in names

    def test_nested_share_accounting(self):
        prof = PhaseProfiler()
        prof.add("send", 0.3)
        prof.add("receive", 0.7)
        prof.add("node.on_receive", 0.5)  # nested: excluded from the base
        rows = {r["phase"]: r for r in prof.phases()}
        assert rows["receive"]["share"] == pytest.approx(0.7)
        assert rows["node.on_receive"]["share"] == pytest.approx(0.5)
        assert rows["node.on_receive"]["nested"] is True

    def test_render_and_to_dict(self):
        prof = PhaseProfiler()
        assert prof.render() == "(no phases recorded)"
        prof.add("send", 0.001)
        prof.tick_round()
        text = prof.render()
        assert "send" in text and "rounds executed: 1" in text
        doc = json.loads(json.dumps(prof.to_dict()))
        assert doc["rounds"] == 1
        assert doc["phases"][0]["phase"] == "send"


class TestSeparation:
    def test_flood_vs_arrow_delay_histograms_on_path(self):
        """The paper's gap, read straight off the exported histograms.

        On the path graph flood counting needs Theta(n) rounds per
        operation (Theta(n^2) total — every requester waits on news from
        the far end), while the arrow protocol's queuing completes each
        operation in O(1) on the pre-oriented path.  The fixed bucket
        edges make the two runs directly comparable.
        """
        means = {}
        for n in (16, 24):
            flood, arrow = MetricsRegistry(), MetricsRegistry()
            run_flood_counting(path_graph(n), range(n), metrics=flood)
            run_arrow(
                path_spanning_tree(path_graph(n)), range(n), metrics=arrow
            )
            hf = flood.histograms["op.delay"]
            ha = arrow.histograms["op.delay"]
            assert hf.buckets == ha.buckets == DEFAULT_ROUND_BUCKETS
            assert hf.mean > 8 * ha.mean
            assert hf.percentile(0.9) >= 16 * ha.percentile(0.9)
            means[n] = (hf.mean, ha.mean)
        # Flood's per-op delay grows with n (quadratic total); arrow's
        # per-op delay does not.
        assert means[24][0] > 1.3 * means[16][0]
        assert means[24][1] <= 2 * means[16][1]


class TestSimMetricsHelpers:
    def test_delay_summary_to_dict(self):
        from repro.sim.metrics import summarize_delays

        s = summarize_delays([1, 2, 3])
        assert s.to_dict() == {"count": 3, "total": 6, "max": 3, "mean": 2.0}

    def test_trace_helpers(self):
        tr = EventTrace()
        tr.record("send", 2, src=0, dst=1, kind="x")
        tr.record("drop", 5, src=0, dst=1, kind="x", reason="drop")
        assert [e.kind for e in tr.fault_events()] == ["drop"]
        assert tr.last_round() == 5
        assert EventTrace().last_round() == 0
