"""Property-based tests (hypothesis) on the core invariants.

These are the paper's invariants stated as properties over randomly
generated trees, graphs, and request sets:

* the arrow protocol always produces one valid total order and never
  exceeds twice the NN-TSP cost (Theorem 4.1);
* every counting algorithm always hands out exactly ``1..|R|`` and never
  beats the analytic lower bounds;
* the NN tour is sandwiched between the exact optimum and the
  Rosenkrantz envelope, and on lists obeys Lemma 4.3/4.4;
* ``log*``/``tow`` satisfy their defining identities;
* under any randomly generated *eventually-delivering* fault plan
  (drops, duplicates, outages, finite crashes), the reliable-delivery
  wrapper keeps arrow queuing and central counting correct: the run
  completes, counts are exactly ``1..|R|``, and the queue is one chain.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrow import arrow_vs_tsp, run_arrow
from repro.bounds import log_star, min_latency_for_count, theorem35_lower_bound, tow
from repro.core.verify import verify_counting, verify_queuing
from repro.counting import (
    run_central_counting,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
)
from repro.faults import (
    FaultPlan,
    LinkOutage,
    NodeCrash,
    run_arrow_ft,
    run_central_counting_ft,
)
from repro.topology.base import Graph
from repro.topology.spanning import SpanningTree
from repro.tree import RootedTree
from repro.tsp import (
    held_karp_optimal,
    lemma44_legs,
    list_tsp_bound,
    nearest_neighbor_tour,
    rosenkrantz_nn_bound,
    tsp_path_lower_bound,
)
from repro.tsp.runs import satisfies_lemma44


# ----------------------------------------------------------------- strategies


@st.composite
def rooted_trees(draw, max_n=40, max_children=None):
    """A random rooted tree as a parent array (vertex v attaches below v)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    parent = [0] * n
    counts = [0] * n
    for v in range(1, n):
        candidates = [
            p for p in range(v) if max_children is None or counts[p] < max_children
        ]
        p = draw(st.sampled_from(candidates))
        parent[v] = p
        counts[p] += 1
    return RootedTree(parent)


@st.composite
def trees_with_requests(draw, max_n=40, max_children=None):
    tree = draw(rooted_trees(max_n=max_n, max_children=max_children))
    k = draw(st.integers(min_value=1, max_value=tree.n))
    req = draw(
        st.lists(
            st.integers(min_value=0, max_value=tree.n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return tree, sorted(req)


@st.composite
def connected_graphs(draw, max_n=16):
    """A random connected graph: a random tree plus random extra edges."""
    tree = draw(rooted_trees(max_n=max_n))
    n = tree.n
    edges = set(map(tuple, (sorted(e) for e in tree.edges())))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=2 * n,
        )
    )
    for u, v in extra:
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(n, edges, name=f"hyp({n})")


def spanning_of(tree: RootedTree) -> SpanningTree:
    g = Graph.from_edges(tree.n, tree.edges(), name="hyp-tree")
    return SpanningTree(g, tree, label="hyp")


@st.composite
def chaos_plans(draw, n: int):
    """A random *eventually-delivering* fault plan for an n-vertex instance.

    Drop runs are bounded, outage windows are finite by construction, and
    every crash recovers — exactly the hypothesis under which the
    reliable wrapper promises completion (see ``docs/FAULTS.md``).
    """
    outages = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != u))
        start = draw(st.integers(min_value=0, max_value=12))
        outages.append(LinkOutage(u, v, start, start + draw(st.integers(1, 8))))
    crashes = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        node = draw(st.integers(min_value=0, max_value=n - 1))
        start = draw(st.integers(min_value=0, max_value=12))
        crashes.append(NodeCrash(node, start, start + draw(st.integers(1, 8))))
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=10**6)),
        drop_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
        duplicate_rate=draw(st.floats(min_value=0.0, max_value=0.2)),
        max_consecutive_drops=2,
        outages=tuple(outages),
        crashes=tuple(crashes),
    )


@st.composite
def trees_requests_and_plans(draw, max_n=12):
    tree, req = draw(trees_with_requests(max_n=max_n))
    return tree, req, draw(chaos_plans(tree.n))


@st.composite
def graphs_requests_and_plans(draw, max_n=10):
    g = draw(connected_graphs(max_n=max_n))
    k = draw(st.integers(min_value=1, max_value=g.n))
    req = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=g.n - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
    )
    return g, req, draw(chaos_plans(g.n))


# ------------------------------------------------------------------ the props


class TestArrowProperties:
    @given(data=trees_with_requests(max_n=30), tail_seed=st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_arrow_always_forms_valid_total_order(self, data, tail_seed):
        tree, req = data
        tail = tail_seed % tree.n
        res = run_arrow(spanning_of(tree), req, tail=tail)
        chain = verify_queuing(req, res.predecessors, tail=tail)
        assert [op[1] for op in chain] == res.order()

    @given(data=trees_with_requests(max_n=30, max_children=3))
    @settings(max_examples=60, deadline=None)
    def test_arrow_within_twice_nn_tsp(self, data):
        tree, req = data
        cmp_ = arrow_vs_tsp(spanning_of(tree), req)
        assert cmp_.arrow_total <= 2 * cmp_.tsp_cost

    @given(data=trees_with_requests(max_n=20))
    @settings(max_examples=40, deadline=None)
    def test_arrow_delays_positive_except_tail(self, data):
        tree, req = data
        res = run_arrow(spanning_of(tree), req)
        for op, d in res.delays.items():
            if op[1] == res.tail:
                assert d == 0
            else:
                assert d >= 1


class TestCountingProperties:
    @given(g=connected_graphs(max_n=12), seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_central_and_flood_always_valid(self, g, seed):
        import random

        rng = random.Random(seed)
        req = rng.sample(range(g.n), rng.randint(1, g.n))
        for runner in (run_central_counting, run_flood_counting):
            r = runner(g, req)
            verify_counting(req, r.counts)
            assert r.total_delay >= theorem35_lower_bound(g.n, len(set(req)))

    @given(data=trees_with_requests(max_n=25))
    @settings(max_examples=30, deadline=None)
    def test_combining_always_valid(self, data):
        tree, req = data
        r = run_combining_counting(spanning_of(tree), req)
        verify_counting(req, r.counts)

    @given(
        n=st.integers(min_value=2, max_value=18),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_counting_network_always_valid(self, n, seed):
        import random

        from repro.topology import complete_graph

        rng = random.Random(seed)
        g = complete_graph(n)
        req = rng.sample(range(n), rng.randint(1, n))
        r = run_counting_network(g, req)
        verify_counting(req, r.counts)


class TestChaosProperties:
    """The reliable wrapper's liveness+safety claim, adversarially sampled.

    Together these two properties exercise >= 200 generated fault plans
    per run (100 examples each): any eventually-delivering composition of
    drops, duplicates, outages, and finite crashes leaves the wrapped
    protocols correct.
    """

    @given(data=trees_requests_and_plans(max_n=12))
    @settings(max_examples=100, deadline=None)
    def test_ft_arrow_forms_one_chain_under_any_plan(self, data):
        tree, req, plan = data
        assert plan.eventually_delivers()
        res = run_arrow_ft(spanning_of(tree), req, plan, max_rounds=500_000)
        chain = verify_queuing(req, res.predecessors, tail=res.tail)
        assert [op[1] for op in chain] == res.order()
        assert sorted(res.order()) == sorted(req)

    @given(data=graphs_requests_and_plans(max_n=10))
    @settings(max_examples=100, deadline=None)
    def test_ft_central_counts_exactly_1_to_r_under_any_plan(self, data):
        g, req, plan = data
        assert plan.eventually_delivers()
        res = run_central_counting_ft(g, req, plan, max_rounds=500_000)
        verify_counting(req, res.counts)
        assert sorted(res.counts.values()) == list(range(1, len(req) + 1))


class TestTspProperties:
    @given(data=trees_with_requests(max_n=25))
    @settings(max_examples=60, deadline=None)
    def test_nn_between_optimum_and_envelope(self, data):
        tree, req = data
        if len(req) > 10:
            req = req[:10]
        tour = nearest_neighbor_tour(tree, req)
        opt = held_karp_optimal(tree, req)
        assert opt <= tour.cost <= rosenkrantz_nn_bound(tree.n, len(req))
        assert tour.cost >= tsp_path_lower_bound(tree, req)

    @given(
        n=st.integers(min_value=2, max_value=200),
        seed=st.integers(0, 10**6),
        start_frac=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=60, deadline=None)
    def test_list_tour_lemma43_and_44(self, n, seed, start_frac):
        import random

        rng = random.Random(seed)
        tree = RootedTree.from_path(list(range(n)))
        req = rng.sample(range(n), rng.randint(1, n))
        start = min(n - 1, int(start_frac * n))
        tour = nearest_neighbor_tour(tree, req, start=start)
        assert tour.cost <= list_tsp_bound(n)
        assert satisfies_lemma44(lemma44_legs(tour.order, start=start))

    @given(data=trees_with_requests(max_n=30))
    @settings(max_examples=40, deadline=None)
    def test_tour_visits_exactly_requests(self, data):
        tree, req = data
        tour = nearest_neighbor_tour(tree, req)
        assert sorted(tour.order) == sorted(req)
        assert len(tour.legs) == len(tour.order)
        assert all(leg >= 0 for leg in tour.legs)


class TestTowerProperties:
    @given(k=st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=200)
    def test_log_star_defining_identity(self, k):
        # log*(k) = 0 iff k <= 1 else 1 + log*(log2 k), via the tower form
        i = log_star(k)
        assert (i == 0) == (k <= 1)
        if i > 0:
            assert tow(i - 1) < k <= tow(i)

    @given(k=st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=100)
    def test_min_latency_consistent_with_log_star(self, k):
        t = min_latency_for_count(k)
        assert tow(2 * t) >= k if 2 * t <= 5 else True
        if t > 0:
            assert tow(2 * (t - 1)) < k

    @given(n=st.integers(min_value=1, max_value=5000))
    @settings(max_examples=100)
    def test_theorem35_monotone_and_superadditive(self, n):
        lb_n = theorem35_lower_bound(n)
        lb_n1 = theorem35_lower_bound(n + 1)
        assert lb_n1 >= lb_n
        assert lb_n1 - lb_n == min_latency_for_count(n + 1)


class TestCheckpointProperties:
    """Checkpoint/restore determinism, adversarially sampled.

    For any graph, request set, and checkpoint cadence: snapshotting a
    run mid-flight and resuming from *every* stored checkpoint must
    reproduce the original event trace byte for byte.  This is the
    deterministic-replay contract the resilience layer's violation
    workflow (restore last checkpoint, step to the failure) rests on.
    """

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_restore_resume_replays_exact_trace(self, data):
        from repro.resilience import MonitorSet, PeriodicCheckpointer
        from repro.sim import EventTrace

        g = data.draw(connected_graphs(max_n=10), label="graph")
        k = data.draw(st.integers(1, g.n), label="k")
        req = data.draw(
            st.permutations(range(g.n)).map(lambda p: sorted(p[:k])),
            label="requests",
        )
        every = data.draw(st.integers(1, 6), label="every")

        t_full = EventTrace()
        run_central_counting(g, req, trace=t_full)

        cpr = PeriodicCheckpointer(every=every, keep=50)
        t_mon = EventTrace()
        run_central_counting(
            g, req, trace=t_mon, monitors=MonitorSet(checkpointer=cpr)
        )
        assert t_mon.events == t_full.events  # monitors perturb nothing
        for cp in cpr.checkpoints:
            restored = cp.restore()
            restored.resume()
            assert restored.trace.events == t_full.events
