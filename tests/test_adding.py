"""Distributed addition (fetch-and-add): combining tree and central server."""

from __future__ import annotations

import random

import pytest

from helpers import random_tree, tree_as_graph
from repro.adding import run_central_addition, run_combining_addition
from repro.counting import run_combining_counting
from repro.topology import complete_graph, path_graph, star_graph
from repro.topology.spanning import (
    SpanningTree,
    bfs_spanning_tree,
    embedded_binary_tree,
    path_spanning_tree,
)


class TestCombiningAddition:
    def test_prefix_sums_along_order(self):
        st = embedded_binary_tree(complete_graph(7))
        r = run_combining_addition(st, {v: 10 * (v + 1) for v in range(7)})
        r.verify()
        running = 0
        for v in r.order:
            assert r.prior_sums[v] == running
            running += r.increments[v]

    def test_unit_increments_equal_counting_minus_one(self):
        st = embedded_binary_tree(complete_graph(15))
        add = run_combining_addition(st, {v: 1 for v in range(15)})
        cnt = run_combining_counting(st, range(15))
        # fetch-and-add returns the prior value; rank = prior + 1
        assert {v: s + 1 for v, s in add.prior_sums.items()} == cnt.counts
        assert add.delays == cnt.delays
        assert add.total_delay == cnt.total_delay

    def test_negative_and_zero_increments(self):
        st = path_spanning_tree(path_graph(6))
        r = run_combining_addition(st, {1: -3, 3: 0, 5: 7})
        r.verify()
        assert set(r.order) == {1, 3, 5}

    def test_partial_participation(self):
        st = bfs_spanning_tree(star_graph(9))
        r = run_combining_addition(st, {2: 5, 7: -1})
        assert set(r.prior_sums) == {2, 7}

    def test_delays_are_increment_oblivious(self):
        st = embedded_binary_tree(complete_graph(31))
        a = run_combining_addition(st, {v: 1 for v in range(31)})
        b = run_combining_addition(st, {v: (-1) ** v * v for v in range(31)})
        assert a.delays == b.delays

    def test_out_of_range_rejected(self):
        st = path_spanning_tree(path_graph(4))
        with pytest.raises(ValueError):
            run_combining_addition(st, {9: 1})

    def test_random_trees(self):
        rng = random.Random(61)
        for trial in range(25):
            n = rng.randint(2, 30)
            t = random_tree(n, seed=trial + 40)
            st = SpanningTree(tree_as_graph(t), t, label="rand")
            incs = {
                v: rng.randint(-9, 9)
                for v in rng.sample(range(n), rng.randint(1, n))
            }
            run_combining_addition(st, incs).verify()

    def test_max_delay_property(self):
        st = path_spanning_tree(path_graph(8))
        r = run_combining_addition(st, {v: 1 for v in range(8)})
        assert r.max_delay == max(r.delays.values())
        empty_like = run_combining_addition(st, {0: 1})
        assert empty_like.max_delay >= 0


class TestCentralAddition:
    def test_arrival_order_prefix_sums(self):
        g = star_graph(6)
        r = run_central_addition(g, {v: v for v in range(6)})
        r.verify()
        assert len(r.order) == 6

    def test_matches_combining_total_sum(self):
        g = complete_graph(10)
        incs = {v: v * v for v in range(10)}
        rc = run_central_addition(g, incs)
        ra = run_combining_addition(embedded_binary_tree(g), incs)
        final_c = sum(incs.values())
        # last op's prior + its increment == total, in both
        last_c = rc.order[-1]
        last_a = ra.order[-1]
        assert rc.prior_sums[last_c] + incs[last_c] == final_c
        assert ra.prior_sums[last_a] + incs[last_a] == final_c

    def test_root_choice(self):
        g = path_graph(5)
        r = run_central_addition(g, {0: 1, 4: 2}, root=2)
        r.verify()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            run_central_addition(path_graph(3), {5: 1})

    def test_random_instances(self):
        rng = random.Random(62)
        for trial in range(15):
            n = rng.randint(2, 20)
            g = complete_graph(n)
            incs = {
                v: rng.randint(-5, 5)
                for v in rng.sample(range(n), rng.randint(1, n))
            }
            run_central_addition(g, incs, root=rng.randrange(n)).verify()


class TestDeepTrees:
    def test_combining_addition_on_deep_path_tree(self):
        """Path-shaped spanning trees are deeper than the recursion limit;
        the order reconstruction must be iterative."""
        st = path_spanning_tree(path_graph(2500))
        r = run_combining_addition(st, {v: 1 for v in range(0, 2500, 5)})
        r.verify()
        assert len(r.order) == 500
