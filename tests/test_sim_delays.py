"""Link-delay models and engine behaviour under asynchrony."""

from __future__ import annotations

import pytest

from repro.sim import (
    ConstantDelay,
    KindDelay,
    Node,
    SynchronousNetwork,
    TargetedDelay,
    UniformDelay,
)
from repro.sim.message import Message
from repro.topology import path_graph, star_graph


class Sender(Node):
    def __init__(self, node_id, sends=()):
        super().__init__(node_id)
        self.sends = list(sends)
        self.recv_rounds: list[int] = []
        self.recv_kinds: list[str] = []

    def on_start(self, ctx):
        for dst, kind in self.sends:
            ctx.send(dst, kind)

    def on_receive(self, msg, ctx):
        self.recv_rounds.append(ctx.now)
        self.recv_kinds.append(msg.kind)


class TestDelayModels:
    def test_constant_default_is_unit(self):
        assert ConstantDelay()(Message(0, 1, "x")) == 1

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantDelay(0)

    def test_uniform_range_and_determinism(self):
        model = UniformDelay(2, 5, seed=1)
        msgs = [Message(0, 1, "x", seq=i) for i in range(200)]
        ds = [model(m) for m in msgs]
        assert all(2 <= d <= 5 for d in ds)
        assert ds == [UniformDelay(2, 5, seed=1)(m) for m in msgs]
        assert len(set(ds)) > 1  # actually varies

    def test_uniform_seed_changes_draws(self):
        msgs = [Message(0, 1, "x", seq=i) for i in range(50)]
        a = [UniformDelay(1, 9, seed=0)(m) for m in msgs]
        b = [UniformDelay(1, 9, seed=1)(m) for m in msgs]
        assert a != b

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(0, 3)
        with pytest.raises(ValueError):
            UniformDelay(5, 3)

    def test_targeted(self):
        model = TargetedDelay(frozenset({(0, 1)}), slow=7)
        assert model(Message(0, 1, "x")) == 7
        assert model(Message(1, 0, "x")) == 1
        with pytest.raises(ValueError):
            TargetedDelay(frozenset(), slow=0)

    def test_kind_delay(self):
        model = KindDelay((("queue", 4),), default=2)
        assert model(Message(0, 1, "queue")) == 4
        assert model(Message(0, 1, "reply")) == 2


class TestEngineUnderDelays:
    def test_constant_delay_shifts_arrival(self):
        g = path_graph(2)
        nodes = {0: Sender(0, [(1, "x")]), 1: Sender(1)}
        net = SynchronousNetwork(g, nodes, delay_model=ConstantDelay(5))
        stats = net.run()
        assert nodes[1].recv_rounds == [5]
        assert stats.rounds == 5

    def test_clock_jumps_over_idle_stretch(self):
        g = path_graph(2)
        nodes = {0: Sender(0, [(1, "x")]), 1: Sender(1)}
        net = SynchronousNetwork(g, nodes, delay_model=ConstantDelay(1000))
        stats = net.run(max_rounds=2000)
        assert nodes[1].recv_rounds == [1000]

    def test_fifo_preserved_under_variable_delays(self):
        """A fast message behind a slow one still arrives after it."""

        class TwoKinds(Sender):
            def on_start(self, ctx):
                ctx.send(1, "slow")
                ctx.send(1, "fast")

        g = path_graph(2)
        nodes = {0: TwoKinds(0), 1: Sender(1)}
        model = KindDelay((("slow", 9), ("fast", 1)))
        net = SynchronousNetwork(g, nodes, delay_model=model)
        net.run()
        assert nodes[1].recv_kinds == ["slow", "fast"]
        # slow sent at round 0 arrives at 9; fast (sent round 1, ready at 2)
        # waits behind it on the FIFO link.
        assert nodes[1].recv_rounds[0] == 9
        assert nodes[1].recv_rounds[1] == 10

    def test_contention_still_serialises_under_delays(self):
        n = 6
        g = star_graph(n)
        nodes = {v: Sender(v) for v in range(n)}
        for v in range(1, n):
            nodes[v].sends = [(0, "x")]
        net = SynchronousNetwork(g, nodes, delay_model=ConstantDelay(3))
        net.run()
        # all ready at round 3; hub receives one per round after that
        assert nodes[0].recv_rounds == [3, 4, 5, 6, 7]


class TestProtocolsUnderDelays:
    def test_arrow_correct_under_uniform_delays(self):
        from repro.arrow import run_arrow
        from repro.core.verify import verify_queuing
        from repro.topology.spanning import path_spanning_tree

        st = path_spanning_tree(path_graph(16))
        res = run_arrow(st, range(16), delay_model=UniformDelay(1, 4, seed=3))
        verify_queuing(range(16), res.predecessors, tail=0)

    def test_counting_correct_under_uniform_delays(self):
        from repro.counting import run_central_counting, run_flood_counting
        from repro.topology import complete_graph

        g = complete_graph(10)
        model = UniformDelay(1, 3, seed=5)
        for runner in (run_central_counting, run_flood_counting):
            r = runner(g, range(10), delay_model=model)
            assert sorted(r.counts.values()) == list(range(1, 11))

    def test_delays_scale_with_constant_slowdown(self):
        from repro.arrow import run_arrow
        from repro.topology.spanning import path_spanning_tree

        st = path_spanning_tree(path_graph(32))
        base = run_arrow(st, range(32))
        slow = run_arrow(st, range(32), delay_model=ConstantDelay(3))
        assert slow.total_delay == 3 * base.total_delay
