"""Graph constructors: sizes, degrees, diameters, validation."""

from __future__ import annotations

import pytest

from repro.topology import (
    binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    degree_histogram,
    diameter,
    hypercube_graph,
    is_connected,
    lollipop_graph,
    max_degree,
    mesh_graph,
    path_graph,
    perfect_mary_tree,
    random_regular_graph,
    ring_graph,
    star_graph,
    torus_graph,
)
from repro.topology.base import Graph, TopologyError


class TestGraphBase:
    def test_from_edges_basics(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.n == 3 and g.m == 2
        assert g.neighbors(1) == (0, 2)
        assert g.has_edge(0, 1) and not g.has_edge(0, 2)
        assert list(g.edges()) == [(0, 1), (1, 2)]

    def test_duplicate_edges_collapse(self):
        g = Graph.from_edges(2, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Graph.from_edges(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            Graph.from_edges(2, [(0, 2)])

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            Graph.from_edges(0, [])

    def test_repr_mentions_name(self):
        assert "path(5)" in repr(path_graph(5))


class TestPathRingStar:
    @pytest.mark.parametrize("n", [1, 2, 5, 17])
    def test_path(self, n):
        g = path_graph(n)
        assert g.n == n and g.m == n - 1
        assert is_connected(g)
        if n > 1:
            assert diameter(g) == n - 1
            assert g.degree(0) == 1 and g.degree(n - 1) == 1

    def test_ring(self):
        g = ring_graph(6)
        assert g.m == 6 and all(g.degree(v) == 2 for v in g.vertices())
        assert diameter(g) == 3

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring_graph(2)

    @pytest.mark.parametrize("n", [2, 4, 9])
    def test_star(self, n):
        g = star_graph(n)
        assert g.degree(0) == n - 1
        assert all(g.degree(v) == 1 for v in range(1, n))
        assert diameter(g) == (2 if n > 2 else 1)

    def test_star_too_small(self):
        with pytest.raises(TopologyError):
            star_graph(1)


class TestComplete:
    @pytest.mark.parametrize("n", [2, 3, 8])
    def test_complete(self, n):
        g = complete_graph(n)
        assert g.m == n * (n - 1) // 2
        assert diameter(g) == 1
        assert max_degree(g) == n - 1


class TestMeshTorus:
    def test_mesh_2d_structure(self):
        g = mesh_graph([3, 4])
        assert g.n == 12
        # interior vertex degree 4, corner degree 2
        hist = degree_histogram(g)
        assert hist[2] == 4  # four corners
        assert diameter(g) == (3 - 1) + (4 - 1)

    def test_mesh_edge_count_2d(self):
        r, c = 5, 7
        g = mesh_graph([r, c])
        assert g.m == r * (c - 1) + c * (r - 1)

    def test_mesh_3d_diameter(self):
        g = mesh_graph([3, 3, 3])
        assert g.n == 27
        assert diameter(g) == 6

    def test_mesh_1d_is_path(self):
        g = mesh_graph([7])
        assert g.m == 6 and diameter(g) == 6

    def test_mesh_invalid(self):
        with pytest.raises(TopologyError):
            mesh_graph([])
        with pytest.raises(TopologyError):
            mesh_graph([0, 3])

    def test_torus_regular(self):
        g = torus_graph([4, 4])
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 4

    def test_torus_invalid(self):
        with pytest.raises(TopologyError):
            torus_graph([2, 4])


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 5])
    def test_hypercube(self, d):
        g = hypercube_graph(d)
        assert g.n == 2**d
        assert all(g.degree(v) == d for v in g.vertices())
        assert diameter(g) == d

    def test_hypercube_neighbors_differ_one_bit(self):
        g = hypercube_graph(4)
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1

    def test_hypercube_invalid(self):
        with pytest.raises(TopologyError):
            hypercube_graph(0)


class TestTrees:
    @pytest.mark.parametrize("m,depth", [(2, 0), (2, 3), (3, 2), (4, 2)])
    def test_perfect_mary_tree(self, m, depth):
        g = perfect_mary_tree(m, depth)
        assert g.n == (m ** (depth + 1) - 1) // (m - 1)
        assert g.m == g.n - 1
        assert is_connected(g)
        if depth >= 1:
            assert g.degree(0) == m  # root
            assert max_degree(g) == m + 1 if depth >= 2 else m

    def test_perfect_mary_invalid(self):
        with pytest.raises(TopologyError):
            perfect_mary_tree(1, 2)
        with pytest.raises(TopologyError):
            perfect_mary_tree(2, -1)

    @pytest.mark.parametrize("n", [1, 2, 7, 10, 31])
    def test_binary_tree(self, n):
        g = binary_tree_graph(n)
        assert g.m == n - 1
        assert max_degree(g) <= 3
        assert is_connected(g)

    def test_binary_tree_depths_differ_at_most_one(self):
        from repro.tree import RootedTree

        g = binary_tree_graph(21)
        t = RootedTree.from_edges(21, g.edges(), root=0)
        leaf_depths = {t.depth[v] for v in range(21) if not t.children[v]}
        assert max(leaf_depths) - min(leaf_depths) <= 1


class TestHighDiameterFamilies:
    def test_caterpillar(self):
        g = caterpillar_graph(5, 2)
        assert g.n == 15 and g.m == 14
        assert is_connected(g)
        assert diameter(g) == 4 + 2  # spine ends' legs add 2

    def test_caterpillar_no_legs(self):
        g = caterpillar_graph(6, 0)
        assert g.n == 6 and diameter(g) == 5

    def test_caterpillar_invalid(self):
        with pytest.raises(TopologyError):
            caterpillar_graph(1, 1)

    def test_lollipop(self):
        g = lollipop_graph(4, 5)
        assert g.n == 9
        assert g.m == 6 + 1 + 4
        assert diameter(g) == 1 + 5

    def test_lollipop_invalid(self):
        with pytest.raises(TopologyError):
            lollipop_graph(0, 3)


class TestRandomRegular:
    def test_regular_and_connected(self):
        g = random_regular_graph(20, 3, seed=1)
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert is_connected(g)

    def test_deterministic_for_seed(self):
        g1 = random_regular_graph(16, 4, seed=7)
        g2 = random_regular_graph(16, 4, seed=7)
        assert list(g1.edges()) == list(g2.edges())

    def test_infeasible_rejected(self):
        with pytest.raises(TopologyError):
            random_regular_graph(5, 3, seed=0)  # n*d odd
        with pytest.raises(TopologyError):
            random_regular_graph(4, 4, seed=0)  # d >= n
