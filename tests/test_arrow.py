"""The arrow protocol: path reversal, total order, delays, Theorem 4.1."""

from __future__ import annotations

import random

import pytest

from helpers import random_tree, tree_as_graph
from repro.arrow import arrow_vs_tsp, run_arrow, run_arrow_longlived
from repro.arrow.longlived import poisson_issue_times
from repro.arrow.protocol import init_op, op_of
from repro.arrow.runner import arrow_order_positions
from repro.core.verify import verify_queuing
from repro.topology import complete_graph, mesh_graph, path_graph, star_graph
from repro.topology.spanning import (
    SpanningTree,
    bfs_spanning_tree,
    embedded_binary_tree,
    path_spanning_tree,
    star_spanning_tree,
)


def rand_spanning(n: int, seed: int, max_children: int | None = 3) -> SpanningTree:
    t = random_tree(n, seed, max_children=max_children)
    return SpanningTree(tree_as_graph(t), t, label="rand")


class TestBasics:
    def test_tail_requester_completes_at_zero(self):
        st = path_spanning_tree(path_graph(4))
        res = run_arrow(st, [0])  # tail defaults to root = 0
        assert res.delays[op_of(0)] == 0
        assert res.predecessors[op_of(0)] == init_op(0)

    def test_single_remote_requester_delay_is_distance(self):
        st = path_spanning_tree(path_graph(6))
        res = run_arrow(st, [5])
        assert res.delays[op_of(5)] == 5

    def test_two_requesters_order_and_preds(self):
        st = path_spanning_tree(path_graph(3))
        res = run_arrow(st, [0, 2])
        assert res.order() == [0, 2]
        assert res.predecessors[op_of(2)] == op_of(0)

    def test_all_request_on_path_is_linear(self):
        n = 32
        st = path_spanning_tree(path_graph(n))
        res = run_arrow(st, range(n))
        assert res.order() == list(range(n))
        # every non-tail op terminates at its left neighbor concurrently
        assert res.total_delay == n - 1

    def test_tail_choice(self):
        st = path_spanning_tree(path_graph(5))
        res = run_arrow(st, [0, 4], tail=4)
        assert res.tail == 4
        assert res.order()[0] == 4

    def test_out_of_range_request(self):
        st = path_spanning_tree(path_graph(4))
        with pytest.raises(ValueError):
            run_arrow(st, [7])

    def test_result_accessors(self):
        st = path_spanning_tree(path_graph(4))
        res = run_arrow(st, [1, 3])
        assert res.max_delay == max(res.delays.values())
        assert len(res.requests) == 2
        pos = arrow_order_positions(res)
        assert sorted(pos.values()) == [1, 2]


class TestTotalOrder:
    def test_random_instances_form_single_chain(self):
        rng = random.Random(42)
        for trial in range(60):
            n = rng.randint(2, 40)
            st = rand_spanning(n, seed=trial)
            k = rng.randint(1, n)
            req = rng.sample(range(n), k)
            tail = rng.randrange(n)
            res = run_arrow(st, req, tail=tail)
            chain = verify_queuing(req, res.predecessors, tail=tail)
            assert len(chain) == k

    def test_every_request_completes_exactly_once(self):
        st = embedded_binary_tree(complete_graph(31))
        res = run_arrow(st, range(31))
        assert set(res.delays) == {op_of(v) for v in range(31)}

    def test_non_requesters_never_complete(self):
        st = path_spanning_tree(path_graph(10))
        res = run_arrow(st, [2, 7])
        assert set(res.delays) == {op_of(2), op_of(7)}

    def test_strict_capacity_still_correct(self):
        st = embedded_binary_tree(complete_graph(15))
        res = run_arrow(st, range(15), capacity=1)
        assert sorted(res.order()) == list(range(15))

    def test_star_tree_strict_capacity(self):
        st = star_spanning_tree(star_graph(9))
        res = run_arrow(st, range(9), capacity=1)
        assert sorted(res.order()) == list(range(9))


class TestDelaysAndTheorem41:
    def test_within_twice_tsp_random(self):
        rng = random.Random(17)
        for trial in range(40):
            n = rng.randint(2, 48)
            st = rand_spanning(n, seed=trial + 500)
            req = rng.sample(range(n), rng.randint(1, n))
            cmp_ = arrow_vs_tsp(st, req)
            assert cmp_.within_theorem41, (n, sorted(req), cmp_.ratio)

    def test_within_twice_tsp_structured(self):
        for st in (
            path_spanning_tree(path_graph(64)),
            embedded_binary_tree(complete_graph(63)),
            bfs_spanning_tree(mesh_graph([6, 6])),
        ):
            cmp_ = arrow_vs_tsp(st, range(st.n))
            assert cmp_.within_theorem41
            assert cmp_.arrow_total > 0 and cmp_.tsp_cost > 0

    def test_ratio_zero_when_only_tail_requests(self):
        st = path_spanning_tree(path_graph(4))
        cmp_ = arrow_vs_tsp(st, [0])
        assert cmp_.tsp_cost == 0 and cmp_.ratio == 0.0

    def test_capacity_default_is_tree_degree(self):
        st = embedded_binary_tree(complete_graph(7))
        res = run_arrow(st, range(7))
        assert res.stats.rounds >= 1


class TestLongLived:
    def test_matches_one_shot_at_horizon_zero(self):
        st = path_spanning_tree(path_graph(16))
        one = run_arrow(st, range(16))
        ll = run_arrow_longlived(st, {v: 0 for v in range(16)})
        assert ll.total_response_time == one.total_delay
        assert ll.completion == one.delays

    def test_staggered_pair(self):
        st = path_spanning_tree(path_graph(4))
        ll = run_arrow_longlived(st, {3: 0, 0: 10})
        # node 3's op travels to tail 0 (3 hops); node 0 issues later and
        # chases the flipped arrows to node 3's origin.
        r = ll.response_times()
        assert r[3] == 3
        assert r[0] >= 1
        assert sorted(ll.completion) == [op_of(0), op_of(3)]

    def test_sequential_requests_chain(self):
        st = path_spanning_tree(path_graph(8))
        times = {v: 20 * v for v in range(8)}
        ll = run_arrow_longlived(st, times)
        assert len(ll.completion) == 8
        # with requests far apart each one terminates before the next starts
        assert all(resp <= 2 * 8 for resp in ll.response_times().values())

    def test_invalid_inputs(self):
        st = path_spanning_tree(path_graph(4))
        with pytest.raises(ValueError):
            run_arrow_longlived(st, {9: 0})
        with pytest.raises(ValueError):
            run_arrow_longlived(st, {1: -2})

    def test_poisson_schedule_generator(self):
        times = poisson_issue_times(50, rate=0.5, horizon=30, seed=1)
        assert times and all(0 <= t < 30 for t in times.values())
        assert times == poisson_issue_times(50, rate=0.5, horizon=30, seed=1)
        with pytest.raises(ValueError):
            poisson_issue_times(10, rate=0.0, horizon=5)
        with pytest.raises(ValueError):
            poisson_issue_times(10, rate=0.5, horizon=0)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        st = bfs_spanning_tree(mesh_graph([4, 4]))
        r1 = run_arrow(st, range(16))
        r2 = run_arrow(st, range(16))
        assert r1.delays == r2.delays
        assert r1.order() == r2.order()
