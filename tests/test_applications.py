"""Ordered multicast and token mutual exclusion."""

from __future__ import annotations

import random

import pytest

from repro.multicast import run_counting_multicast, run_queuing_multicast
from repro.mutex import run_token_mutex
from repro.topology import complete_graph, mesh_graph, path_graph
from repro.topology.spanning import (
    bfs_spanning_tree,
    embedded_binary_tree,
    path_spanning_tree,
)


class TestMulticast:
    def setup_method(self):
        self.g = mesh_graph([3, 3])
        self.st = bfs_spanning_tree(self.g)

    def test_counting_flavour_delivers_everywhere(self):
        out = run_counting_multicast(self.g, self.st, [0, 4, 8])
        assert out.flavour == "counting"
        assert len(out.delivery_times) == 9 * 3
        assert sorted(out.delivery_order) == [0, 4, 8]

    def test_queuing_flavour_delivers_everywhere(self):
        out = run_queuing_multicast(self.g, self.st, [0, 4, 8])
        assert out.flavour == "queuing"
        assert sorted(out.delivery_order) == [0, 4, 8]

    def test_counting_order_follows_sequence_numbers(self):
        out = run_counting_multicast(self.g, self.st, [2, 6])
        # delivery order must be the sequence-number order, whatever it is
        assert len(out.delivery_order) == 2

    def test_single_sender(self):
        out = run_queuing_multicast(self.g, self.st, [5])
        assert out.delivery_order == (5,)
        assert out.completion_time >= 1

    def test_queuing_coordination_cheaper_at_scale(self):
        g = complete_graph(16)
        st = path_spanning_tree(g)
        mc = run_counting_multicast(g, st, range(16))
        mq = run_queuing_multicast(g, st, range(16))
        assert mq.total_coordination_delay < mc.total_coordination_delay

    def test_total_coordination_delay_property(self):
        out = run_queuing_multicast(self.g, self.st, [0, 8])
        assert out.total_coordination_delay == sum(
            out.coordination_delays.values()
        )

    def test_random_instances_consistent(self):
        rng = random.Random(13)
        for trial in range(10):
            n = rng.randint(2, 12)
            g = complete_graph(n)
            st = path_spanning_tree(g)
            senders = rng.sample(range(n), rng.randint(1, n))
            for run in (run_counting_multicast, run_queuing_multicast):
                out = run(g, st, senders)
                assert sorted(out.delivery_order) == sorted(set(senders))


class TestMutex:
    def test_all_enter_in_queue_order(self):
        st = path_spanning_tree(path_graph(6))
        out = run_token_mutex(st, range(6), cs_rounds=1)
        assert sorted(out.order) == list(range(6))
        assert out.mutual_exclusion_holds()

    def test_cs_duration_spacing(self):
        st = path_spanning_tree(path_graph(5))
        out = run_token_mutex(st, range(5), cs_rounds=4)
        entries = sorted(out.entry_rounds.values())
        assert all(b - a >= 4 for a, b in zip(entries, entries[1:]))

    def test_zero_length_cs(self):
        st = path_spanning_tree(path_graph(5))
        out = run_token_mutex(st, range(5), cs_rounds=0)
        assert len(out.entry_rounds) == 5

    def test_single_requester(self):
        st = path_spanning_tree(path_graph(4))
        out = run_token_mutex(st, [3])
        assert out.order == (3,)
        # token travels from tail 0 to node 3 after its request arrives
        assert out.entry_rounds[3] >= 3

    def test_tail_requester_enters_at_zero(self):
        st = path_spanning_tree(path_graph(4))
        out = run_token_mutex(st, [0, 2])
        assert out.entry_rounds[0] == 0

    def test_custom_tail(self):
        st = path_spanning_tree(path_graph(5))
        out = run_token_mutex(st, [0, 4], tail=4)
        assert out.order[0] == 4

    def test_binary_tree_topology(self):
        st = embedded_binary_tree(complete_graph(15))
        out = run_token_mutex(st, range(15), cs_rounds=2)
        assert out.mutual_exclusion_holds()
        assert len(out.order) == 15

    def test_invalid_cs_rounds(self):
        st = path_spanning_tree(path_graph(3))
        with pytest.raises(ValueError):
            run_token_mutex(st, [1], cs_rounds=-1)

    def test_total_waiting_metric(self):
        st = path_spanning_tree(path_graph(4))
        out = run_token_mutex(st, range(4))
        assert out.total_waiting == sum(out.entry_rounds.values())

    def test_random_instances_safe(self):
        from helpers import random_tree, tree_as_graph
        from repro.topology.spanning import SpanningTree

        rng = random.Random(19)
        for trial in range(20):
            n = rng.randint(2, 25)
            t = random_tree(n, seed=trial + 900, max_children=3)
            st = SpanningTree(tree_as_graph(t), t, label="rand")
            req = rng.sample(range(n), rng.randint(1, n))
            out = run_token_mutex(
                st, req, cs_rounds=rng.randint(0, 3), tail=rng.randrange(n)
            )
            assert sorted(out.order) == sorted(set(req))
            assert out.mutual_exclusion_holds()
