"""Per-operation lower bounds (Lemma 3.1 / Theorem 3.6, fine-grained).

The paper's sums are built from per-operation latency bounds; here we
check every implemented counting algorithm satisfies them *operation by
operation*, not just in aggregate — a much stronger consistency check of
the simulator against the theory.
"""

from __future__ import annotations

import pytest

from repro.bounds.counting_lb import (
    per_op_diameter_bound,
    per_op_general_bound,
    verify_per_op_bounds,
)
from repro.counting import (
    run_central_counting,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
    run_periodic_counting,
)
from repro.topology import complete_graph, diameter, mesh_graph, path_graph, star_graph
from repro.topology.spanning import bfs_spanning_tree, embedded_binary_tree


class TestBoundFunctions:
    def test_general_bound_values(self):
        assert per_op_general_bound(1) == 0
        assert per_op_general_bound(4) == 1
        assert per_op_general_bound(5) == 2
        assert per_op_general_bound(70000) == 3

    def test_diameter_bound_values(self):
        # n=10, alpha=9: count 10 needs >= 4, count 6 needs >= 0
        assert per_op_diameter_bound(10, 10, 9) == 4
        assert per_op_diameter_bound(6, 10, 9) == 0
        assert per_op_diameter_bound(1, 10, 9) == 0

    def test_diameter_bound_validation(self):
        with pytest.raises(ValueError):
            per_op_diameter_bound(0, 5, 4)
        with pytest.raises(ValueError):
            per_op_diameter_bound(9, 5, 4)

    def test_verifier_detects_violation(self):
        counts = {0: 1, 1: 2}
        good = {0: 0, 1: 3}
        bad = {0: 0, 1: 0}  # count 2 with delay 0 is impossible
        assert verify_per_op_bounds(counts, good, 2, 1, all_counting=True)
        assert not verify_per_op_bounds(counts, bad, 2, 1, all_counting=True)


GRAPH_CASES = [
    complete_graph(16),
    path_graph(24),
    mesh_graph([4, 4]),
    star_graph(12),
]


class TestAllAlgorithmsPerOp:
    @pytest.mark.parametrize("g", GRAPH_CASES, ids=lambda g: g.name)
    def test_central(self, g):
        alpha = diameter(g)
        r = run_central_counting(g, range(g.n))
        assert verify_per_op_bounds(r.counts, r.delays, g.n, alpha, True)

    @pytest.mark.parametrize("g", GRAPH_CASES, ids=lambda g: g.name)
    def test_flood(self, g):
        alpha = diameter(g)
        r = run_flood_counting(g, range(g.n))
        assert verify_per_op_bounds(r.counts, r.delays, g.n, alpha, True)

    @pytest.mark.parametrize("g", GRAPH_CASES, ids=lambda g: g.name)
    def test_combining(self, g):
        alpha = diameter(g)
        r = run_combining_counting(bfs_spanning_tree(g), range(g.n))
        assert verify_per_op_bounds(r.counts, r.delays, g.n, alpha, True)

    @pytest.mark.parametrize("g", GRAPH_CASES, ids=lambda g: g.name)
    def test_counting_network(self, g):
        alpha = diameter(g)
        r = run_counting_network(g, range(g.n))
        assert verify_per_op_bounds(r.counts, r.delays, g.n, alpha, True)

    def test_periodic_network(self):
        g = complete_graph(16)
        r = run_periodic_counting(g, range(16))
        assert verify_per_op_bounds(r.counts, r.delays, 16, 1, True)

    def test_binary_tree_combining_on_knn(self):
        g = complete_graph(31)
        r = run_combining_counting(embedded_binary_tree(g), range(31))
        assert verify_per_op_bounds(r.counts, r.delays, 31, 1, True)

    def test_subset_requests_skip_diameter_bound(self):
        g = path_graph(16)
        req = [3, 9, 15]
        r = run_central_counting(g, req)
        # only the general per-op bound applies with partial requesters
        assert verify_per_op_bounds(r.counts, r.delays, g.n, 15, False)
