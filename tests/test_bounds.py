"""Towers, log*, recurrences, and the exact bound expressions."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bounds import (
    ab_trajectory,
    arrow_upper_bound,
    binary_tree_queuing_bound,
    constant_degree_queuing_bound,
    counting_lower_bound,
    f_recurrence,
    list_queuing_bound,
    log_star,
    mary_tree_queuing_bound,
    min_latency_for_count,
    theorem35_lower_bound,
    theorem36_lower_bound,
    tow,
    verify_ab_tower_bound,
    verify_f_bound,
)
from repro.bounds.counting_lb import theorem35_paper_form
from repro.bounds.queuing_ub import queuing_vs_counting_gap
from repro.bounds.towers import TOW_MAX_EXACT, half_log_star, log_star_table
from repro.tree import RootedTree


class TestTow:
    def test_values(self):
        assert [tow(j) for j in range(5)] == [1, 2, 4, 16, 65536]

    def test_tow5_bit_length(self):
        assert tow(5).bit_length() == 65537

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tow(-1)

    def test_too_tall_rejected(self):
        with pytest.raises(ValueError):
            tow(TOW_MAX_EXACT + 1)


class TestLogStar:
    @pytest.mark.parametrize(
        "k,expected",
        [
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (16, 3),
            (17, 4),
            (65536, 4),
            (65537, 5),
        ],
    )
    def test_integer_boundaries(self, k, expected):
        assert log_star(k) == expected

    def test_tower_boundaries_exact(self):
        for i in range(1, 6):
            assert log_star(tow(i)) == i
            assert log_star(tow(i) + 1) == i + 1

    def test_floats(self):
        assert log_star(1.0) == 0
        assert log_star(2.0) == 1
        assert log_star(16.5) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            log_star(0)
        with pytest.raises(ValueError):
            log_star(-3.0)

    def test_table_matches_pointwise(self):
        table = log_star_table(300)
        assert table == [log_star(k) for k in range(1, 301)]

    def test_table_empty(self):
        assert log_star_table(0) == []

    def test_half_log_star(self):
        assert half_log_star(16) == Fraction(3, 2)


class TestRecurrences:
    def test_ab_start(self):
        a, b = ab_trajectory(3)
        assert a[0] == b[0] == 1
        assert a[1] == 2 and b[1] == 3
        assert a[2] == 2 + 4 * 3 and b[2] == 3 * 5

    def test_ab_dominated_by_tower(self):
        assert verify_ab_tower_bound(4)

    def test_ab_rejects_big_t(self):
        with pytest.raises(ValueError):
            ab_trajectory(6)
        with pytest.raises(ValueError):
            ab_trajectory(-1)

    def test_f_values(self):
        assert [f_recurrence(k) for k in range(5)] == [0, 2, 8, 22, 52]

    def test_f_closed_form(self):
        # f(k) = 2^(k+2) - 2k - 4 solves the recurrence exactly.
        for k in range(20):
            assert f_recurrence(k) == (1 << (k + 2)) - 2 * k - 4

    def test_f_bound_lemma48(self):
        assert verify_f_bound(100)

    def test_f_invalid(self):
        with pytest.raises(ValueError):
            f_recurrence(-1)


class TestCountingLowerBounds:
    def test_min_latency_values(self):
        assert min_latency_for_count(1) == 0
        assert min_latency_for_count(2) == 1
        assert min_latency_for_count(4) == 1
        assert min_latency_for_count(5) == 2
        assert min_latency_for_count(65536) == 2
        assert min_latency_for_count(65537) == 3

    def test_min_latency_invalid(self):
        with pytest.raises(ValueError):
            min_latency_for_count(0)

    def test_theorem35_small_values(self):
        # n=1: count 1, latency 0.
        assert theorem35_lower_bound(1) == 0
        # n=2: counts {1,2}: latencies 0 + 1.
        assert theorem35_lower_bound(2) == 1
        # n=4: counts 1..4 -> 0+1+1+1 = 3.
        assert theorem35_lower_bound(4) == 3
        # n=5: adds count 5 at latency 2.
        assert theorem35_lower_bound(5) == 5

    def test_theorem35_block_sum_matches_naive(self):
        for n in (1, 2, 7, 16, 65, 300):
            naive = sum(min_latency_for_count(k) for k in range(1, n + 1))
            assert theorem35_lower_bound(n) == naive

    def test_theorem35_partial_requesters(self):
        assert theorem35_lower_bound(10, requesters=3) == sum(
            min_latency_for_count(k) for k in range(1, 4)
        )
        with pytest.raises(ValueError):
            theorem35_lower_bound(4, requesters=9)

    def test_theorem35_superlinear(self):
        # the bound per operation grows like log*: check n log* n shape
        lb_small = theorem35_lower_bound(64)
        lb_big = theorem35_lower_bound(128)
        assert lb_big > 2 * lb_small * 0.9  # ~linear or a bit more

    def test_paper_form(self):
        val = theorem35_paper_form(8)
        expected = sum(Fraction(log_star(k), 2) for k in range(4, 9))
        assert val == expected

    def test_theorem36(self):
        assert theorem36_lower_bound(0) == 0
        assert theorem36_lower_bound(2) == 1
        assert theorem36_lower_bound(10) == 15
        m = 50
        assert theorem36_lower_bound(100) == m * (m + 1) // 2

    def test_theorem36_invalid(self):
        with pytest.raises(ValueError):
            theorem36_lower_bound(-1)

    def test_combined_bound_picks_max(self):
        # High diameter: Thm 3.6 dominates.
        n, alpha = 100, 99
        assert counting_lower_bound(n, alpha) == theorem36_lower_bound(alpha)
        # Diameter 1 (complete graph): Thm 3.5 dominates.
        assert counting_lower_bound(100, 1) == theorem35_lower_bound(100)

    def test_combined_bound_partial_requesters_skips_36(self):
        assert counting_lower_bound(100, 99, requesters=10) == theorem35_lower_bound(
            100, 10
        )


class TestQueuingUpperBounds:
    def test_arrow_upper_bound_is_twice_tour(self):
        t = RootedTree.from_path(list(range(16)))
        assert arrow_upper_bound(t, range(16)) == 2 * 15

    def test_family_bounds(self):
        assert list_queuing_bound(10) == 60
        assert binary_tree_queuing_bound(15) == 2 * (24 + 120)
        assert mary_tree_queuing_bound(13, 3) > 0
        assert constant_degree_queuing_bound(16) == 2 * 5 * 15

    def test_gap_helper(self):
        assert queuing_vs_counting_gap(10, 100, 50) == 2.0
        assert queuing_vs_counting_gap(10, 100, 0) == float("inf")
