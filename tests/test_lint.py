"""The model-conformance linter (rules R1-R5), sanitizer, and strict mode."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    check_determinism,
    check_determinism_subprocess,
    check_file,
    check_paths,
    check_source,
    render_json,
    render_text,
)
from repro.sim import (
    EventTrace,
    Node,
    NodeContext,
    StrictModeViolation,
    SynchronousNetwork,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"


def marked_line(src: str, marker: str) -> int:
    """1-based line number of the (unique) line containing ``marker``."""
    hits = [i for i, ln in enumerate(src.splitlines(), 1) if marker in ln]
    assert len(hits) == 1, f"marker {marker!r} found {len(hits)} times"
    return hits[0]


def findings_for(src: str):
    return check_source(src, "fixture.py")


# --------------------------------------------------------------------- R1


SRC_R1 = """\
from repro.sim import Node


class InternalsNode(Node):
    def on_start(self, ctx):
        ctx._network._enqueue_send(self.node_id, 0, "x", None)  # MARK-R1

    def on_receive(self, msg, ctx):
        pass
"""


class TestR1EngineInternals:
    def test_flags_private_engine_access(self):
        findings = findings_for(SRC_R1)
        r1 = [f for f in findings if f.rule_id == "R1"]
        assert r1, f"no R1 finding in {findings}"
        assert marked_line(SRC_R1, "MARK-R1") in {f.line for f in r1}
        assert all(f.path == "fixture.py" for f in r1)


# --------------------------------------------------------------------- R2


SRC_R2 = """\
from repro.sim import Node


class RogueSendNode(Node):
    def not_a_callback(self, ctx):
        ctx.send(1, "x")  # MARK-R2-UNREACHABLE

    def on_start(self, ctx):
        ctx.send(ctx.node_id, "x")  # MARK-R2-SELF
"""


class TestR2SendDiscipline:
    def test_flags_send_outside_callbacks(self):
        findings = findings_for(SRC_R2)
        lines = {f.line for f in findings if f.rule_id == "R2"}
        assert marked_line(SRC_R2, "MARK-R2-UNREACHABLE") in lines

    def test_flags_send_to_self(self):
        findings = findings_for(SRC_R2)
        lines = {f.line for f in findings if f.rule_id == "R2"}
        assert marked_line(SRC_R2, "MARK-R2-SELF") in lines


# --------------------------------------------------------------------- R3


SRC_R3 = """\
import random

from repro.sim import Node


class HazardNode(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.peers = set()

    def on_start(self, ctx):
        for p in self.peers:  # MARK-R3-SET
            ctx.send(p, "x")
        if random.random() < 0.5:  # MARK-R3-RANDOM
            pass

    def on_receive(self, msg, ctx):
        import time
        _ = time.time()  # MARK-R3-CLOCK
"""


class TestR3Nondeterminism:
    def test_flags_unsorted_set_iteration(self):
        lines = {f.line for f in findings_for(SRC_R3) if f.rule_id == "R3"}
        assert marked_line(SRC_R3, "MARK-R3-SET") in lines

    def test_flags_global_random(self):
        lines = {f.line for f in findings_for(SRC_R3) if f.rule_id == "R3"}
        assert marked_line(SRC_R3, "MARK-R3-RANDOM") in lines

    def test_flags_clock_read(self):
        lines = {f.line for f in findings_for(SRC_R3) if f.rule_id == "R3"}
        assert marked_line(SRC_R3, "MARK-R3-CLOCK") in lines

    def test_sorted_iteration_not_flagged(self):
        src = SRC_R3.replace("for p in self.peers:", "for p in sorted(self.peers):")
        lines = {f.line for f in check_source(src, "f.py") if f.rule_id == "R3"}
        assert marked_line(src, "MARK-R3-SET") not in lines


# --------------------------------------------------------------------- R4


SRC_R4 = """\
from repro.sim import Node


class SharedStateNode(Node):
    inbox = []  # MARK-R4

    def on_receive(self, msg, ctx):
        self.inbox.append(msg)
"""


class TestR4SharedClassState:
    def test_flags_mutable_class_attribute(self):
        findings = findings_for(SRC_R4)
        r4 = [f for f in findings if f.rule_id == "R4"]
        assert r4
        assert marked_line(SRC_R4, "MARK-R4") in {f.line for f in r4}

    def test_immutable_class_attribute_ok(self):
        src = SRC_R4.replace("inbox = []  # MARK-R4", "LIMIT = 3")
        src = src.replace("self.inbox.append(msg)", "pass")
        assert [f for f in check_source(src, "f.py") if f.rule_id == "R4"] == []


# --------------------------------------------------------------------- R5


SRC_R5 = """\
from repro.sim import Node


class EagerCompleteNode(Node):
    def on_receive(self, msg, ctx):
        ctx.complete(self.node_id, result=msg.payload)  # MARK-R5
"""

SRC_R5_GUARDED = """\
from repro.sim import Node


class GuardedCompleteNode(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.done = False

    def on_receive(self, msg, ctx):
        if not self.done:
            self.done = True
            ctx.complete(self.node_id, result=msg.payload)
"""


class TestR5DoubleCompletion:
    def test_flags_unguarded_complete_in_on_receive(self):
        findings = findings_for(SRC_R5)
        r5 = [f for f in findings if f.rule_id == "R5"]
        assert r5
        assert marked_line(SRC_R5, "MARK-R5") in {f.line for f in r5}

    def test_completion_guard_suppresses(self):
        assert [
            f for f in findings_for(SRC_R5_GUARDED) if f.rule_id == "R5"
        ] == []

    def test_message_derived_op_id_suppresses(self):
        src = SRC_R5.replace(
            "ctx.complete(self.node_id, result=msg.payload)  # MARK-R5",
            "ctx.complete(msg.payload, result=1)",
        )
        assert [f for f in check_source(src, "f.py") if f.rule_id == "R5"] == []


# ----------------------------------------------------------- clean protocol


SRC_CLEAN = """\
from repro.sim import Message, Node, NodeContext


class CleanNode(Node):
    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.done = False

    def on_start(self, ctx: NodeContext) -> None:
        for u in sorted(ctx.neighbors):
            ctx.send(u, "hello", payload=self.node_id)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if not self.done:
            self.done = True
            ctx.complete(self.node_id, result=msg.payload)
"""


class TestCleanProtocol:
    def test_no_findings(self):
        assert findings_for(SRC_CLEAN) == []

    def test_repo_protocols_are_clean(self):
        assert check_paths(["src/repro"]) == []

    def test_sanitizer_fixtures_have_expected_static_verdicts(self):
        nondet = check_file(str(FIXTURES / "nondet_proto.py"))
        assert any(f.rule_id == "R3" for f in nondet)
        det = check_file(str(FIXTURES / "det_proto.py"))
        assert [f for f in det if f.rule_id == "R3"] == []


# ------------------------------------------------------------------ output


class TestRendering:
    def test_text_output_anchors(self):
        out = render_text(findings_for(SRC_R4))
        line = marked_line(SRC_R4, "MARK-R4")
        assert f"fixture.py:{line}:" in out
        assert "R4" in out and "shared-class-state" in out

    def test_text_clean_summary(self):
        assert render_text([]) == "lint: clean"

    def test_json_output(self):
        payload = json.loads(render_json(findings_for(SRC_R5)))
        assert payload["count"] == len(payload["findings"]) >= 1
        first = payload["findings"][0]
        assert {"rule_id", "path", "line", "col", "obj", "message"} <= set(first)


# --------------------------------------------------------------------- CLI


class TestLintCli:
    def test_lint_own_protocols_exits_zero(self, capsys):
        assert main(["lint", "src/repro"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_lint_bad_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad_proto.py"
        bad.write_text(SRC_R5)
        assert main(["lint", str(bad)]) == 1
        assert "R5" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad_proto.py"
        bad.write_text(SRC_R4)
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1

    def test_count_sanitize_flag(self, capsys):
        code = main(
            ["count", "--graph", "path", "--n", "6",
             "--algorithm", "combining", "--sanitize"]
        )
        assert code == 0
        assert "deterministic" in capsys.readouterr().out


# ----------------------------------------------------------------- sanitizer


def _random_kind_run(trace: EventTrace) -> None:
    """A protocol whose message kinds consume the global RNG stream."""
    import random

    class Chatty(Node):
        def on_start(self, ctx: NodeContext) -> None:
            for u in ctx.neighbors:
                ctx.send(u, f"k{random.randrange(10**9)}")

        def on_receive(self, msg, ctx) -> None:
            pass

    nodes = {0: Chatty(0), 1: Chatty(1)}
    net = SynchronousNetwork({0: [1], 1: [0]}, nodes, trace=trace)
    net.run(max_rounds=10)


def _clean_run(trace: EventTrace) -> None:
    nodes = {0: _ping(0), 1: _ping(1)}
    net = SynchronousNetwork({0: [1], 1: [0]}, nodes, trace=trace)
    net.run(max_rounds=10)


class _ping(Node):
    def on_start(self, ctx: NodeContext) -> None:
        for u in ctx.neighbors:
            ctx.send(u, "ping")

    def on_receive(self, msg, ctx) -> None:
        pass


class TestSanitizerInProcess:
    def test_detects_rng_dependence(self):
        report = check_determinism(_random_kind_run)
        assert not report.deterministic
        assert report.divergence is not None
        assert "diverge" in report.describe()

    def test_clean_protocol_passes(self):
        report = check_determinism(_clean_run, runs=3)
        assert report.deterministic
        assert report.runs == 3
        assert report.events > 0

    def test_rejects_single_run(self):
        with pytest.raises(ValueError):
            check_determinism(_clean_run, runs=1)


class TestSanitizerSubprocess:
    def test_catches_hash_seed_dependence(self):
        # The engine itself accepts the run (run_trace returns normally in
        # every child); only the cross-seed trace diff exposes the hazard.
        report = check_determinism_subprocess(
            "nondet_proto:run_trace",
            hash_seeds=(0, 1, 2),
            extra_sys_path=[str(FIXTURES)],
        )
        assert not report.deterministic
        div = report.divergence
        assert div is not None
        assert "PYTHONHASHSEED" in (div.run_a + div.run_b)

    def test_sorted_twin_is_deterministic(self):
        report = check_determinism_subprocess(
            "det_proto:run_trace",
            hash_seeds=(0, 1, 2),
            extra_sys_path=[str(FIXTURES)],
        )
        assert report.deterministic

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError):
            check_determinism_subprocess("no_colon_here")


# ---------------------------------------------------------------- strict mode


class _Blaster(Node):
    def on_start(self, ctx: NodeContext) -> None:
        for u in ctx.neighbors:
            ctx.send(u, "hi")

    def on_receive(self, msg, ctx) -> None:
        pass


class _LeafSender(Node):
    def on_start(self, ctx: NodeContext) -> None:
        if ctx.node_id != 0:
            ctx.send(0, "hi")

    def on_receive(self, msg, ctx) -> None:
        pass


_STAR = {0: [1, 2, 3], 1: [0], 2: [0], 3: [0]}


class TestStrictMode:
    def test_send_budget_overrun_raises(self):
        nodes = {v: _Blaster(v) for v in _STAR}
        with pytest.raises(StrictModeViolation, match="send budget"):
            SynchronousNetwork(_STAR, nodes, strict=True).run()

    def test_receive_budget_overrun_raises(self):
        nodes = {v: _LeafSender(v) for v in _STAR}
        with pytest.raises(StrictModeViolation, match="receive budget"):
            SynchronousNetwork(_STAR, nodes, strict=True).run()

    def test_same_protocol_passes_without_strict(self):
        nodes = {v: _Blaster(v) for v in _STAR}
        SynchronousNetwork(_STAR, nodes).run()

    def test_adequate_capacity_passes_strict(self):
        nodes = {v: _Blaster(v) for v in _STAR}
        SynchronousNetwork(
            _STAR, nodes, send_capacity=3, recv_capacity=3, strict=True
        ).run()
