"""The resilience layer: invariant monitors, watchdog, checkpoint/restore.

The monitors are validated the only honest way — against *mutant*
protocols seeded with real bugs (duplicate ranks, a forked arrow queue,
a duplicated token) that the matching invariant must catch at the right
round, while the healthy protocols run monitored against the golden
fixtures untouched.  Checkpoints must restore to the byte-identical
remainder of the original trace under every delay model, and the
watchdog must turn hangs into diagnoses instead of round-limit errors.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import (
    ConstantDelay,
    MonitorSet,
    PeriodicCheckpointer,
    UniformDelay,
    Watchdog,
    bfs_spanning_tree,
    complete_graph,
    mesh_graph,
    path_graph,
    path_spanning_tree,
    run_arrow,
    run_central_counting,
    run_flood_counting,
    run_token_mutex,
    star_graph,
)
from repro.arrow.protocol import ArrowNode
from repro.faults import FaultPlan, NodeCrash
from repro.resilience import (
    ArrowInvariant,
    Checkpoint,
    CountingInvariant,
    TokenInvariant,
)
from repro.sim import EventTrace, SynchronousNetwork
from repro.sim.errors import InvariantViolation, ProtocolViolation, StallDetected

GOLDEN_DIR = Path(__file__).parent / "golden"


# ----------------------------------------------------- mutants trip invariants


class TestCountingInvariant:
    def test_duplicate_rank_mutant_caught(self, monkeypatch):
        """A counter that hands out rank 2 twice is caught on the second
        completion, naming both holders."""
        import repro.counting.central as central_mod

        class DupRank(central_mod._CentralNode):
            def _serve(self, origin, path, ctx):
                self.counter += 1
                value = min(self.counter, 2)  # ranks collide at 2
                if origin == self.node_id:
                    ctx.complete(origin, result=value)
                else:
                    ctx.send(path[0], "reply", payload=(origin, path[1:], value))

        monkeypatch.setattr(central_mod, "_CentralNode", DupRank)
        mon = MonitorSet(invariants=(CountingInvariant(expected=5),))
        with pytest.raises(InvariantViolation) as ei:
            run_central_counting(star_graph(5), range(5), monitors=mon)
        exc = ei.value
        assert exc.invariant == "counting.rank-uniqueness"
        assert len(exc.nodes) == 2
        assert "rank 2" in str(exc)

    def test_out_of_range_rank_caught(self, monkeypatch):
        import repro.counting.central as central_mod

        class Overflow(central_mod._CentralNode):
            def _serve(self, origin, path, ctx):
                self.counter += 1
                value = self.counter + 100
                if origin == self.node_id:
                    ctx.complete(origin, result=value)
                else:
                    ctx.send(path[0], "reply", payload=(origin, path[1:], value))

        monkeypatch.setattr(central_mod, "_CentralNode", Overflow)
        mon = MonitorSet(invariants=(CountingInvariant(expected=4),))
        with pytest.raises(InvariantViolation, match="outside"):
            run_central_counting(star_graph(4), range(4), monitors=mon)

    def test_violation_carries_trace_slice(self, monkeypatch):
        import repro.counting.central as central_mod

        class DupRank(central_mod._CentralNode):
            def _serve(self, origin, path, ctx):
                self.counter += 1
                value = min(self.counter, 2)
                if origin == self.node_id:
                    ctx.complete(origin, result=value)
                else:
                    ctx.send(path[0], "reply", payload=(origin, path[1:], value))

        monkeypatch.setattr(central_mod, "_CentralNode", DupRank)
        tr = EventTrace()
        mon = MonitorSet(invariants=(CountingInvariant(expected=5),))
        with pytest.raises(InvariantViolation) as ei:
            run_central_counting(star_graph(5), range(5), trace=tr, monitors=mon)
        sl = ei.value.trace_slice
        assert sl is not None
        assert sl.events  # evidence window is non-empty
        assert all(e.round <= ei.value.round for e in sl.events)

    def test_density_checked_at_finish(self):
        """Too few completions is a missing-rank violation at quiescence."""
        mon = MonitorSet(invariants=(CountingInvariant(expected=7),))
        with pytest.raises(InvariantViolation, match="missing"):
            # only 4 of the promised 7 requesters exist
            run_central_counting(star_graph(7), range(4), monitors=mon)


class TestArrowInvariant:
    def _net(self, links: dict[int, int], n: int = 4) -> SynchronousNetwork:
        nodes = {
            v: ArrowNode(v, link=links.get(v, 0), requesting=False)
            for v in range(n)
        }
        return SynchronousNetwork(
            path_graph(n),
            nodes,
            send_capacity=2,
            recv_capacity=2,
            monitors=MonitorSet(invariants=(ArrowInvariant(),)),
        )

    def test_two_sinks_caught_at_round_zero(self):
        # 0 and 3 both point at themselves: a forked queue from the start.
        with pytest.raises(InvariantViolation) as ei:
            self._net({0: 0, 1: 0, 2: 3, 3: 3}).run()
        assert ei.value.invariant == "arrow.single-sink"
        assert ei.value.round == 0
        assert ei.value.nodes == (0, 3)

    def test_pointer_off_tree_caught(self):
        # node 2 points at non-neighbor 0 (path edges are only {i, i+1}).
        with pytest.raises(InvariantViolation, match="non-neighbor"):
            self._net({0: 0, 1: 0, 2: 0, 3: 2}).run()

    def test_no_sink_caught(self):
        # a pointer cycle with no self-link: the queue tail vanished.
        with pytest.raises(InvariantViolation, match="tail is lost"):
            self._net({0: 1, 1: 0, 2: 1, 3: 2}).run()

    def test_healthy_arrow_passes(self):
        mon = MonitorSet(invariants=(ArrowInvariant(),))
        r = run_arrow(path_spanning_tree(path_graph(8)), range(8), monitors=mon)
        assert sorted(r.order()) == list(range(8))


class TestTokenInvariant:
    def test_duplicated_token_caught(self, monkeypatch):
        import repro.mutex.raymond as raymond_mod

        class KeepToken(raymond_mod._MutexNode):
            def _try_pass(self, ctx):
                if not self.has_token:
                    return
                op = self.token_for
                if op not in self.cs_completed or op not in self.succ_of:
                    return
                target = self.succ_of[op]
                if target == self.node_id:
                    self.has_token = False
                    self._acquire(ctx)
                else:
                    # BUG: has_token is not cleared before sending -> the
                    # old holder and the in-flight token coexist
                    path = self.tree.path(self.node_id, target)[1:]
                    ctx.send(path[0], "token", payload=path[1:])

        monkeypatch.setattr(raymond_mod, "_MutexNode", KeepToken)
        mon = MonitorSet(invariants=(TokenInvariant(),))
        with pytest.raises(InvariantViolation) as ei:
            run_token_mutex(bfs_spanning_tree(complete_graph(5)), range(5),
                            monitors=mon)
        assert ei.value.invariant == "mutex.token-uniqueness"
        assert "duplicated" in str(ei.value)

    def test_healthy_mutex_passes(self):
        mon = MonitorSet(invariants=(TokenInvariant(),))
        out = run_token_mutex(bfs_spanning_tree(complete_graph(6)), range(6),
                              monitors=mon)
        assert out.mutual_exclusion_holds()


# ------------------------------------------- monitors do not perturb the run


class TestTransparency:
    """Monitored healthy runs match the golden fixtures byte for byte."""

    @staticmethod
    def _golden(name: str):
        with open(GOLDEN_DIR / f"{name}.json") as fh:
            return json.load(fh)

    def test_monitored_arrow_matches_golden(self):
        tr = EventTrace()
        mon = MonitorSet(
            invariants=(ArrowInvariant(),), watchdog=Watchdog(expected_completions=8)
        )
        run_arrow(path_spanning_tree(path_graph(8)), range(8), trace=tr,
                  monitors=mon)
        golden = self._golden("arrow")["events"]
        got = json.loads(json.dumps(
            [[e.kind, e.round, e.data] for e in tr.events]))
        assert got == golden

    def test_monitored_flood_matches_golden(self):
        tr = EventTrace()
        mon = MonitorSet(
            invariants=(CountingInvariant(expected=9),),
            watchdog=Watchdog(expected_completions=9),
            checkpointer=PeriodicCheckpointer(every=5),
        )
        run_flood_counting(mesh_graph([3, 3]), range(9), trace=tr, monitors=mon)
        golden = self._golden("flood")["events"]
        got = json.loads(json.dumps(
            [[e.kind, e.round, e.data] for e in tr.events]))
        assert got == golden

    def test_monitors_metrics_counters(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        mon = MonitorSet(invariants=(CountingInvariant(expected=6),), metrics=reg)
        run_central_counting(star_graph(6), range(6), monitors=mon)
        doc = reg.to_dict()
        assert doc["counters"]["resilience.rounds_checked"] > 0
        assert "resilience.violations" not in doc["counters"]


# ------------------------------------------------------------------ watchdog


class TestWatchdog:
    def test_deadlock_diagnosed_with_stuck_nodes(self):
        """A permanent crash without retries quiesces or stalls; either way
        the diagnosis must name the dead relay, not just give up."""
        plan = FaultPlan(seed=1, crashes=(NodeCrash(node=1, start=0, end=None),))
        mon = MonitorSet(watchdog=Watchdog(stall_window=50, expected_completions=4))
        with pytest.raises(StallDetected) as ei:
            run_central_counting(path_graph(4), range(4), faults=plan, monitors=mon)
        exc = ei.value
        assert exc.kind in ("stall", "deadlock")
        assert 1 in exc.pending_nodes
        assert "node" in str(exc)

    def test_finite_crash_does_not_trip(self):
        """Scheduled downtime pauses the windows: a short crash with a
        small stall window still completes cleanly."""
        from repro.faults import run_central_counting_ft

        plan = FaultPlan(seed=2, crashes=(NodeCrash(node=1, start=2, end=6),))
        mon = MonitorSet(watchdog=Watchdog(stall_window=3, expected_completions=4))
        r = run_central_counting_ft(path_graph(4), range(4), plan, monitors=mon)
        assert sorted(r.counts.values()) == [1, 2, 3, 4]

    def test_oldest_undelivered_in_diagnosis(self):
        plan = FaultPlan(seed=1, crashes=(NodeCrash(node=1, start=0, end=None),))
        mon = MonitorSet(watchdog=Watchdog(stall_window=50, expected_completions=4))
        with pytest.raises(StallDetected) as ei:
            run_central_counting(path_graph(4), range(4), faults=plan, monitors=mon)
        assert ei.value.oldest is not None

    def test_windows_validated(self):
        with pytest.raises(ValueError):
            Watchdog(stall_window=0)


# ------------------------------------------------------- checkpoint / restore


class TestCheckpoint:
    @pytest.mark.parametrize(
        "delay_model",
        [None, ConstantDelay(2), UniformDelay(1, 4, seed=5)],
        ids=["unit", "constant", "uniform"],
    )
    def test_restore_resumes_byte_identically(self, delay_model):
        t_full = EventTrace()
        run_central_counting(star_graph(8), range(8), trace=t_full,
                             delay_model=delay_model)
        cpr = PeriodicCheckpointer(every=3, keep=20)
        t = EventTrace()
        run_central_counting(star_graph(8), range(8), trace=t,
                             delay_model=delay_model,
                             monitors=MonitorSet(checkpointer=cpr))
        assert t.events == t_full.events
        assert cpr.checkpoints
        for cp in cpr.checkpoints:
            restored = cp.restore()
            restored.resume()
            assert restored.trace.events == t_full.events, (
                f"resume from round {cp.round} diverged"
            )

    def test_restore_twice_is_independent(self):
        cpr = PeriodicCheckpointer(every=4, keep=4)
        t = EventTrace()
        run_flood_counting(mesh_graph([2, 3]), range(6), trace=t,
                           monitors=MonitorSet(checkpointer=cpr))
        cp = cpr.latest()
        a, b = cp.restore(), cp.restore()
        a.resume()
        assert a.trace.events == t.events
        b.resume()  # second restore starts from the same snapshot
        assert b.trace.events == t.events

    def test_save_load_roundtrip(self, tmp_path):
        cpr = PeriodicCheckpointer(every=4, keep=4)
        run_central_counting(star_graph(6), range(6),
                             trace=EventTrace(),
                             monitors=MonitorSet(checkpointer=cpr))
        cp = cpr.latest()
        path = tmp_path / "snap.ckpt"
        cp.save(path)
        loaded = Checkpoint.load(path)
        assert loaded.round == cp.round
        net = loaded.restore()
        net.resume()
        assert len(net.delays) == 6

    def test_load_rejects_wrong_payload(self, tmp_path):
        import pickle

        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(TypeError):
            Checkpoint.load(path)

    def test_keep_limit_is_fifo(self):
        cpr = PeriodicCheckpointer(every=2, keep=3)
        run_flood_counting(mesh_graph([3, 3]), range(9),
                           monitors=MonitorSet(checkpointer=cpr))
        assert len(cpr.checkpoints) == 3
        rounds = [c.round for c in cpr.checkpoints]
        assert rounds == sorted(rounds)

    def test_before_selects_newest_earlier_checkpoint(self):
        cpr = PeriodicCheckpointer(every=3, keep=10)
        mon = MonitorSet(checkpointer=cpr)
        run_central_counting(star_graph(8), range(8), monitors=mon)
        rounds = [c.round for c in cpr.checkpoints]
        target = rounds[-1]
        cp = mon.last_checkpoint_before(target)
        assert cp is not None and cp.round == rounds[-2]
        assert mon.last_checkpoint_before(rounds[0]) is None

    def test_checkpoints_do_not_nest(self):
        """A snapshot must not carry the checkpointer's earlier snapshots
        (deepcopy of stored history would snowball quadratically)."""
        cpr = PeriodicCheckpointer(every=2, keep=10)
        run_central_counting(star_graph(6), range(6),
                             monitors=MonitorSet(checkpointer=cpr))
        assert len(cpr.checkpoints) > 2
        inner = cpr.checkpoints[-1]._net.monitors.checkpointer
        assert inner.checkpoints == []

    def test_resume_requires_prior_run(self):
        net = SynchronousNetwork(
            path_graph(2),
            {v: ArrowNode(v, link=0, requesting=False) for v in range(2)},
            send_capacity=1,
            recv_capacity=1,
        )
        with pytest.raises(ProtocolViolation, match="never run"):
            net.resume()

    def test_replay_from_checkpoint_reaches_same_violation(self, monkeypatch):
        """The headline workflow: violation -> restore last checkpoint ->
        resume -> the same violation at the same round."""
        import repro.counting.central as central_mod

        class DupRank(central_mod._CentralNode):
            def _serve(self, origin, path, ctx):
                self.counter += 1
                value = min(self.counter, 3)
                if origin == self.node_id:
                    ctx.complete(origin, result=value)
                else:
                    ctx.send(path[0], "reply", payload=(origin, path[1:], value))

        monkeypatch.setattr(central_mod, "_CentralNode", DupRank)
        cpr = PeriodicCheckpointer(every=2, keep=10)
        mon = MonitorSet(
            invariants=(CountingInvariant(expected=6),), checkpointer=cpr
        )
        with pytest.raises(InvariantViolation) as first:
            run_central_counting(star_graph(6), range(6), trace=EventTrace(),
                                 monitors=mon)
        cp = mon.last_checkpoint_before(first.value.round)
        assert cp is not None
        net = cp.restore()
        with pytest.raises(InvariantViolation) as again:
            net.resume()
        assert again.value.invariant == first.value.invariant
        assert again.value.round == first.value.round
        assert again.value.nodes == first.value.nodes
