"""Shared helpers importable from any test module."""

from __future__ import annotations

from repro.topology.base import Graph
from repro.tree import RootedTree
from repro.tree import random_tree  # re-exported for test modules

__all__ = ["random_tree", "tree_as_graph"]


def tree_as_graph(tree: RootedTree, name: str = "tree") -> Graph:
    """The undirected graph of a rooted tree."""
    return Graph.from_edges(tree.n, tree.edges(), name=name)
