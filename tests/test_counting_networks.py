"""Balancing networks: bitonic and periodic constructions in depth."""

from __future__ import annotations

import math
import random

import pytest

from repro.counting import (
    bitonic_network,
    network_depth,
    periodic_network,
    run_counting_network,
    run_periodic_counting,
    traverse_interleaved,
    traverse_sequentially,
)
from repro.counting.network import output_counts_have_step_property
from repro.topology import complete_graph, hypercube_graph, mesh_graph


class TestConstructionShape:
    @pytest.mark.parametrize("w", [2, 4, 8, 16, 32, 64])
    def test_bitonic_depth_and_size(self, w):
        net = bitonic_network(w)
        lw = int(math.log2(w))
        expected_depth = lw * (lw + 1) // 2
        assert network_depth(net) == expected_depth
        assert len(net.balancers) == (w // 2) * expected_depth

    @pytest.mark.parametrize("w", [2, 4, 8, 16, 32])
    def test_periodic_depth_and_size(self, w):
        net = periodic_network(w)
        lw = int(math.log2(w))
        assert network_depth(net) == lw * lw
        assert len(net.balancers) == (w // 2) * lw * lw

    def test_width_one_is_a_wire(self):
        for ctor in (bitonic_network, periodic_network):
            net = ctor(1)
            assert net.balancers == ()
            assert traverse_sequentially(net, [3]) == [1, 2, 3]

    @pytest.mark.parametrize("ctor", [bitonic_network, periodic_network])
    def test_non_power_of_two_rejected(self, ctor):
        with pytest.raises(ValueError):
            ctor(6)
        with pytest.raises(ValueError):
            ctor(0)

    def test_every_balancer_fully_wired(self):
        for ctor in (bitonic_network, periodic_network):
            for w in (2, 4, 8, 16):
                net = ctor(w)
                for b in net.balancers:
                    assert b.out[0] is not None and b.out[1] is not None

    def test_wrong_load_vector_rejected(self):
        net = bitonic_network(4)
        with pytest.raises(ValueError):
            traverse_sequentially(net, [1, 2])
        with pytest.raises(ValueError):
            traverse_interleaved(net, [1, 2, 3])


class TestCountingProperty:
    @pytest.mark.parametrize("ctor", [bitonic_network, periodic_network])
    @pytest.mark.parametrize("w", [2, 4, 8, 16])
    def test_sequential_outputs_exactly_1_to_x(self, ctor, w):
        rng = random.Random(w)
        for _ in range(30):
            load = [rng.randint(0, 5) for _ in range(w)]
            vals = traverse_sequentially(ctor(w), load)
            assert sorted(vals) == list(range(1, sum(load) + 1))

    @pytest.mark.parametrize("ctor", [bitonic_network, periodic_network])
    @pytest.mark.parametrize("w", [4, 8, 16])
    def test_interleaved_outputs_exactly_1_to_x(self, ctor, w):
        rng = random.Random(w * 7)
        for seed in range(25):
            load = [rng.randint(0, 4) for _ in range(w)]
            vals = traverse_interleaved(ctor(w), load, seed=seed)
            assert sorted(vals) == list(range(1, sum(load) + 1))

    @pytest.mark.parametrize("ctor", [bitonic_network, periodic_network])
    def test_step_property_of_output_loads(self, ctor):
        w = 8
        rng = random.Random(99)
        for _ in range(20):
            net = ctor(w)
            load = [rng.randint(0, 6) for _ in range(w)]
            vals = traverse_sequentially(net, load)
            out_counts = [0] * w
            for v in vals:
                out_counts[(v - 1) % w] += 1
            assert output_counts_have_step_property(out_counts)

    def test_step_property_helper(self):
        assert output_counts_have_step_property([3, 3, 2, 2])
        assert not output_counts_have_step_property([2, 3, 2, 2])
        assert not output_counts_have_step_property([3, 1, 2, 2])


class TestDistributedRuns:
    def test_periodic_on_complete_graph(self):
        r = run_periodic_counting(complete_graph(16), range(16))
        assert sorted(r.counts.values()) == list(range(1, 17))

    def test_periodic_on_sparse_graphs(self):
        for g in (mesh_graph([3, 3]), hypercube_graph(3)):
            r = run_periodic_counting(g, range(g.n), width=8)
            assert sorted(r.counts.values()) == list(range(1, g.n + 1))

    def test_periodic_subsets(self):
        rng = random.Random(4)
        for _ in range(8):
            n = rng.randint(4, 20)
            g = complete_graph(n)
            req = rng.sample(range(n), rng.randint(1, n))
            r = run_periodic_counting(g, req)
            assert sorted(r.counts.values()) == list(range(1, len(set(req)) + 1))

    def test_periodic_deeper_hence_slower_than_bitonic(self):
        g = complete_graph(32)
        bit = run_counting_network(g, range(32))
        per = run_periodic_counting(g, range(32))
        # periodic depth (log w)^2 > bitonic's log w (log w + 1)/2 for w > 2
        assert per.total_delay > bit.total_delay

    def test_periodic_invalid_width(self):
        with pytest.raises(ValueError):
            run_periodic_counting(complete_graph(8), range(8), width=5)
