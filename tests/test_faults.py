"""Unit battery for the fault-injection subsystem.

Covers the plan grammar and validation, injector determinism and verdict
semantics, crash/outage mechanics inside the engine, the enriched
:class:`RoundLimitExceeded` diagnostics, and the reliable wrapper's
dedup/retry behaviour including budget exhaustion.
"""

from __future__ import annotations

import pytest

from repro import (
    FaultPlan,
    LinkOutage,
    NodeCrash,
    RetryPolicy,
    path_graph,
    run_arrow,
    run_arrow_ft,
    run_central_counting,
    run_central_counting_ft,
    star_graph,
)
from repro.faults.injector import DELIVER, DROP, DUPLICATE, OUTAGE, FaultInjector
from repro.faults.reliable import RetryBudgetExceeded, unwrap, wrap_reliable
from repro.sim import EventTrace, Message, RunStats
from repro.sim.errors import RoundLimitExceeded
from repro.topology.spanning import path_spanning_tree


def _msg(src: int, dst: int, sent_at: int = 0, seq: int = 0) -> Message:
    m = Message(src=src, dst=dst, kind="x", payload=None, seq=seq)
    m.sent_at = sent_at
    return m


# ------------------------------------------------------------------ the plan


class TestFaultPlan:
    def test_default_plan_is_empty_and_has_no_injector(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.injector() is None
        assert plan.eventually_delivers()
        assert plan.describe() == "no faults"

    def test_nonempty_plan_builds_injector(self):
        plan = FaultPlan(drop_rate=0.1)
        assert not plan.is_empty()
        assert isinstance(plan.injector(), FaultInjector)

    @pytest.mark.parametrize("kwargs", [
        {"drop_rate": 1.0},
        {"drop_rate": -0.1},
        {"duplicate_rate": 1.5},
        {"max_consecutive_drops": 0},
    ])
    def test_invalid_rates_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            LinkOutage(3, 3, 0, 5)  # self-loop
        with pytest.raises(ValueError):
            LinkOutage(0, 1, 5, 5)  # empty window
        assert LinkOutage(2, 1, 0, 5).edge == (1, 2)

    def test_crash_validation(self):
        with pytest.raises(ValueError):
            NodeCrash(0, -1, 5)
        with pytest.raises(ValueError):
            NodeCrash(0, 5, 5)
        assert NodeCrash(0, 5, None).down(10**9)  # permanent

    def test_eventual_delivery_conditions(self):
        assert FaultPlan(drop_rate=0.5, max_consecutive_drops=3).eventually_delivers()
        assert not FaultPlan(
            drop_rate=0.5, max_consecutive_drops=None
        ).eventually_delivers()
        assert not FaultPlan(crashes=(NodeCrash(0, 0, None),)).eventually_delivers()
        assert FaultPlan(crashes=(NodeCrash(0, 0, 9),)).eventually_delivers()

    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "drop=0.1, dup=0.05, seed=7, runs=2",
            crashes=["3@10:20", "5@4:"],
            outages=["1-2@5:15"],
        )
        assert plan.drop_rate == 0.1
        assert plan.duplicate_rate == 0.05
        assert plan.seed == 7
        assert plan.max_consecutive_drops == 2
        assert plan.crashes == (NodeCrash(3, 10, 20), NodeCrash(5, 4, None))
        assert plan.outages == (LinkOutage(1, 2, 5, 15),)

    def test_parse_runs_inf(self):
        assert FaultPlan.parse("drop=0.2,runs=inf").max_consecutive_drops is None

    def test_parse_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("").is_empty()

    @pytest.mark.parametrize("bad", ["drop", "loss=0.1", "drop=x"])
    def test_parse_rejects_malformed_spec(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    @pytest.mark.parametrize("bad", ["x@1:2", "3@:", "3"])
    def test_parse_rejects_malformed_crash(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse("", crashes=[bad])

    def test_parse_rejects_malformed_outage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("", outages=["1@5:15"])

    def test_describe_mentions_every_component(self):
        text = FaultPlan(
            seed=9, drop_rate=0.25, duplicate_rate=0.1,
            outages=(LinkOutage(0, 1, 2, 4),), crashes=(NodeCrash(2, 3, None),),
        ).describe()
        for needle in ("drop=0.25", "dup=0.1", "outage 0-1@2:4", "crash 2@3:", "seed=9"):
            assert needle in text


# -------------------------------------------------------------- the injector


class TestFaultInjector:
    def test_same_seed_same_verdicts(self):
        plan = FaultPlan(seed=42, drop_rate=0.3, duplicate_rate=0.3)
        inj_a, inj_b = plan.injector(), plan.injector()
        a = [inj_a.on_link_entry(_msg(0, 1), t) for t in range(50)]
        b = [inj_b.on_link_entry(_msg(0, 1), t) for t in range(50)]
        assert a == b
        assert DROP in a and DUPLICATE in a  # at 30% over 50 draws

    def test_different_seeds_differ(self):
        verdicts = []
        for seed in (1, 2):
            inj = FaultPlan(seed=seed, drop_rate=0.4, duplicate_rate=0.3).injector()
            verdicts.append([inj.on_link_entry(_msg(0, 1), t) for t in range(60)])
        assert verdicts[0] != verdicts[1]

    def test_consecutive_drop_bound_per_link(self):
        inj = FaultPlan(seed=0, drop_rate=0.95, max_consecutive_drops=2).injector()
        streak = 0
        for t in range(300):
            v = inj.on_link_entry(_msg(0, 1, sent_at=t), t)
            streak = streak + 1 if v == DROP else 0
            assert streak <= 2

    def test_drop_runs_tracked_per_directed_link(self):
        # A near-certain drop rate: both directions should each hit the
        # bound independently rather than sharing one counter.
        inj = FaultPlan(seed=0, drop_rate=0.95, max_consecutive_drops=1).injector()
        seq = [inj.on_link_entry(_msg(0, 1), 0) for _ in range(10)]
        rev = [inj.on_link_entry(_msg(1, 0), 0) for _ in range(10)]
        for s in (seq, rev):
            assert all(
                not (a == DROP and b == DROP) for a, b in zip(s, s[1:])
            )

    def test_outage_window_beats_randomness(self):
        plan = FaultPlan(outages=(LinkOutage(0, 1, 5, 10),))
        inj = plan.injector()
        assert inj.on_link_entry(_msg(0, 1), 4) == DELIVER
        assert inj.on_link_entry(_msg(0, 1), 5) == OUTAGE
        assert inj.on_link_entry(_msg(1, 0), 7) == OUTAGE  # both directions
        assert inj.on_link_entry(_msg(0, 1), 10) == DELIVER
        assert inj.on_link_entry(_msg(0, 2), 7) == DELIVER  # other edges live

    def test_duplicate_verdict_occurs(self):
        inj = FaultPlan(seed=1, duplicate_rate=0.5).injector()
        verdicts = {inj.on_link_entry(_msg(0, 1), t) for t in range(40)}
        assert verdicts == {DELIVER, DUPLICATE}

    def test_crash_windows_and_recovery(self):
        inj = FaultPlan(crashes=(NodeCrash(3, 5, 9), NodeCrash(3, 20, None))).injector()
        assert inj.has_crashes()
        assert not inj.crashed(3, 4)
        assert inj.crashed(3, 5) and inj.crashed(3, 8)
        assert not inj.crashed(3, 9)
        assert inj.crashed(3, 10**6)  # second, permanent window
        assert inj.recovery_round(3, 6) == 9
        assert inj.recovery_round(3, 25) is None

    def test_tick_emits_boundaries_with_scheduled_round(self):
        inj = FaultPlan(crashes=(NodeCrash(1, 2, 6),)).injector()
        stats, trace = RunStats(), EventTrace()
        inj.tick(0, stats, trace)
        assert stats.node_crashes == 0 and len(trace) == 0
        inj.tick(10, stats, trace)  # engine jumped over rounds 2 and 6
        assert stats.node_crashes == 1
        assert [(e.kind, e.round) for e in trace] == [("crash", 2), ("recover", 6)]
        inj.tick(11, stats, trace)  # boundaries emit once
        assert len(trace) == 2


# ------------------------------------------------- engine-level fault effects


class TestEngineFaultEffects:
    def test_drop_and_duplicate_counters_and_trace(self):
        trace = EventTrace()
        plan = FaultPlan(seed=5, drop_rate=0.2, duplicate_rate=0.3)
        res = run_central_counting_ft(star_graph(8), range(8), plan, trace=trace)
        assert res.stats.messages_dropped == len(trace.of_kind("drop"))
        assert res.stats.messages_duplicated == len(trace.of_kind("duplicate"))
        assert res.stats.messages_dropped > 0
        assert res.stats.messages_duplicated > 0

    def test_crashed_node_freezes_and_resumes(self):
        # Crash the star hub mid-run: every request stalls, then completes.
        plan = FaultPlan(crashes=(NodeCrash(0, 2, 30),))
        trace = EventTrace()
        res = run_central_counting_ft(star_graph(8), range(8), plan, trace=trace)
        assert res.stats.node_crashes == 1
        assert sorted(res.counts.values()) == list(range(1, 9))
        assert res.stats.rounds >= 30  # the run had to outlive the outage
        assert len(trace.of_kind("crash")) == 1
        assert len(trace.of_kind("recover")) == 1

    def test_round_limit_diagnostics_name_pending_nodes(self):
        with pytest.raises(RoundLimitExceeded) as exc:
            run_central_counting(star_graph(16), range(16), max_rounds=4)
        e = exc.value
        assert e.max_rounds == 4
        assert e.in_flight > 0
        assert e.pending_nodes and all(0 <= v < 16 for v in e.pending_nodes)
        assert e.pending_nodes == tuple(sorted(e.pending_nodes))
        kind, src, dst, sent_at = e.oldest
        assert kind == "req" and dst == 0
        assert "pending operations" in str(e)
        assert "oldest undelivered" in str(e)

    def test_round_limit_legacy_signature_still_works(self):
        e = RoundLimitExceeded(100, 3)
        assert e.max_rounds == 100 and e.in_flight == 3
        assert e.pending_nodes == () and e.oldest is None


# ----------------------------------------------------------- reliable wrapper


class TestReliableWrapper:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=0)

    def test_backoff_curve_monotone_and_capped(self):
        p = RetryPolicy(timeout=4, backoff=2.0, max_interval=32)
        seq = [4]
        for _ in range(8):
            seq.append(p.next_interval(seq[-1]))
        assert seq == sorted(seq)
        assert seq[-1] == 32

    def test_unwrap_round_trips(self):
        from repro.sim import Node

        inner = Node(7)
        wrapped = wrap_reliable()(inner)
        assert unwrap(wrapped) is inner
        assert unwrap(inner) is inner
        assert wrapped.node_id == 7

    def test_wrapper_is_transparent_without_faults(self):
        sp = path_spanning_tree(path_graph(6))
        plain = run_arrow(sp, range(6))
        wrapped = run_arrow(sp, range(6), node_wrapper=wrap_reliable())
        assert wrapped.order() == plain.order()
        assert wrapped.predecessors == plain.predecessors

    def test_retry_budget_exhausts_under_permanent_crash(self):
        plan = FaultPlan(crashes=(NodeCrash(0, 0, None),))  # hub never serves
        assert not plan.eventually_delivers()
        policy = RetryPolicy(timeout=2, max_retries=3)
        with pytest.raises(RetryBudgetExceeded) as exc:
            run_central_counting_ft(
                star_graph(4), range(1, 4), plan, policy=policy, max_rounds=10_000
            )
        assert exc.value.attempts > policy.max_retries
        assert exc.value.dst == 0
        assert "gave up" in str(exc.value)

    def test_ft_run_is_deterministic(self):
        plan = FaultPlan(seed=13, drop_rate=0.2, duplicate_rate=0.1)
        sp = path_spanning_tree(path_graph(8))
        a = run_arrow_ft(sp, range(8), plan)
        b = run_arrow_ft(sp, range(8), plan)
        assert a.stats == b.stats
        assert a.delays == b.delays
        assert a.order() == b.order()


class TestCrashAwareRetry:
    """The retry budget pauses while the peer is known to be down."""

    def test_blocked_until_fixpoint_over_windows(self):
        plan = FaultPlan(
            crashes=(NodeCrash(2, 5, 10),),
            outages=(LinkOutage(1, 2, 9, 14),),
        )
        # crash holds until 10, which lands inside the outage -> 14
        assert plan.blocked_until(1, 2, 6) == 14
        assert plan.blocked_until(2, 1, 6) == 6  # nothing active yet at 6
        assert plan.blocked_until(2, 1, 10) == 14  # outage active at 10
        assert plan.blocked_until(1, 2, 14) == 14  # already clear
        assert plan.blocked_until(0, 3, 6) == 6  # untouched edge

    def test_blocked_until_permanent_crash_is_none(self):
        plan = FaultPlan(crashes=(NodeCrash(2, 5, None),))
        assert plan.blocked_until(1, 2, 7) is None
        assert plan.blocked_until(1, 2, 2) == 2  # before the crash starts

    def test_budget_survives_long_crash_window(self):
        """A crash window far longer than the retry budget must not
        exhaust it: retries are deferred, not burned."""
        plan = FaultPlan(crashes=(NodeCrash(0, 1, 120),))
        policy = RetryPolicy(timeout=2, max_retries=3)  # budget ~ a few rounds
        r = run_central_counting_ft(
            star_graph(4), range(1, 4), plan, policy=policy, max_rounds=10_000
        )
        assert sorted(r.counts.values()) == [1, 2, 3]

    def test_budget_pause_metric_counted(self):
        from repro.obs import MetricsRegistry

        plan = FaultPlan(crashes=(NodeCrash(0, 1, 60),))
        reg = MetricsRegistry()
        run_central_counting_ft(
            star_graph(4), range(1, 4), plan,
            policy=RetryPolicy(timeout=2, max_retries=4),
            metrics=reg, max_rounds=10_000,
        )
        assert reg.to_dict()["counters"]["reliable.budget_pauses"] > 0

    def test_permanent_crash_still_exhausts_budget(self):
        """blocked_until -> None means no pause: the budget is charged and
        gives up with the failing round attached."""
        plan = FaultPlan(crashes=(NodeCrash(0, 0, None),))
        with pytest.raises(RetryBudgetExceeded) as exc:
            run_central_counting_ft(
                star_graph(4), range(1, 4), plan,
                policy=RetryPolicy(timeout=2, max_retries=3), max_rounds=10_000,
            )
        assert exc.value.round is not None
        assert exc.value.round > 0

    def test_crashes_during_flood_complete_without_pinning(self):
        """The historical flood_ft failure mode: crash windows that
        swallow the wrapped node's timer.  Now any seed works."""
        from repro.faults import run_flood_counting_ft
        from repro.topology import ring_graph

        for seed in range(4):
            plan = FaultPlan(
                seed=seed, drop_rate=0.1,
                crashes=(NodeCrash(seed % 6, 2, 9),),
            )
            r = run_flood_counting_ft(ring_graph(6), range(6), plan,
                                      max_rounds=50_000)
            assert sorted(r.counts.values()) == list(range(1, 7))
