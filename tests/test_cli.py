"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 21):
            assert f"E{i} " in out or f"E{i}\t" in out or f"E{i}  " in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "E3"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out and "[PASS]" in out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e1"]) == 0

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])


class TestProtocols:
    def test_arrow_on_mesh(self, capsys):
        assert main(["arrow", "--graph", "mesh", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "total delay" in out

    def test_arrow_on_star_falls_back_to_bfs_tree(self, capsys):
        assert main(["arrow", "--graph", "star", "--n", "8"]) == 0

    @pytest.mark.parametrize(
        "algo", ["combining", "central", "flood", "cnet", "periodic"]
    )
    def test_count_algorithms(self, algo, capsys):
        assert main(["count", "--graph", "complete", "--n", "8",
                     "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "total delay" in out

    def test_unknown_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["arrow", "--graph", "petersen"])


class TestStats:
    def test_arrow_stats(self, capsys):
        assert main(["arrow", "--graph", "path", "--n", "8", "--stats"]) == 0
        out = capsys.readouterr().out
        for needle in ("rounds", "sent", "delivered", "link wait"):
            assert needle in out

    def test_count_stats_and_metrics_json(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert main(["count", "--algorithm", "flood", "--n", "8",
                     "--stats", "--metrics-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dropped" in out and str(path) in out
        doc = json.loads(path.read_text())
        assert doc["counters"]["engine.messages_sent"] > 0
        assert doc["histograms"]["op.delay"]["count"] == 8

    def test_run_stats_and_metrics_json(self, tmp_path, capsys):
        path = tmp_path / "suite.json"
        assert main(["run", "E1", "--stats", "--metrics-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stats: rows=" in out
        doc = json.loads(path.read_text())
        assert doc["experiments_run"] == 1
        assert doc["experiments"][0]["experiment"] == "E1"


class TestTrace:
    def test_trace_arrow_writes_valid_chrome_json(self, tmp_path, capsys):
        out_path = tmp_path / "t.perfetto.json"
        assert main(["trace", "arrow", "--graph", "path", "--n", "8",
                     "-o", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "perfetto" in printed
        doc = json.loads(out_path.read_text())
        for e in doc["traceEvents"]:
            assert "ph" in e and "pid" in e
            if e["ph"] != "M":
                assert "ts" in e
        jsonl = tmp_path / "t.jsonl"
        assert jsonl.exists()
        for line in jsonl.read_text().splitlines():
            json.loads(line)

    def test_trace_with_metrics_json(self, tmp_path):
        out_path = tmp_path / "f.json"
        metrics = tmp_path / "fm.json"
        assert main(["trace", "flood", "--n", "8", "-o", str(out_path),
                     "--metrics-json", str(metrics)]) == 0
        assert json.loads(metrics.read_text())["counters"]["engine.messages_sent"] > 0

    def test_trace_with_faults_renders_drops(self, tmp_path):
        out_path = tmp_path / "c.perfetto.json"
        assert main(["trace", "central", "--graph", "star", "--n", "8",
                     "-o", str(out_path),
                     "--faults", "drop=0.2,seed=5,runs=2"]) == 0
        doc = json.loads(out_path.read_text())
        assert any(e["name"].startswith("drop ") for e in doc["traceEvents"])

    def test_trace_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            main(["trace", "paxos"])


class TestProfile:
    def test_profile_prints_phase_table(self, capsys):
        assert main(["profile", "flood", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "rounds executed" in out
        assert "receive" in out

    def test_profile_json(self, tmp_path):
        path = tmp_path / "p.json"
        assert main(["profile", "arrow", "--n", "8", "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["rounds"] >= 1
        assert {r["phase"] for r in doc["phases"]} >= {"send"}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["run", "E1", "--scale", "bench"])
        assert args.scale == "bench"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "huge"])
