"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 21):
            assert f"E{i} " in out or f"E{i}\t" in out or f"E{i}  " in out


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "E3"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out and "[PASS]" in out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e1"]) == 0

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])


class TestProtocols:
    def test_arrow_on_mesh(self, capsys):
        assert main(["arrow", "--graph", "mesh", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "total delay" in out

    def test_arrow_on_star_falls_back_to_bfs_tree(self, capsys):
        assert main(["arrow", "--graph", "star", "--n", "8"]) == 0

    @pytest.mark.parametrize(
        "algo", ["combining", "central", "flood", "cnet", "periodic"]
    )
    def test_count_algorithms(self, algo, capsys):
        assert main(["count", "--graph", "complete", "--n", "8",
                     "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "total delay" in out

    def test_unknown_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["arrow", "--graph", "petersen"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        args = build_parser().parse_args(["run", "E1", "--scale", "bench"])
        assert args.scale == "bench"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--scale", "huge"])
