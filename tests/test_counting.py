"""Counting algorithms: correctness, delays, contention shapes."""

from __future__ import annotations

import random

import pytest

from helpers import random_tree, tree_as_graph
from repro.bounds import theorem35_lower_bound, theorem36_lower_bound
from repro.core.verify import VerificationError
from repro.counting import (
    run_central_counting,
    run_central_queuing,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
)
from repro.topology import (
    complete_graph,
    diameter,
    hypercube_graph,
    mesh_graph,
    path_graph,
    star_graph,
)
from repro.topology.spanning import (
    SpanningTree,
    bfs_spanning_tree,
    embedded_binary_tree,
    path_spanning_tree,
)


class TestCentral:
    def test_root_request_is_free(self):
        r = run_central_counting(path_graph(4), [0], root=0)
        assert r.counts == {0: 1} and r.delays[0] == 0

    def test_counts_follow_arrival_order_on_star(self):
        n = 6
        r = run_central_counting(star_graph(n), range(1, n), root=0)
        # leaves' requests arrive in id order (deterministic arbitration)
        assert r.counts == {v: v for v in range(1, n)}

    def test_round_trip_delay_on_path(self):
        n = 8
        r = run_central_counting(path_graph(n), [n - 1], root=0)
        # single request: n-1 hops there, n-1 back
        assert r.delays[n - 1] == 2 * (n - 1)

    def test_star_total_is_quadratic(self):
        totals = {}
        for n in (8, 16, 32):
            totals[n] = run_central_counting(star_graph(n), range(n)).total_delay
        assert totals[16] / totals[8] > 3.0
        assert totals[32] / totals[16] > 3.0

    def test_dominates_diameter_lower_bound(self):
        for n in (9, 17, 33):
            g = path_graph(n)
            r = run_central_counting(g, range(n), root=0)
            assert r.total_delay >= theorem36_lower_bound(n - 1)

    def test_queuing_variant_forms_chain(self):
        r = run_central_queuing(star_graph(8), range(8), root=0)
        assert len(r.predecessors) == 8
        assert r.total_delay > 0

    def test_queuing_matches_counting_cost_on_star(self):
        n = 16
        rc = run_central_counting(star_graph(n), range(n))
        rq = run_central_queuing(star_graph(n), range(n))
        assert rc.total_delay == rq.total_delay

    def test_nonroot_root_choice(self):
        r = run_central_counting(mesh_graph([3, 3]), range(9), root=4)
        assert sorted(r.counts.values()) == list(range(1, 10))


class TestCombining:
    def test_binary_tree_counts_valid(self):
        st = embedded_binary_tree(complete_graph(15))
        r = run_combining_counting(st, range(15))
        assert sorted(r.counts.values()) == list(range(1, 16))

    def test_root_gets_first_rank_in_its_interval(self):
        st = embedded_binary_tree(complete_graph(7))
        r = run_combining_counting(st, range(7))
        assert r.counts[0] == 1  # root takes base+1 of [1..7]

    def test_subset_requests(self):
        st = bfs_spanning_tree(mesh_graph([4, 4]))
        r = run_combining_counting(st, [3, 7, 11])
        assert sorted(r.counts.values()) == [1, 2, 3]

    def test_delay_scales_with_tree_height(self):
        shallow = run_combining_counting(
            embedded_binary_tree(complete_graph(31)), range(31)
        )
        deep = run_combining_counting(path_spanning_tree(path_graph(31)), range(31))
        assert shallow.total_delay < deep.total_delay

    def test_path_tree_total_quadratic(self):
        totals = {}
        for n in (16, 32, 64):
            st = path_spanning_tree(path_graph(n))
            totals[n] = run_combining_counting(st, range(n)).total_delay
        assert totals[32] / totals[16] > 3.0
        assert totals[64] / totals[32] > 3.0

    def test_capacity_speedup(self):
        st = bfs_spanning_tree(star_graph(16))
        strict = run_combining_counting(st, range(16), capacity=1)
        relaxed = run_combining_counting(st, range(16), capacity=4)
        assert relaxed.total_delay <= strict.total_delay

    def test_random_trees_always_valid(self):
        rng = random.Random(21)
        for trial in range(25):
            n = rng.randint(2, 40)
            t = random_tree(n, seed=trial)
            st = SpanningTree(tree_as_graph(t), t, label="rand")
            req = rng.sample(range(n), rng.randint(1, n))
            r = run_combining_counting(st, req)
            assert sorted(r.counts.values()) == list(range(1, len(set(req)) + 1))


class TestFlood:
    def test_node_zero_completes_immediately(self):
        r = run_flood_counting(complete_graph(8), range(8))
        assert r.delays[0] == 0 and r.counts[0] == 1

    def test_rank_by_id(self):
        r = run_flood_counting(complete_graph(8), [1, 4, 6])
        assert r.counts == {1: 1, 4: 2, 6: 3}

    def test_high_ids_wait_longer_on_average(self):
        n = 32
        r = run_flood_counting(complete_graph(n), range(n))
        low = sum(r.delays[v] for v in range(4))
        high = sum(r.delays[v] for v in range(n - 4, n))
        assert high > low

    def test_works_on_sparse_graphs(self):
        for g in (path_graph(12), mesh_graph([3, 4]), hypercube_graph(3)):
            r = run_flood_counting(g, range(g.n))
            assert sorted(r.counts.values()) == list(range(1, g.n + 1))

    def test_single_requester(self):
        r = run_flood_counting(path_graph(6), [5])
        assert r.counts == {5: 1}
        # node 5 must still learn the bits of nodes 0..4
        assert r.delays[5] >= 5

    def test_dominates_general_lower_bound(self):
        for n in (8, 16, 32):
            r = run_flood_counting(complete_graph(n), range(n))
            assert r.total_delay >= theorem35_lower_bound(n)


class TestCountingNetwork:
    def test_counts_valid_full_load(self):
        r = run_counting_network(complete_graph(16), range(16))
        assert sorted(r.counts.values()) == list(range(1, 17))

    def test_counts_valid_subsets(self):
        rng = random.Random(31)
        for trial in range(10):
            n = rng.randint(4, 24)
            g = complete_graph(n)
            req = rng.sample(range(n), rng.randint(1, n))
            r = run_counting_network(g, req)
            assert sorted(r.counts.values()) == list(range(1, len(set(req)) + 1))

    def test_width_override(self):
        r = run_counting_network(complete_graph(12), range(12), width=4)
        assert sorted(r.counts.values()) == list(range(1, 13))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            run_counting_network(complete_graph(8), range(8), width=6)

    def test_on_sparse_graph(self):
        g = mesh_graph([3, 3])
        r = run_counting_network(g, range(9), width=8)
        assert sorted(r.counts.values()) == list(range(1, 10))

    def test_deeper_network_costs_more(self):
        g = complete_graph(16)
        narrow = run_counting_network(g, range(16), width=2)
        wide = run_counting_network(g, range(16), width=16)
        # width 2: tokens all share one balancer (contention); width 16
        # spreads them across a deeper network.
        assert narrow.total_delay != wide.total_delay  # both valid, different shape


class TestVerificationHooks:
    def test_all_algorithms_verified_internally(self):
        """The runners call verify_counting; a broken monkeypatched engine
        would raise VerificationError rather than return bad counts."""
        g = complete_graph(6)
        for run in (
            lambda: run_central_counting(g, range(6)),
            lambda: run_flood_counting(g, range(6)),
            lambda: run_counting_network(g, range(6)),
            lambda: run_combining_counting(embedded_binary_tree(g), range(6)),
        ):
            r = run()
            assert sorted(r.counts.values()) == [1, 2, 3, 4, 5, 6]

    def test_verify_error_type_importable(self):
        assert issubclass(VerificationError, AssertionError)
