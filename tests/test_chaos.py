"""The chaos-search harness: cells, sweeps, shrinking, replay artifacts.

Determinism is the backbone of every assertion here: the same (cell,
plan) must always fail the same way at the same round, because that is
what makes a saved reproducer worth saving.  Permanent-crash plans give
the harness a guaranteed deterministic failure to shrink and replay;
eventually-delivering sweeps must come back clean (the CI contract).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults import FaultPlan, LinkOutage, NodeCrash
from repro.resilience import (
    ChaosCell,
    chaos_search,
    load_artifact,
    replay_artifact,
    run_cell,
    save_artifact,
    shrink_plan,
)
from repro.resilience.chaos import random_plan

MAX_ROUNDS = 5_000

#: A plan whose permanent crash deterministically kills the flood ring.
KILLER = FaultPlan(seed=7, crashes=(NodeCrash(node=2, start=1, end=None),))
KILLER_CELL = ChaosCell("flood_ft", "ring", 5)


class TestChaosCell:
    def test_parse_roundtrip(self):
        cell = ChaosCell.parse("flood_ft:ring:8")
        assert (cell.protocol, cell.topology, cell.n) == ("flood_ft", "ring", 8)
        assert cell.key() == "flood_ft:ring:8"

    @pytest.mark.parametrize(
        "spec",
        ["nope:ring:8", "flood_ft:klein_bottle:8", "flood_ft:ring:1",
         "flood_ft:ring", "flood_ft:ring:x"],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            ChaosCell.parse(spec)

    def test_graph_matches_n(self):
        assert ChaosCell.parse("central_ft:star:9").graph().n == 9


class TestRunCell:
    def test_clean_plan_is_ok(self):
        out = run_cell(
            ChaosCell("central_ft", "star", 6),
            FaultPlan(seed=1, drop_rate=0.1),
            max_rounds=MAX_ROUNDS,
        )
        assert out == {"status": "ok"}

    def test_permanent_crash_fails_deterministically(self):
        a = run_cell(KILLER_CELL, KILLER, max_rounds=MAX_ROUNDS)
        b = run_cell(KILLER_CELL, KILLER, max_rounds=MAX_ROUNDS)
        assert a["status"] == "fail"
        assert (a["kind"], a["round"]) == (b["kind"], b["round"])

    def test_arrow_cell_runs(self):
        out = run_cell(
            ChaosCell("arrow_ft", "path", 6),
            FaultPlan(seed=3, drop_rate=0.1),
            max_rounds=MAX_ROUNDS,
        )
        assert out == {"status": "ok"}


class TestRandomPlan:
    def test_default_plans_eventually_deliver(self):
        import random

        for seed in range(30):
            rng = random.Random(f"test:{seed}")
            plan = random_plan(rng, ChaosCell("flood_ft", "ring", 8))
            assert plan.eventually_delivers()
            assert not plan.is_empty()

    def test_seeded_rng_reproduces_plan(self):
        import random

        cell = ChaosCell("flood_ft", "ring", 8)
        p1 = random_plan(random.Random("x"), cell)
        p2 = random_plan(random.Random("x"), cell)
        assert p1 == p2

    def test_allow_permanent_can_draw_permanent(self):
        import random

        cell = ChaosCell("flood_ft", "ring", 8)
        found = any(
            not random_plan(
                random.Random(f"p:{s}"), cell, allow_permanent=True
            ).eventually_delivers()
            for s in range(40)
        )
        assert found


class TestShrink:
    def test_shrink_keeps_failure_kind(self):
        failure = run_cell(KILLER_CELL, KILLER, max_rounds=MAX_ROUNDS)
        noisy = FaultPlan(
            seed=KILLER.seed,
            drop_rate=0.2,
            duplicate_rate=0.1,
            crashes=KILLER.crashes + (NodeCrash(node=4, start=3, end=9),),
            outages=(LinkOutage(u=0, v=1, start=2, end=8),),
        )
        out = run_cell(KILLER_CELL, noisy, max_rounds=MAX_ROUNDS)
        assert out["status"] == "fail"
        shrunk = shrink_plan(KILLER_CELL, noisy, out["kind"],
                             max_rounds=MAX_ROUNDS)
        # the irrelevant noise is gone, the killer crash survives
        assert shrunk.drop_rate == 0.0
        assert shrunk.duplicate_rate == 0.0
        assert shrunk.outages == ()
        assert len(shrunk.crashes) == 1
        assert shrunk.crashes[0].end is None
        final = run_cell(KILLER_CELL, shrunk, max_rounds=MAX_ROUNDS)
        assert final["status"] == "fail" and final["kind"] == out["kind"]
        assert failure["kind"] == out["kind"]

    def test_shrink_is_idempotent(self):
        out = run_cell(KILLER_CELL, KILLER, max_rounds=MAX_ROUNDS)
        once = shrink_plan(KILLER_CELL, KILLER, out["kind"], max_rounds=MAX_ROUNDS)
        twice = shrink_plan(KILLER_CELL, once, out["kind"], max_rounds=MAX_ROUNDS)
        assert once == twice


class TestArtifacts:
    def test_save_load_replay_roundtrip(self, tmp_path):
        failure = run_cell(KILLER_CELL, KILLER, max_rounds=MAX_ROUNDS)
        path = tmp_path / "repro.json"
        save_artifact(str(path), KILLER_CELL, KILLER, failure)
        cell, plan, recorded = load_artifact(str(path))
        assert cell == KILLER_CELL
        assert plan == KILLER
        reproduced, observed = replay_artifact(cell, plan, recorded,
                                               max_rounds=MAX_ROUNDS)
        assert reproduced
        assert observed["round"] == failure["round"]

    def test_artifact_is_plain_json(self, tmp_path):
        failure = run_cell(KILLER_CELL, KILLER, max_rounds=MAX_ROUNDS)
        path = tmp_path / "repro.json"
        save_artifact(str(path), KILLER_CELL, KILLER, failure)
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.chaos/1"
        assert doc["cell"]["protocol"] == "flood_ft"
        assert doc["plan"]["crashes"][0]["end"] is None

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/9", "cell": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_artifact(str(path))

    def test_replay_detects_mismatch(self):
        failure = dict(run_cell(KILLER_CELL, KILLER, max_rounds=MAX_ROUNDS))
        failure["round"] = (failure["round"] or 0) + 1  # forged round
        reproduced, _ = replay_artifact(KILLER_CELL, KILLER, failure,
                                        max_rounds=MAX_ROUNDS)
        assert not reproduced


class TestChaosSearch:
    CELLS = [
        ChaosCell("flood_ft", "ring", 6),
        ChaosCell("central_ft", "star", 6),
        ChaosCell("arrow_ft", "path", 6),
    ]

    def test_eventually_delivering_sweep_is_clean(self):
        report = chaos_search(self.CELLS, range(2), max_rounds=20_000)
        assert report.runs == 6
        assert report.clean

    def test_sweep_is_reproducible(self):
        a = chaos_search(self.CELLS[:1], range(2), max_rounds=20_000)
        b = chaos_search(self.CELLS[:1], range(2), max_rounds=20_000)
        assert a.runs == b.runs and a.clean == b.clean

    def test_permanent_sweep_shrinks_findings(self):
        # allow_permanent makes failures possible; scan seeds until one hits
        cells = [ChaosCell("flood_ft", "ring", 5)]
        report = chaos_search(cells, range(12), allow_permanent=True,
                              max_rounds=MAX_ROUNDS)
        assert report.findings, "no permanent crash drawn in 12 seeds"
        f = report.findings[0]
        assert f.shrunk_plan is not None
        assert f.final_failure["status"] == "fail"
        # the shrunk plan must still reproduce its recorded failure
        reproduced, _ = replay_artifact(f.cell, f.final_plan, f.final_failure,
                                        max_rounds=MAX_ROUNDS)
        assert reproduced


class TestChaosCli:
    def test_ci_sweep_clean(self, capsys):
        rc = main(["chaos", "--cells", "central_ft:star:6", "--seeds", "2",
                   "--ci"])
        assert rc == 0
        assert "0 failing plan(s)" in capsys.readouterr().out

    def test_artifacts_written_and_replayable(self, tmp_path, capsys):
        # permanent crashes guarantee at least one finding across seeds
        rc = main(["chaos", "--cells", "flood_ft:ring:5", "--seeds", "12",
                   "--allow-permanent", "--max-rounds", "5000",
                   "--out", str(tmp_path)])
        assert rc == 0
        arts = sorted(tmp_path.glob("chaos-*.json"))
        assert arts, "no artifacts written"
        capsys.readouterr()
        rc = main(["chaos", "--replay", str(arts[0]),
                   "--max-rounds", "5000"])
        assert rc == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_replay_missing_artifact_errors(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--replay", "/nonexistent/x.json"])

    def test_bad_cell_spec_errors(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--cells", "bogus:ring:6", "--seeds", "1"])
