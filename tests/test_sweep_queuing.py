"""Sweep-token queuing: the naive-queuing contrast for E14."""

from __future__ import annotations

import random

import pytest

from repro.arrow import run_arrow
from repro.core.comparison import growth_exponent
from repro.core.verify import verify_queuing
from repro.counting import run_sweep_queuing
from repro.sim import Node, run_protocol
from repro.topology import complete_graph, mesh_graph, path_graph
from repro.topology.spanning import path_spanning_tree


class TestSweepQueuing:
    def test_chain_follows_path_order(self):
        r = run_sweep_queuing(path_graph(5), range(5))
        chain = verify_queuing(range(5), r.predecessors, tail=0)
        assert [op[1] for op in chain] == [0, 1, 2, 3, 4]

    def test_subset(self):
        r = run_sweep_queuing(path_graph(8), [2, 5])
        assert r.predecessors[("op", 2)] == ("init", 0)
        assert r.predecessors[("op", 5)] == ("op", 2)

    def test_quadratic_total(self):
        ns = [8, 16, 32]
        totals = [
            run_sweep_queuing(complete_graph(n), range(n)).total_delay for n in ns
        ]
        assert growth_exponent(ns, totals) > 1.7

    def test_arrow_beats_it_on_same_tree(self):
        n = 32
        g = complete_graph(n)
        naive = run_sweep_queuing(g, range(n))
        arrow = run_arrow(path_spanning_tree(g), range(n))
        assert arrow.total_delay < naive.total_delay / 4

    def test_on_mesh(self):
        g = mesh_graph([3, 4])
        r = run_sweep_queuing(g, range(12))
        assert len(verify_queuing(range(12), r.predecessors, tail=0)) == 12

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            run_sweep_queuing(path_graph(4), [1], order=[0, 2, 1, 3])

    def test_random_subsets(self):
        rng = random.Random(3)
        for _ in range(12):
            n = rng.randint(2, 24)
            g = complete_graph(n)
            req = rng.sample(range(n), rng.randint(1, n))
            r = run_sweep_queuing(g, req)
            verify_queuing(req, r.predecessors, tail=0)


class TestRunProtocolHelper:
    def test_run_protocol_returns_finished_network(self):
        class Ping(Node):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(1, "ping")

            def on_receive(self, msg, ctx):
                ctx.complete("pong")

        net = run_protocol(path_graph(2), {0: Ping(0), 1: Ping(1)})
        assert net.stats.rounds == 1
        assert net.delays.delay_by_op() == {"pong": 1}
