"""Property-based tests over the extension subsystems.

Hypothesis-driven invariants for the modules added beyond the paper's
core: the directory, fetch-and-add, sweep algorithms, and the delay
models — mirroring the property coverage the core protocols get in
``test_property_hypothesis.py``.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adding import run_combining_addition
from repro.counting import run_sweep_counting, run_sweep_queuing
from repro.core.verify import verify_counting, verify_queuing
from repro.directory import run_object_directory
from repro.sim import UniformDelay
from repro.topology import complete_graph
from repro.topology.base import Graph
from repro.topology.spanning import SpanningTree
from repro.tree import random_tree


@st.composite
def tree_instance(draw, max_n=24):
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(0, 10**6))
    tree = random_tree(n, seed=seed, max_children=3)
    g = Graph.from_edges(n, tree.edges(), name="ext-tree")
    k = draw(st.integers(min_value=1, max_value=n))
    rng = random.Random(seed)
    req = sorted(rng.sample(range(n), k))
    return SpanningTree(g, tree, label="ext"), req, seed


class TestDirectoryProperties:
    @given(data=tree_instance())
    @settings(max_examples=40, deadline=None)
    def test_every_requester_acquires_exclusively(self, data):
        st_, req, seed = data
        g = st_.graph
        home = seed % g.n
        use = seed % 3
        out = run_object_directory(g, st_, req, use_rounds=use, home=home)
        assert sorted(out.order) == req
        assert out.exclusive_holding()

    @given(data=tree_instance(max_n=16))
    @settings(max_examples=20, deadline=None)
    def test_directory_under_delays(self, data):
        st_, req, seed = data
        out = run_object_directory(
            st_.graph, st_, req, delay_model=UniformDelay(1, 3, seed=seed)
        )
        assert sorted(out.order) == req


class TestAdditionProperties:
    @given(
        data=tree_instance(),
        deltas=st.lists(st.integers(-20, 20), min_size=24, max_size=24),
    )
    @settings(max_examples=40, deadline=None)
    def test_prefix_sum_consistency(self, data, deltas):
        st_, req, _seed = data
        incs = {v: deltas[i % len(deltas)] for i, v in enumerate(req)}
        r = run_combining_addition(st_, incs)
        r.verify()
        last = r.order[-1]
        assert r.prior_sums[last] + incs[last] == sum(incs.values())

    @given(data=tree_instance(max_n=20))
    @settings(max_examples=25, deadline=None)
    def test_delay_obliviousness(self, data):
        st_, req, seed = data
        rng = random.Random(seed)
        a = run_combining_addition(st_, {v: 1 for v in req})
        b = run_combining_addition(st_, {v: rng.randint(-9, 9) for v in req})
        assert a.delays == b.delays


class TestSweepProperties:
    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_sweep_counting_rank_equals_path_position(self, n, seed):
        rng = random.Random(seed)
        g = complete_graph(n)
        req = sorted(rng.sample(range(n), rng.randint(1, n)))
        r = run_sweep_counting(g, req)
        verify_counting(req, r.counts)
        # ranks follow id order (the sweep order on K_n is 0..n-1)
        assert [v for v, _ in sorted(r.counts.items())] == req
        assert [r.counts[v] for v in req] == list(range(1, len(req) + 1))

    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_sweep_queuing_chain_valid(self, n, seed):
        rng = random.Random(seed)
        g = complete_graph(n)
        req = sorted(rng.sample(range(n), rng.randint(1, n)))
        r = run_sweep_queuing(g, req)
        chain = verify_queuing(req, r.predecessors, tail=0)
        assert [op[1] for op in chain] == req

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(0, 10**6),
        hi=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_sweep_correct_under_delays(self, n, seed, hi):
        rng = random.Random(seed)
        g = complete_graph(n)
        req = sorted(rng.sample(range(n), rng.randint(1, n)))
        r = run_sweep_counting(g, req, delay_model=UniformDelay(1, hi, seed=seed))
        verify_counting(req, r.counts)


class TestRandomTreeProperties:
    @given(
        n=st.integers(min_value=1, max_value=100),
        seed=st.integers(0, 10**6),
        cap=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    )
    @settings(max_examples=60)
    def test_random_tree_valid_and_capped(self, n, seed, cap):
        t = random_tree(n, seed=seed, max_children=cap)
        assert t.n == n
        if cap is not None:
            assert all(len(t.children[v]) <= cap for v in range(n))
        # deterministic
        t2 = random_tree(n, seed=seed, max_children=cap)
        assert t.parent == t2.parent
