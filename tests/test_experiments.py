"""The experiment suite: every theorem-experiment passes at test scale."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    render_experiment,
    render_table,
    run_e2_thm35_general_lower_bound,
    run_e4_thm36_diameter_lower_bound,
    run_e5_thm41_arrow_vs_tsp,
    run_e12_star_counterexample,
)
from repro.experiments.harness import Check, ExperimentResult


class TestHarness:
    def test_check_str(self):
        assert str(Check("x", True)).startswith("[PASS]")
        assert "why" in str(Check("x", False, detail="why"))

    def test_result_passed(self):
        r = ExperimentResult("E0", "t", "ref")
        r.check("a", True)
        assert r.passed and not r.failed_checks()
        r.check("b", False, "oops")
        assert not r.passed and len(r.failed_checks()) == 1

    def test_require_raises_with_details(self):
        r = ExperimentResult("E0", "t", "ref")
        r.check("bad", False, "numbers")
        with pytest.raises(AssertionError, match="numbers"):
            r.require()

    def test_require_passes_through(self):
        r = ExperimentResult("E0", "t", "ref")
        r.check("ok", True)
        assert r.require() is r


class TestReport:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_render_table_empty(self):
        assert render_table([]) == "(no rows)"

    def test_render_table_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_experiment_includes_checks(self):
        r = ExperimentResult("E0", "title", "Thm 0")
        r.rows.append({"n": 1})
        r.check("crit", True, "d")
        out = render_experiment(r)
        assert "E0" in out and "[PASS] crit" in out and "Thm 0" in out


# Small-scale parameterisations so the whole suite stays fast in CI.
SMALL = {
    "E2": lambda: run_e2_thm35_general_lower_bound(sizes=(8, 16, 32)),
    "E4": lambda: run_e4_thm36_diameter_lower_bound(
        list_sizes=(16, 32, 64), mesh_sides=(3, 4, 5)
    ),
    "E5": lambda: run_e5_thm41_arrow_vs_tsp(sizes=(8, 16, 32), seeds=(0, 1, 2)),
    "E12": lambda: run_e12_star_counterexample(sizes=(8, 16, 32)),
}


@pytest.mark.parametrize("exp_id", sorted(ALL_EXPERIMENTS))
def test_experiment_passes(exp_id):
    runner = SMALL.get(exp_id, ALL_EXPERIMENTS[exp_id])
    result = runner()
    result.require()
    assert result.rows, f"{exp_id} produced no table rows"
    assert result.exp_id == exp_id


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 23)}
