"""Dense fast path vs generic fallback: execution equivalence.

The engine's dense fast path (flat arrays, maintained active sets, the
next-event heap — see ``docs/PERFORMANCE.md``) must be *event-for-event*
identical to the generic dict-keyed path: same trace events in the same
order, same stats, same protocol outputs.  These tests run every golden
protocol — and the delay-model / fault / wakeup variants the goldens do
not cover — under both paths and diff the full executions.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Callable

import pytest

from repro import (
    bfs_spanning_tree,
    complete_graph,
    mesh_graph,
    path_graph,
    path_spanning_tree,
    run_arrow,
    run_central_counting,
    run_central_queuing,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
    run_periodic_counting,
    star_graph,
)
from repro.counting import run_sweep_counting
from repro.sim import EventTrace, SynchronousNetwork, UniformDelay, engine_fast_path


def _run(case: Callable[[EventTrace], Any]) -> tuple[list, dict, Any]:
    """Execute one traced case and return (events, stats, output)."""
    tr = EventTrace()
    result = case(tr)
    events = [(e.kind, e.round, e.data) for e in tr.events]
    return events, asdict(result.stats), result


CASES: dict[str, Callable[[EventTrace], Any]] = {
    "arrow": lambda tr: run_arrow(
        path_spanning_tree(path_graph(8)), range(8), trace=tr
    ),
    "central_counting": lambda tr: run_central_counting(
        star_graph(6), range(6), trace=tr
    ),
    "central_queuing": lambda tr: run_central_queuing(
        star_graph(6), range(6), trace=tr
    ),
    "combining": lambda tr: run_combining_counting(
        bfs_spanning_tree(complete_graph(8)), range(8), trace=tr
    ),
    "flood": lambda tr: run_flood_counting(mesh_graph([3, 3]), range(9), trace=tr),
    "cnet": lambda tr: run_counting_network(complete_graph(6), range(6), trace=tr),
    "periodic": lambda tr: run_periodic_counting(
        complete_graph(8), range(8), trace=tr
    ),
    "sweep": lambda tr: run_sweep_counting(path_graph(8), range(8), trace=tr),
}


def _output_fingerprint(result: Any) -> Any:
    """The protocol-level output, normalised for comparison."""
    if hasattr(result, "counts"):
        return sorted(result.counts.items())
    if hasattr(result, "order"):
        return (result.order(), result.total_delay)
    return None


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_protocols_equivalent(name: str) -> None:
    with engine_fast_path(True):
        fast_events, fast_stats, fast_res = _run(CASES[name])
    with engine_fast_path(False):
        slow_events, slow_stats, slow_res = _run(CASES[name])
    assert fast_events == slow_events, f"{name}: event traces diverged"
    assert fast_stats == slow_stats, f"{name}: RunStats diverged"
    assert _output_fingerprint(fast_res) == _output_fingerprint(slow_res)


@pytest.mark.parametrize("name", sorted(CASES))
def test_fast_path_actually_engaged(name: str) -> None:
    """Guard against the equivalence suite silently comparing the generic
    path to itself: all golden topologies have contiguous ids, so the
    fast path must be selected under the default."""
    g = path_graph(4)
    from repro.sim import Node

    with engine_fast_path(True):
        net = SynchronousNetwork(g, {v: Node(v) for v in range(4)})
    assert net.uses_fast_path
    with engine_fast_path(False):
        net = SynchronousNetwork(g, {v: Node(v) for v in range(4)})
    assert not net.uses_fast_path


def test_non_contiguous_ids_fall_back() -> None:
    """Gapped vertex ids must be served by the generic path."""
    from repro.sim import Node

    adj = {0: [2], 2: [0, 5], 5: [2]}
    with engine_fast_path(True):
        net = SynchronousNetwork(adj, {v: Node(v) for v in adj})
    assert not net.uses_fast_path
    net.run()


def test_explicit_fast_path_kwarg_overrides_default() -> None:
    from repro.sim import Node

    g = path_graph(3)
    with engine_fast_path(True):
        net = SynchronousNetwork(g, {v: Node(v) for v in range(3)}, fast_path=False)
    assert not net.uses_fast_path


def _non_unit_delay_case(tr: EventTrace) -> Any:
    """Random (seeded) link delays exercise ready-heap ordering and the
    idle-round jumps that the unit-delay invariant skips entirely."""
    return run_flood_counting(
        path_graph(6), range(6), delay_model=UniformDelay(1, 5, seed=11), trace=tr
    )


def _targeted_delay_case(tr: EventTrace) -> Any:
    from repro.sim import TargetedDelay

    return run_central_counting(
        star_graph(6), range(6),
        delay_model=TargetedDelay(slow_links=frozenset({(1, 0)}), slow=7),
        trace=tr,
    )


def _fault_case(tr: EventTrace) -> Any:
    """Drops, duplicates, and a crash window must follow the same RNG-draw
    and injection order on both paths."""
    from repro.faults import FaultPlan, NodeCrash, run_flood_counting_ft

    # Any eventually-delivering plan completes now that the reliable
    # wrapper coalesces crash-deferred wakeups and pauses its retry
    # budget across scheduled windows; this one crashes the path's
    # middle node so every cross-crash exchange exercises both fixes.
    plan = FaultPlan(
        seed=0,
        drop_rate=0.2,
        duplicate_rate=0.1,
        max_consecutive_drops=2,
        crashes=(NodeCrash(node=2, start=3, end=7),),
    )
    return run_flood_counting_ft(path_graph(5), range(5), plan, trace=tr)


class _StaggeredPinger:
    """Builds a network whose nodes wake at staggered far-apart rounds and
    ping a neighbor, driving the next-event heap on an idle network."""

    def __call__(self, tr: EventTrace) -> Any:
        from repro.sim import Node

        class Pinger(Node):
            def on_start(self, ctx):
                ctx.schedule_wakeup(100 * (self.node_id + 1))

            def on_wake(self, ctx):
                ctx.send(ctx.neighbors[0], "ping")

        g = path_graph(6)
        net = SynchronousNetwork(g, {v: Pinger(v) for v in range(6)}, trace=tr)
        net.run()

        class Result:
            stats = net.stats

        return Result()


def _wakeup_jump_case(tr: EventTrace) -> Any:
    return _StaggeredPinger()(tr)


EXTRA_CASES = {
    "uniform_delay": _non_unit_delay_case,
    "targeted_delay": _targeted_delay_case,
    "faults": _fault_case,
    "wakeup_jumps": _wakeup_jump_case,
}


@pytest.mark.parametrize("name", sorted(EXTRA_CASES))
def test_extra_regimes_equivalent(name: str) -> None:
    with engine_fast_path(True):
        fast_events, fast_stats, _ = _run(EXTRA_CASES[name])
    with engine_fast_path(False):
        slow_events, slow_stats, _ = _run(EXTRA_CASES[name])
    assert fast_events == slow_events, f"{name}: event traces diverged"
    assert fast_stats == slow_stats, f"{name}: RunStats diverged"
