"""The perf layer: bench matrix, regression compare, parallel executor."""

from __future__ import annotations

import json

import pytest

from repro.perf import BenchCell, compare_benchmarks, render_bench, run_bench


def _tiny_cells() -> tuple[BenchCell, ...]:
    """A miniature matrix so tests run in milliseconds."""
    from repro import path_graph, run_flood_counting, run_central_counting, star_graph

    return (
        BenchCell(
            "flood/path/16", "flood", "path", 16,
            lambda: run_flood_counting(path_graph(16), range(16)).stats,
        ),
        BenchCell(
            "central/star/16", "central", "star", 16,
            lambda: run_central_counting(star_graph(16), range(16)).stats,
        ),
    )


class TestRunBench:
    def test_document_structure(self):
        doc = run_bench(cells=_tiny_cells())
        assert doc["schema"] == 1
        assert doc["calibration_ops_per_sec"] > 0
        assert [c["name"] for c in doc["cells"]] == ["flood/path/16", "central/star/16"]
        for cell in doc["cells"]:
            assert cell["messages"] > 0 and cell["rounds"] > 0
            assert cell["messages_per_sec"] > 0
            # fallback timings are on by default
            assert cell["fallback_messages_per_sec"] > 0
            assert cell["fast_path_speedup"] > 0

    def test_no_fallback_omits_fields(self):
        doc = run_bench(cells=_tiny_cells(), fallback=False)
        for cell in doc["cells"]:
            assert "fallback_seconds" not in cell
            assert "fast_path_speedup" not in cell

    def test_names_filter_and_order(self):
        doc = run_bench(cells=_tiny_cells(), names=["central/star/16"], fallback=False)
        assert [c["name"] for c in doc["cells"]] == ["central/star/16"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_bench(cells=_tiny_cells(), names=["nope/zilch/0"])

    def test_document_is_json_safe(self):
        doc = run_bench(cells=_tiny_cells(), fallback=False)
        json.dumps(doc)

    def test_render_lists_every_cell(self):
        doc = run_bench(cells=_tiny_cells())
        text = render_bench(doc)
        assert "flood/path/16" in text and "central/star/16" in text

    def test_default_matrix_contains_acceptance_cell(self):
        from repro.perf import BENCH_CELLS

        assert "flood/path/512" in {c.name for c in BENCH_CELLS}


def _doc(cells: dict[str, float], calibration: float | None = None) -> dict:
    doc = {
        "schema": 1,
        "cells": [{"name": n, "messages_per_sec": v} for n, v in cells.items()],
    }
    if calibration is not None:
        doc["calibration_ops_per_sec"] = calibration
    return doc


class TestCompare:
    def test_identical_documents_pass(self):
        doc = _doc({"a": 100.0, "b": 200.0}, calibration=1000.0)
        assert compare_benchmarks(doc, doc) == []

    def test_single_cell_regression_detected(self):
        base = _doc({"a": 100.0, "b": 100.0, "c": 100.0}, calibration=1000.0)
        cur = _doc({"a": 100.0, "b": 100.0, "c": 60.0}, calibration=1000.0)
        failures = compare_benchmarks(cur, base)
        assert len(failures) == 1 and failures[0].startswith("c:")

    def test_uniform_regression_caught_by_calibration(self):
        """Same machine (same calibration), every cell 40% slower — the
        median normalisation alone would miss this; calibration must not."""
        base = _doc({"a": 100.0, "b": 100.0}, calibration=1000.0)
        cur = _doc({"a": 60.0, "b": 60.0}, calibration=1000.0)
        failures = compare_benchmarks(cur, base)
        assert len(failures) == 2

    def test_slower_machine_tolerated(self):
        """Half-speed machine: cells AND calibration drop together — the
        normalised ratios stay at 1.0 and the gate passes."""
        base = _doc({"a": 100.0, "b": 100.0}, calibration=1000.0)
        cur = _doc({"a": 50.0, "b": 50.0}, calibration=500.0)
        assert compare_benchmarks(cur, base) == []

    def test_median_fallback_without_calibration(self):
        base = _doc({"a": 100.0, "b": 100.0, "c": 100.0})
        cur = _doc({"a": 50.0, "b": 50.0, "c": 20.0})  # c regresses vs the pack
        failures = compare_benchmarks(cur, base)
        assert len(failures) == 1 and failures[0].startswith("c:")

    def test_no_comparable_cells_is_a_failure(self):
        base = _doc({"old": 100.0})
        cur = _doc({"new": 100.0})
        failures = compare_benchmarks(cur, base)
        assert failures and "no comparable cells" in failures[0]

    def test_threshold_respected(self):
        base = _doc({"a": 100.0, "b": 100.0, "c": 100.0}, calibration=1000.0)
        cur = _doc({"a": 100.0, "b": 100.0, "c": 80.0}, calibration=1000.0)
        assert compare_benchmarks(cur, base, threshold=0.25) == []
        assert len(compare_benchmarks(cur, base, threshold=0.1)) == 1


class TestExecutor:
    IDS = ["E1", "E3"]

    @staticmethod
    def _strip(doc: dict) -> dict:
        doc = json.loads(json.dumps(doc))
        doc.pop("total_elapsed_s", None)
        for row in doc["experiments"]:
            row.pop("elapsed_s", None)
        return doc

    def test_parallel_equals_serial(self):
        """The acceptance property: ``--jobs N`` changes wall-clock only.
        Everything except the (wall-clock) elapsed fields must be
        byte-identical between a serial and a parallel suite run."""
        from repro.experiments import run_suite, suite_metrics

        serial = run_suite(self.IDS, jobs=1)
        parallel = run_suite(self.IDS, jobs=4)
        assert self._strip(suite_metrics(serial)) == self._strip(
            suite_metrics(parallel)
        )
        # Order is submission order, independent of completion order.
        assert [r.exp_id for r, _ in parallel] == self.IDS
        # Full result payloads match, not just the summary rows.
        for (rs, _), (rp, _) in zip(serial, parallel):
            assert rs.rows == rp.rows
            assert [(c.name, c.passed) for c in rs.checks] == [
                (c.name, c.passed) for c in rp.checks
            ]

    def test_unknown_id_fails_fast(self):
        from repro.experiments import run_suite

        with pytest.raises(KeyError):
            run_suite(["E1", "E999"], jobs=4)

    def test_bench_scale_resolution(self):
        from repro.experiments import resolve_cell
        from repro.experiments.suite import ALL_EXPERIMENTS, bench_scale

        # E1 has no bench entry: same callable at either scale.
        assert resolve_cell("E1", "bench") is ALL_EXPERIMENTS["E1"]
        # E2 has one: bench resolves away from the registry default.
        assert resolve_cell("E2", "bench") is not ALL_EXPERIMENTS["E2"]
        # The bench map only parameterises known experiments.
        assert set(bench_scale()) <= set(ALL_EXPERIMENTS)


class TestCliBench:
    def test_bench_writes_json_and_passes_self_compare(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--cells", "central/star/4096", "--no-fallback",
            "--json", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["cells"][0]["name"] == "central/star/4096"
        # Comparing a run against its own output passes the gate.  A wide
        # threshold keeps this robust to timing noise on a loaded machine;
        # the gate logic itself is pinned by TestCompare with synthetic docs.
        rc = main([
            "bench", "--cells", "central/star/4096", "--no-fallback",
            "--compare", str(out), "--threshold", "0.9",
        ])
        assert rc == 0

    def test_bench_compare_fails_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        baseline = _doc({"central/star/4096": 10**9}, calibration=1.0)
        path = tmp_path / "impossible.json"
        path.write_text(json.dumps(baseline))
        rc = main([
            "bench", "--cells", "central/star/4096", "--no-fallback",
            "--compare", str(path),
        ])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_unknown_cell_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bench", "--cells", "nope/zilch/0"])

    def test_run_jobs_flag(self, capsys):
        from repro.cli import main

        assert main(["run", "E1", "--jobs", "2"]) == 0
        assert "[PASS]" in capsys.readouterr().out
