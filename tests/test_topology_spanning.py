"""Spanning-tree constructions and validation."""

from __future__ import annotations

import pytest

from repro.topology import (
    complete_graph,
    hypercube_graph,
    mesh_graph,
    path_graph,
    perfect_mary_tree,
    star_graph,
)
from repro.topology.base import Graph, TopologyError
from repro.topology.spanning import (
    SpanningTree,
    bfs_spanning_tree,
    dfs_spanning_tree,
    embedded_binary_tree,
    embedded_mary_tree,
    path_spanning_tree,
    star_spanning_tree,
    validate_spanning_tree,
)
from repro.tree import RootedTree


class TestBFS:
    def test_bfs_tree_is_shortest_path_tree(self):
        from repro.topology.properties import bfs_distances

        g = mesh_graph([4, 4])
        st = bfs_spanning_tree(g, root=0)
        dist = bfs_distances(g, 0)
        for v in range(g.n):
            assert st.tree.depth[v] == dist[v]

    def test_bfs_on_star_has_hub_degree(self):
        st = bfs_spanning_tree(star_graph(7), root=0)
        assert st.max_degree() == 6

    def test_bfs_custom_root(self):
        st = bfs_spanning_tree(path_graph(5), root=2)
        assert st.root == 2
        assert st.tree.depth[0] == 2 and st.tree.depth[4] == 2


class TestDFS:
    def test_dfs_on_complete_graph_is_deep(self):
        st = dfs_spanning_tree(complete_graph(8))
        assert st.tree.height() == 7  # DFS on K_n yields a path

    def test_dfs_valid_everywhere(self):
        for g in (mesh_graph([3, 3]), hypercube_graph(3), path_graph(6)):
            st = dfs_spanning_tree(g)
            validate_spanning_tree(g, st.tree)


class TestPathTree:
    def test_path_tree_on_mesh(self):
        g = mesh_graph([3, 3])
        st = path_spanning_tree(g)
        assert st.max_degree() == 2
        assert st.tree.height() == g.n - 1

    def test_explicit_order(self):
        g = complete_graph(4)
        st = path_spanning_tree(g, order=[2, 0, 3, 1])
        assert st.root == 2
        assert st.tree.parent[0] == 2

    def test_bad_order_rejected(self):
        g = path_graph(4)
        with pytest.raises(TopologyError):
            path_spanning_tree(g, order=[0, 2, 1, 3])


class TestStarTree:
    def test_star_tree_on_complete(self):
        st = star_spanning_tree(complete_graph(6), hub=2)
        assert st.root == 2
        assert st.tree.height() == 1

    def test_star_tree_requires_adjacency(self):
        with pytest.raises(TopologyError):
            star_spanning_tree(path_graph(4), hub=0)


class TestEmbedded:
    def test_binary_on_complete(self):
        st = embedded_binary_tree(complete_graph(15))
        assert st.max_degree() == 3
        assert st.tree.height() == 3

    def test_mary_on_its_own_tree_graph(self):
        g = perfect_mary_tree(3, 2)
        st = embedded_mary_tree(g, 3)
        assert st.tree.children[0] == (1, 2, 3)

    def test_missing_heap_edge_rejected(self):
        with pytest.raises(TopologyError):
            embedded_binary_tree(path_graph(5))

    def test_invalid_m(self):
        with pytest.raises(TopologyError):
            embedded_mary_tree(complete_graph(5), 1)


class TestValidation:
    def test_size_mismatch(self):
        t = RootedTree([0, 0, 1])
        with pytest.raises(TopologyError):
            validate_spanning_tree(path_graph(4), t)

    def test_non_graph_edge(self):
        t = RootedTree([0, 0, 0])  # edges (0,1),(0,2); path 0-1-2 lacks (0,2)
        with pytest.raises(TopologyError):
            SpanningTree(path_graph(3), t)

    def test_as_graph_roundtrip(self):
        st = bfs_spanning_tree(mesh_graph([3, 3]))
        tg = st.as_graph()
        assert tg.n == 9 and tg.m == 8
