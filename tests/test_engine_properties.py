"""Property-based engine tests: model invariants under random protocols.

A random "chatter" protocol exercises the engine with arbitrary traffic;
the model's invariants must hold regardless of what the protocol does:

* a node never receives more than ``recv_capacity`` messages per round;
* a node never puts more than ``send_capacity`` messages on links per round;
* every message sent is delivered exactly once (conservation);
* per-link delivery order equals send order (FIFO);
* no message is delivered before ``sent_at + delay``.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import EventTrace, Message, Node, SynchronousNetwork, UniformDelay
from repro.sim.timeline import message_flow_summary, render_timeline
from repro.topology.base import Graph


class ChatterNode(Node):
    """Sends a random batch at start; forwards with decaying TTL."""

    def __init__(self, node_id: int, rng: random.Random, fanout: int):
        super().__init__(node_id)
        self.rng = rng
        self.fanout = fanout
        self.seen: list[Message] = []

    def on_start(self, ctx):
        for _ in range(self.fanout):
            if ctx.neighbors:
                dst = self.rng.choice(ctx.neighbors)
                ctx.send(dst, "chat", payload=3)  # TTL

    def on_receive(self, msg, ctx):
        self.seen.append(msg)
        ttl = msg.payload
        if ttl > 0 and ctx.neighbors and self.rng.random() < 0.7:
            ctx.send(self.rng.choice(ctx.neighbors), "chat", payload=ttl - 1)


@st.composite
def chatter_setup(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    # random connected graph: path backbone + extra edges
    edges = {(i, i + 1) for i in range(n - 1)}
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=2 * n,
        )
    )
    for u, v in extra:
        if u != v:
            edges.add((min(u, v), max(u, v)))
    seed = draw(st.integers(0, 10**6))
    send_cap = draw(st.integers(min_value=1, max_value=3))
    recv_cap = draw(st.integers(min_value=1, max_value=3))
    delay_hi = draw(st.integers(min_value=1, max_value=4))
    fanout = draw(st.integers(min_value=0, max_value=4))
    return n, sorted(edges), seed, send_cap, recv_cap, delay_hi, fanout


class TestEngineInvariants:
    @given(setup=chatter_setup())
    @settings(max_examples=50, deadline=None)
    def test_all_invariants_hold(self, setup):
        n, edges, seed, send_cap, recv_cap, delay_hi, fanout = setup
        g = Graph.from_edges(n, edges, name="chatter")
        rng = random.Random(seed)
        nodes = {v: ChatterNode(v, rng, fanout) for v in range(n)}
        trace = EventTrace()
        model = UniformDelay(1, delay_hi, seed=seed)
        net = SynchronousNetwork(
            g,
            nodes,
            send_capacity=send_cap,
            recv_capacity=recv_cap,
            delay_model=model,
            trace=trace,
        )
        stats = net.run(max_rounds=100_000)

        # conservation
        assert stats.messages_sent == stats.messages_delivered

        # capacities
        assert trace.max_deliveries_in_a_round() <= recv_cap
        assert trace.max_sends_in_a_round() <= send_cap

        # per-link FIFO + delay respected
        per_link_seqs: dict[tuple[int, int], list[int]] = {}
        for v in range(n):
            for msg in nodes[v].seen:
                assert msg.delivered_at >= msg.ready_at
                assert msg.ready_at - msg.sent_at >= 1
                per_link_seqs.setdefault((msg.src, msg.dst), []).append(msg.seq)
        # within each link, the receiver saw messages in creation order of
        # their *send*, which for a single sender equals enqueue order
        for link, seqs in per_link_seqs.items():
            assert seqs == sorted(seqs), f"FIFO violated on {link}"


class TestTimeline:
    def test_render_small_run(self):
        from repro.topology import path_graph

        class Ping(Node):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(1, "ping")

            def on_receive(self, msg, ctx):
                ctx.complete("done")

        g = path_graph(2)
        trace = EventTrace()
        net = SynchronousNetwork(g, {0: Ping(0), 1: Ping(1)}, trace=trace)
        net.run()
        text = render_timeline(trace)
        assert "0->1 ping" in text
        assert "1!done" in text

    def test_render_empty(self):
        assert render_timeline(EventTrace()) == "(no events)"

    def test_render_fault_events(self):
        trace = EventTrace()
        trace.record("drop", 3, src=0, dst=1, kind="req", reason="drop")
        trace.record("drop", 4, src=1, dst=2, kind="req", reason="outage")
        trace.record("duplicate", 5, src=2, dst=3, kind="ack")
        trace.record("crash", 6, node=4)
        trace.record("recover", 9, node=4)
        text = render_timeline(trace)
        assert "0-x>1 req" in text
        assert "1-x>2 req (outage)" in text
        assert "2=>3 ack x2" in text
        assert "crash 4" in text
        assert "recover 4" in text

    def test_render_faulty_run(self):
        from repro.faults import FaultPlan, LinkOutage, run_flood_counting_ft
        from repro.topology import path_graph

        trace = EventTrace()
        plan = FaultPlan(outages=(LinkOutage(0, 1, 0, 2),))
        run_flood_counting_ft(path_graph(4), range(4), plan, trace=trace)
        text = render_timeline(trace)
        assert "-x>" in text and "(outage)" in text

    def test_truncation(self):
        from repro.topology import path_graph

        class Chain(Node):
            def on_start(self, ctx):
                if self.node_id == 0:
                    ctx.send(1, "hop", payload=10)

            def on_receive(self, msg, ctx):
                if msg.payload > 0:
                    ctx.send(msg.src, "hop", payload=msg.payload - 1)

        g = path_graph(2)
        trace = EventTrace()
        SynchronousNetwork(g, {0: Chain(0), 1: Chain(1)}, trace=trace).run()
        text = render_timeline(trace, max_rounds=3)
        assert "more rounds" in text

    def test_flow_summary(self):
        from repro.arrow import run_arrow  # smoke: summary over a real run
        from repro.sim.trace import EventTrace as ET
        from repro.topology import path_graph as pg
        from repro.topology.spanning import path_spanning_tree

        # run a tiny arrow manually with a trace
        from repro.arrow.protocol import ArrowNode

        g = pg(4)
        trace = ET()
        nodes = {
            v: ArrowNode(v, link=(v - 1 if v else 0), requesting=True)
            for v in range(4)
        }
        net = SynchronousNetwork(g, nodes, trace=trace)
        net.run()
        summary = message_flow_summary(trace)
        assert set(summary) == {"queue"}
        assert summary["queue"] >= 1
