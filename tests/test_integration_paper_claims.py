"""Integration tests: the paper's headline claims, end to end.

Each test runs real protocols on the simulator and checks a claim from
the paper as a measurable statement at small-but-meaningful scale.
"""

from __future__ import annotations

import pytest

from repro.arrow import run_arrow
from repro.bounds import (
    arrow_upper_bound,
    list_queuing_bound,
    theorem35_lower_bound,
    theorem36_lower_bound,
)
from repro.core.comparison import growth_exponent
from repro.counting import (
    run_central_counting,
    run_central_queuing,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
)
from repro.topology import (
    complete_graph,
    diameter,
    hypercube_graph,
    mesh_graph,
    path_graph,
    star_graph,
)
from repro.topology.spanning import (
    embedded_binary_tree,
    path_spanning_tree,
    star_spanning_tree,
)


class TestHeadlineSeparation:
    """CQ(G) = o(CC(G)) on Hamilton-path graphs (Theorem 4.5)."""

    @pytest.mark.parametrize(
        "g", [complete_graph(32), mesh_graph([6, 6]), hypercube_graph(5)]
    )
    def test_arrow_beats_every_counting_algorithm(self, g):
        req = list(range(g.n))
        arrow = run_arrow(path_spanning_tree(g), req)
        counting_totals = [
            run_central_counting(g, req).total_delay,
            run_flood_counting(g, req).total_delay,
            run_counting_network(g, req).total_delay,
            run_combining_counting(
                embedded_binary_tree(complete_graph(g.n)), req
            ).total_delay,
        ]
        assert arrow.total_delay < min(counting_totals)

    def test_gap_widens_with_n_on_complete_graph(self):
        gaps = []
        for n in (8, 16, 32, 64):
            g = complete_graph(n)
            arrow = run_arrow(path_spanning_tree(g), range(n))
            best = min(
                run_combining_counting(embedded_binary_tree(g), range(n)).total_delay,
                run_flood_counting(g, range(n)).total_delay,
            )
            gaps.append(best / max(1, arrow.total_delay))
        assert gaps == sorted(gaps)
        assert gaps[-1] > 2 * gaps[0] / 2  # strictly increasing and significant

    def test_arrow_linear_counting_superlinear_on_knn(self):
        ns = [8, 16, 32, 64]
        arrow_t, count_t = [], []
        for n in ns:
            g = complete_graph(n)
            arrow_t.append(run_arrow(path_spanning_tree(g), range(n)).total_delay)
            count_t.append(
                run_combining_counting(
                    embedded_binary_tree(g), range(n)
                ).total_delay
            )
        assert growth_exponent(ns, arrow_t) < 1.2
        assert growth_exponent(ns, count_t) > 1.05


class TestLowerBoundsRespected:
    """No implemented counting algorithm ever beats Section 3's bounds."""

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_general_bound_on_complete_graph(self, n):
        g = complete_graph(n)
        req = list(range(n))
        for total in (
            run_central_counting(g, req).total_delay,
            run_flood_counting(g, req).total_delay,
            run_counting_network(g, req).total_delay,
            run_combining_counting(embedded_binary_tree(g), req).total_delay,
        ):
            assert total >= theorem35_lower_bound(n)

    @pytest.mark.parametrize("n", [9, 25, 49])
    def test_diameter_bound_on_meshes(self, n):
        k = int(n**0.5)
        g = mesh_graph([k, k])
        alpha = diameter(g)
        total = run_central_counting(g, range(g.n)).total_delay
        assert total >= theorem36_lower_bound(alpha)

    @pytest.mark.parametrize("n", [16, 64])
    def test_diameter_bound_on_list(self, n):
        total = run_central_counting(path_graph(n), range(n)).total_delay
        assert total >= theorem36_lower_bound(n - 1)


class TestQueuingUpperBoundsRespected:
    """Arrow never exceeds the Section 4 envelopes."""

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_list_envelope(self, n):
        st = path_spanning_tree(path_graph(n))
        res = run_arrow(st, range(n))
        assert res.total_delay <= list_queuing_bound(n)
        assert res.total_delay <= arrow_upper_bound(st.tree, range(n))

    @pytest.mark.parametrize("n", [15, 63])
    def test_binary_tree_envelope(self, n):
        from repro.bounds import binary_tree_queuing_bound

        st = embedded_binary_tree(complete_graph(n))
        res = run_arrow(st, range(n))
        assert res.total_delay <= binary_tree_queuing_bound(n)


class TestStarCounterexample:
    """Section 5: on the star, counting is NOT harder than queuing."""

    def test_both_quadratic_and_comparable(self):
        ns = [8, 16, 32]
        cc, cq = [], []
        for n in ns:
            g = star_graph(n)
            cc.append(run_central_counting(g, range(n)).total_delay)
            cq.append(
                run_arrow(star_spanning_tree(g), range(n), capacity=1).total_delay
            )
        assert growth_exponent(ns, cc) > 1.7
        assert growth_exponent(ns, cq) > 1.7
        for c, q in zip(cc, cq):
            assert 0.25 <= c / q <= 4.0

    def test_central_counting_equals_central_queuing_on_star(self):
        n = 24
        g = star_graph(n)
        assert (
            run_central_counting(g, range(n)).total_delay
            == run_central_queuing(g, range(n)).total_delay
        )


class TestCrossAlgorithmConsistency:
    """Different counting algorithms agree on the *problem*, not the order."""

    def test_all_algorithms_count_the_same_multiset(self):
        g = complete_graph(12)
        req = [1, 3, 5, 7, 9, 11]
        results = [
            run_central_counting(g, req),
            run_flood_counting(g, req),
            run_counting_network(g, req),
            run_combining_counting(embedded_binary_tree(g), req),
        ]
        for r in results:
            assert sorted(r.counts.values()) == [1, 2, 3, 4, 5, 6]
            assert set(r.counts) == set(req)

    def test_queuing_algorithms_agree_on_chain_validity(self):
        from repro.core.verify import verify_queuing

        g = complete_graph(10)
        req = list(range(10))
        arrow = run_arrow(path_spanning_tree(g), req)
        central = run_central_queuing(g, req, root=0)
        verify_queuing(req, arrow.predecessors, tail=0)
        verify_queuing(req, central.predecessors, tail=0)
