#!/usr/bin/env python
"""Per-rank latency profiles: the lower-bound argument, drawn.

The heart of the paper's Section 3 is a per-operation statement: the
processor that outputs count ``k`` must have waited long enough to learn
about ``k-1`` others (Lemma 3.1), and — on high-diameter graphs — long
enough for information to physically arrive (Theorem 3.6).  This example
plots (in ASCII) measured delay as a function of the received rank for
two algorithms on two topologies, next to the analytic per-rank bounds.
"""

from repro import complete_graph, path_graph, run_central_counting, run_flood_counting
from repro.analysis import ascii_bars, latency_by_rank, sparkline
from repro.topology import diameter


def show(title: str, profile) -> None:
    print(f"--- {title}")
    print(f"  measured delay by rank : {sparkline(profile.delays, width=48)}")
    binding = [max(g, d) for g, d in zip(profile.general_bounds, profile.diameter_bounds)]
    print(f"  per-rank lower bound   : {sparkline(binding, width=48)}")
    print(f"  bounds respected       : {profile.respects_bounds()}")
    print()


def main() -> None:
    n = 48

    g = complete_graph(n)
    r = run_flood_counting(g, range(n))
    show(
        f"flood counting on {g.name} (Lemma 3.1 regime: info, not distance)",
        latency_by_rank(r, n=n, diameter=diameter(g)),
    )

    gp = path_graph(n)
    rp = run_central_counting(gp, range(n), root=0)
    show(
        f"central counting on {gp.name} (Theorem 3.6 regime: distance dominates)",
        latency_by_rank(rp, n=n, diameter=n - 1),
    )

    print("delay histogram of the path run (who waits how long):")
    from repro.analysis import delay_histogram

    print(ascii_bars(delay_histogram(rp.delays, bins=8), width=36))


if __name__ == "__main__":
    main()
