#!/usr/bin/env python
"""Distributed mutual exclusion on the arrow tree (Raymond's setting).

The arrow protocol's original application: nodes on a network compete
for a critical section; the arrow queue orders them and a single token
travels from each finishing holder to its successor.  This example runs
the full loop on a mesh, prints the critical-section schedule, and
demonstrates the safety property plus how the spanning-tree choice
changes waiting times.
"""

from repro import mesh_graph, run_token_mutex
from repro.topology.spanning import bfs_spanning_tree, path_spanning_tree


def main() -> None:
    g = mesh_graph([4, 4])
    requesters = list(range(0, g.n, 2))  # every other node wants the CS
    cs_rounds = 3

    print(f"{g.name}: {len(requesters)} nodes request a {cs_rounds}-round CS\n")
    for label, st in {
        "hamilton-path tree": path_spanning_tree(g),
        "bfs tree": bfs_spanning_tree(g),
    }.items():
        out = run_token_mutex(st, requesters, cs_rounds=cs_rounds)
        assert out.mutual_exclusion_holds()
        print(f"spanning tree: {label}")
        print(f"  CS order      : {list(out.order)}")
        entries = [out.entry_rounds[v] for v in out.order]
        print(f"  entry rounds  : {entries}")
        print(f"  total waiting : {out.total_waiting}")
        print(f"  mutual exclusion verified: intervals never overlap\n")


if __name__ == "__main__":
    main()
