#!/usr/bin/env python
"""Exhaustive worst-case search on tiny instances.

The paper's complexity measures are worst cases over all request sets R.
On tiny graphs we can search *all* non-empty subsets exhaustively and
find the exact worst-case total delay of each implemented algorithm —
a ground-truth check that the structured adversarial scenarios used by
the big experiments (all-nodes, far-half, alternating) really do realise
the worst case, and a template for exploring new topologies.
"""

from repro import (
    complete_graph,
    path_graph,
    run_arrow,
    run_central_counting,
    star_graph,
)
from repro.core.request import exhaustive_request_sets
from repro.experiments.report import render_table
from repro.topology.spanning import path_spanning_tree, star_spanning_tree


def worst_case(run, n):
    worst_total, worst_set = -1, None
    for req in exhaustive_request_sets(n):
        total = run(req).total_delay
        if total > worst_total:
            worst_total, worst_set = total, req
    return worst_total, worst_set


def main() -> None:
    rows = []
    for g, tree_builder in (
        (path_graph(7), path_spanning_tree),
        (complete_graph(7), path_spanning_tree),
        (star_graph(7), star_spanning_tree),
    ):
        st = tree_builder(g)
        cq_total, cq_set = worst_case(
            lambda req: run_arrow(st, req, capacity=1), g.n
        )
        cc_total, cc_set = worst_case(
            lambda req: run_central_counting(g, req), g.n
        )
        rows.append(
            {
                "graph": g.name,
                "CC* (central)": cc_total,
                "worst R for CC": str(cc_set),
                "CQ* (arrow)": cq_total,
                "worst R for CQ": str(cq_set),
            }
        )
    print("exact worst cases over all 2^7 - 1 request sets:\n")
    print(render_table(rows))
    print(
        "\nOn every topology the all-nodes set (or a near-full set) achieves "
        "the worst case,\nwhich is why the large-scale experiments use R = V "
        "as their adversarial scenario."
    )

    # Beyond exhaustive reach, the library's local search approximates the
    # worst case; here it confirms the structured scenarios stay strong at
    # n = 24 on the complete graph.
    from repro.core import adversarial_search

    g = complete_graph(24)
    st = path_spanning_tree(g)
    found = adversarial_search(
        g, lambda req: run_arrow(st, req, capacity=1).total_delay,
        max_evaluations=150,
    )
    print(
        f"\nlocal search on {g.name} (arrow): worst found total = "
        f"{found.best_total} with |R| = {len(found.best_requests)} "
        f"({found.evaluations} evaluations)"
    )


if __name__ == "__main__":
    main()
