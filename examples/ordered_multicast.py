#!/usr/bin/env python
"""Totally ordered multicast, built both ways (the paper's Section 1).

A group of nodes on a mesh multicasts messages that every node must
deliver in the same order.  The conventional solution sequences messages
with a distributed counter; Herlihy et al.'s alternative uses
distributed queuing and reconstructs the order from predecessor links.
This example runs both on identical inputs, verifies the delivery
sequences agree at every receiver, and shows the queuing flavour's
coordination phase is cheaper — the paper's motivating prediction.
"""

from repro import mesh_graph, run_counting_multicast, run_queuing_multicast
from repro.topology.spanning import path_spanning_tree


def main() -> None:
    for side in (3, 4, 5, 6):
        g = mesh_graph([side, side])
        st = path_spanning_tree(g)  # boustrophedon Hamilton path of the mesh
        senders = list(range(g.n))

        counting = run_counting_multicast(g, st, senders)
        queuing = run_queuing_multicast(g, st, senders)

        print(f"{g.name}: {len(senders)} senders")
        print(
            f"  counting-based: coordination total={counting.total_coordination_delay:>5}, "
            f"all delivered by round {counting.completion_time}"
        )
        print(
            f"  queuing-based : coordination total={queuing.total_coordination_delay:>5}, "
            f"all delivered by round {queuing.completion_time}"
        )
        speedup = (
            counting.total_coordination_delay / queuing.total_coordination_delay
        )
        print(f"  queuing coordination is {speedup:.1f}x cheaper")
        # Delivery-order consistency across receivers is verified inside the
        # runners; here we just show the common order exists.
        print(f"  common delivery order starts: {queuing.delivery_order[:6]}...\n")


if __name__ == "__main__":
    main()
