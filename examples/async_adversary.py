#!/usr/bin/env python
"""The asynchronous model: protocols under link-delay adversaries.

Section 2.1 of the paper notes its lower bounds carry over to the
asynchronous model.  This example runs the arrow protocol and a
combining-tree counter under three adversaries — uniform random delays,
a slowed cut of links, and a kind-targeted adversary that only slows
arrow traffic — and shows that (a) every output is still valid and
(b) the counting-vs-queuing separation survives.
"""

from repro import (
    ConstantDelay,
    TargetedDelay,
    UniformDelay,
    complete_graph,
    embedded_binary_tree,
    path_spanning_tree,
    run_arrow,
    run_combining_counting,
)
from repro.sim import KindDelay


def main() -> None:
    n = 32
    g = complete_graph(n)
    arrow_tree = path_spanning_tree(g)
    count_tree = embedded_binary_tree(g)
    requests = list(range(n))

    # A cut through the middle of the Hamilton path, slowed 5x.
    cut = frozenset({(n // 2 - 1, n // 2), (n // 2, n // 2 - 1)})

    adversaries = {
        "synchronous (unit delays)": ConstantDelay(1),
        "uniform delays in [1, 4]": UniformDelay(1, 4, seed=7),
        "slow cut (5x on 1 edge)": TargetedDelay(cut, slow=5),
        "queue traffic slowed 3x": KindDelay((("queue", 3),), default=1),
    }

    print(f"{g.name}, all {n} nodes request; totals under each adversary:\n")
    print(f"{'adversary':<28} {'arrow':>8} {'counting':>10} {'ratio':>7}")
    for label, model in adversaries.items():
        arrow = run_arrow(arrow_tree, requests, delay_model=model)
        counting = run_combining_counting(count_tree, requests, delay_model=model)
        ratio = counting.total_delay / max(1, arrow.total_delay)
        print(
            f"{label:<28} {arrow.total_delay:>8} "
            f"{counting.total_delay:>10} {ratio:>6.1f}x"
        )
    print(
        "\nEvery run re-validated its output (exact ranks / one predecessor"
        "\nchain); counting stays harder under every adversary."
    )


if __name__ == "__main__":
    main()
