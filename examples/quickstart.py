#!/usr/bin/env python
"""Quickstart: counting vs queuing on one graph, in ten lines of API.

Runs the arrow queuing protocol and two counting algorithms on the same
32-node complete graph with every node requesting, and prints the
paper's metric (total delay) side by side — the smallest possible
demonstration of "concurrent counting is harder than queuing".
"""

from repro import (
    complete_graph,
    embedded_binary_tree,
    path_spanning_tree,
    run_arrow,
    run_combining_counting,
    run_flood_counting,
    theorem35_lower_bound,
)


def main() -> None:
    n = 32
    g = complete_graph(n)
    requests = list(range(n))

    # Queuing: the arrow protocol on a Hamilton-path spanning tree
    # (Theorem 4.5's recipe — CQ = O(n)).
    queuing = run_arrow(path_spanning_tree(g), requests)

    # Counting: a combining tree and full-information gossip.
    combining = run_combining_counting(embedded_binary_tree(g), requests)
    flood = run_flood_counting(g, requests)

    print(f"complete graph K_{n}, all {n} nodes request at round 0")
    print(f"  counting lower bound (Thm 3.5) : {theorem35_lower_bound(n):>6}")
    print(f"  counting via combining tree    : {combining.total_delay:>6}")
    print(f"  counting via gossip (flood)    : {flood.total_delay:>6}")
    print(f"  queuing via arrow protocol     : {queuing.total_delay:>6}")
    print()
    print("arrow's total order:", queuing.order()[:8], "...")
    print("first node's rank from the combining tree:", combining.counts[0])
    ratio = combining.total_delay / queuing.total_delay
    print(f"\ncounting / queuing delay ratio: {ratio:.1f}x — counting is harder.")


if __name__ == "__main__":
    main()
