#!/usr/bin/env python
"""Scaling study: counting vs queuing across topologies and sizes.

Sweeps the algorithm portfolio over the paper's graph families, fits
log-log growth exponents, and prints a compact report showing where the
separation appears (Hamilton-path graphs, high-diameter graphs) and
where it vanishes (the star).  This is the example to start from when
extending the library with new topologies or algorithms.
"""

from repro import (
    complete_graph,
    path_graph,
    run_arrow,
    run_central_counting,
    run_combining_counting,
    star_graph,
)
from repro.core.comparison import growth_exponent
from repro.experiments.report import render_table
from repro.topology.spanning import (
    bfs_spanning_tree,
    embedded_binary_tree,
    path_spanning_tree,
    star_spanning_tree,
)


def sweep(family, sizes):
    rows = []
    for n in sizes:
        g, queuing_tree, counting_tree = family(n)
        requests = list(range(g.n))
        arrow = run_arrow(queuing_tree, requests, capacity=1)
        if counting_tree is not None:
            counting = run_combining_counting(counting_tree, requests)
        else:
            counting = run_central_counting(g, requests)
        rows.append(
            {
                "graph": g.name,
                "n": g.n,
                "counting": counting.total_delay,
                "queuing(arrow)": arrow.total_delay,
                "ratio": counting.total_delay / max(1, arrow.total_delay),
            }
        )
    return rows


def main() -> None:
    families = {
        "complete graph (Hamilton path)": (
            lambda n: (
                complete_graph(n),
                path_spanning_tree(complete_graph(n)),
                embedded_binary_tree(complete_graph(n)),
            ),
            (8, 16, 32, 64),
        ),
        "list (high diameter)": (
            lambda n: (path_graph(n), path_spanning_tree(path_graph(n)), None),
            (16, 32, 64, 128),
        ),
        "star (the counterexample)": (
            lambda n: (star_graph(n), star_spanning_tree(star_graph(n)), None),
            (8, 16, 32, 64),
        ),
    }
    for label, (family, sizes) in families.items():
        rows = sweep(family, sizes)
        print(f"=== {label} ===")
        print(render_table(rows))
        ns = [r["n"] for r in rows]
        ec = growth_exponent(ns, [r["counting"] for r in rows])
        eq = growth_exponent(ns, [r["queuing(arrow)"] for r in rows])
        print(f"fitted exponents: counting ~ n^{ec:.2f}, queuing ~ n^{eq:.2f}")
        trend = rows[-1]["ratio"] / rows[0]["ratio"]
        verdict = "separation grows" if trend > 1.5 else "no separation"
        print(f"counting/queuing ratio trend: x{trend:.1f} across the sweep -> {verdict}\n")


if __name__ == "__main__":
    main()
