"""E11: Theorem 4.13 — high-diameter graphs.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e11_thm413_high_diameter


def test_bench_e11(bench_experiment):
    bench_experiment(run_e11_thm413_high_diameter, spines=(8, 16, 32, 64))
