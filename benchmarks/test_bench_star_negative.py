"""E12: Section 5 — the star: counting is NOT harder.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e12_star_counterexample


def test_bench_e12(bench_experiment):
    bench_experiment(run_e12_star_counterexample, sizes=(8, 16, 32, 64, 128))
