"""E14: Ablation — arrow's spanning-tree choice.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e14_ablation_tree_choice


def test_bench_e14(bench_experiment):
    bench_experiment(run_e14_ablation_tree_choice, n=64, mesh_side=8)
