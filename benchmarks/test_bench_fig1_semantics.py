"""E1: Fig. 1 — counting vs queuing semantics.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e1_fig1_semantics


def test_bench_e1(bench_experiment):
    bench_experiment(run_e1_fig1_semantics)
