"""E6: Lemma 4.3/4.4 — NN-TSP on the list <= 3n.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e6_lemma43_list_tsp


def test_bench_e6(bench_experiment):
    bench_experiment(run_e6_lemma43_list_tsp, sizes=(16, 64, 256, 1024, 4096))
