"""E17: Extension — asynchronous links (Section 2.1 remark).

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments.suite import run_e17_async_robustness


def test_bench_e17(bench_experiment):
    bench_experiment(run_e17_async_robustness, sizes=(8, 16, 32, 64), delay_hi=3)
