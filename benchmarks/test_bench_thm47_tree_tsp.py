"""E7: Theorem 4.7 — NN-TSP on perfect trees is O(n).

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e7_thm47_tree_tsp


def test_bench_e7(bench_experiment):
    bench_experiment(run_e7_thm47_tree_tsp, depths=(3, 4, 5, 6, 7, 8, 9, 10), mary_depths=(2, 3, 4, 5))
