"""E15: Ablation — counting algorithms head-to-head.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e15_ablation_counters


def test_bench_e15(bench_experiment):
    bench_experiment(run_e15_ablation_counters, n=32, mesh_side=6)
