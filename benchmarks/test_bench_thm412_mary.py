"""E10: Theorem 4.12 — perfect m-ary spanning trees.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e10_thm412_mary


def test_bench_e10(bench_experiment):
    bench_experiment(run_e10_thm412_mary, binary_sizes=(15, 31, 63, 127, 255), ternary_depths=(2, 3, 4))
