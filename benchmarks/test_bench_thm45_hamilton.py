"""E9: Theorem 4.5 — Hamilton-path graphs: CQ = Theta(n) << CC.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e9_thm45_hamilton


def test_bench_e9(bench_experiment):
    bench_experiment(run_e9_thm45_hamilton, complete_sizes=(8, 16, 32, 64, 128), mesh_sides=(3, 4, 6, 8), hypercube_dims=(3, 4, 5, 6, 7))
