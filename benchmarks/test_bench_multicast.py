"""E13: Section 1 — ordered multicast both ways.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e13_multicast


def test_bench_e13(bench_experiment):
    bench_experiment(run_e13_multicast, mesh_sides=(3, 4, 5), complete_sizes=(8, 16))
