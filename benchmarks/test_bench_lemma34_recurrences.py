"""E3: Lemmas 3.2-3.4 & 4.8 — growth recurrences.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e3_recurrences


def test_bench_e3(bench_experiment):
    bench_experiment(run_e3_recurrences, t_max=4, k_max=40)
