"""E19: Section 5 open question — distributed addition.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments.suite import run_e19_addition


def test_bench_e19(bench_experiment):
    bench_experiment(run_e19_addition, sizes=(15, 31, 63, 127))
