"""E2: Theorem 3.5 — Omega(n log* n) counting lower bound on K_n.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e2_thm35_general_lower_bound


def test_bench_e2(bench_experiment):
    bench_experiment(run_e2_thm35_general_lower_bound, sizes=(8, 16, 32, 64, 128))
