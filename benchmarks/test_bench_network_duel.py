"""E18: Reference [1] — bitonic vs periodic counting networks.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments.suite import run_e18_network_duel


def test_bench_e18(bench_experiment):
    bench_experiment(run_e18_network_duel, sizes=(8, 16, 32, 64))
