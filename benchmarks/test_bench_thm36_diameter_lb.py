"""E4: Theorem 3.6 — Omega(alpha^2) on list and mesh.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e4_thm36_diameter_lower_bound


def test_bench_e4(bench_experiment):
    bench_experiment(run_e4_thm36_diameter_lower_bound, list_sizes=(16, 32, 64, 128, 256), mesh_sides=(3, 4, 6, 8))
