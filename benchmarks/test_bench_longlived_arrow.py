"""E16: Extension — long-lived arrow (Kuhn-Wattenhofer).

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e16_longlived


def test_bench_e16(bench_experiment):
    bench_experiment(run_e16_longlived, n=128, horizons=(1, 16, 64, 256, 1024))
