"""E8: Corollary 4.2 — O(n log n) on constant-degree trees.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e8_cor42_rosenkrantz


def test_bench_e8(bench_experiment):
    bench_experiment(run_e8_cor42_rosenkrantz, sizes=(15, 63, 255, 1023), seeds=(0, 1, 2, 3, 4))
