"""E20: Reference [4] — arrow directory vs token mutex.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments.suite import run_e20_directory


def test_bench_e20(bench_experiment):
    bench_experiment(run_e20_directory, sizes=(16, 32, 64, 128))
