"""Engine micro-benchmarks: simulator throughput on representative loads.

Unlike the experiment benches (which assert theorem shapes), these time
the simulator substrate itself — useful for tracking performance
regressions in the engine's hot paths (link queues, ready heaps,
arbitration).
"""

from repro.arrow import run_arrow
from repro.counting import run_central_counting, run_flood_counting
from repro.topology import complete_graph, path_graph, star_graph
from repro.topology.spanning import path_spanning_tree


def test_bench_engine_contention_storm(benchmark):
    """Theta(n^2) serialisation at the star hub (n = 96)."""
    g = star_graph(96)

    def run():
        return run_central_counting(g, range(96)).total_delay

    total = benchmark(run)
    assert total > 0


def test_bench_engine_long_pipeline(benchmark):
    """A long relay pipeline: central counting across a 256-node path."""
    g = path_graph(256)

    def run():
        return run_central_counting(g, range(0, 256, 8)).total_delay

    total = benchmark(run)
    assert total > 0


def test_bench_engine_arrow_wave(benchmark):
    """The arrow protocol's concurrent wave on a 512-node path."""
    st = path_spanning_tree(path_graph(512))

    def run():
        return run_arrow(st, range(512)).total_delay

    total = benchmark(run)
    assert total == 511


def test_bench_engine_gossip_flood(benchmark):
    """Dense gossip: flood counting on K_48 (many large payloads)."""
    g = complete_graph(48)

    def run():
        return run_flood_counting(g, range(48)).total_delay

    total = benchmark(run)
    assert total > 0
