"""E5: Theorem 4.1 — arrow <= 2 x NN-TSP.

Regenerates the corresponding table of DESIGN.md's experiment index and
asserts the paper's shape criteria.  Run with ``-s`` to print the table.
"""

from repro.experiments import run_e5_thm41_arrow_vs_tsp


def test_bench_e5(bench_experiment):
    bench_experiment(run_e5_thm41_arrow_vs_tsp, sizes=(8, 16, 32, 64, 96), seeds=(0, 1, 2, 3, 4, 5))
