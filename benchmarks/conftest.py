"""Benchmark helpers: run one experiment under pytest-benchmark.

Each benchmark file regenerates one table/figure of the paper (see
DESIGN.md's per-experiment index).  ``bench_experiment`` executes the
experiment exactly once under the benchmark timer (the experiments are
deterministic, so repetition only measures the same work again), asserts
every pass criterion, and prints the rendered table so
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
numbers on the terminal.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def bench_experiment(benchmark, capsys):
    """Run an experiment function under the benchmark and require success."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1
        )
        result.require()
        from repro.experiments import render_experiment

        with capsys.disabled():
            print()
            print(render_experiment(result))
        return result

    return _run
