"""Dependency-free ASCII charts for terminal reports."""

from __future__ import annotations

from typing import Mapping, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """A one-line intensity strip for a numeric series.

    Values are min-max normalised onto a ten-level character ramp; an
    optional ``width`` resamples the series by averaging buckets.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(vals[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[1] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = 1 + int((v - lo) / span * (len(_SPARK_LEVELS) - 2))
        out.append(_SPARK_LEVELS[min(idx, len(_SPARK_LEVELS) - 1)])
    return "".join(out)


def ascii_bars(
    rows: Sequence[tuple[str, float]] | Mapping[str, float],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal bar chart: one ``label  bar  value`` line per row.

    Bars are scaled to the maximum value; zero/negative values render as
    empty bars.
    """
    items = list(rows.items()) if isinstance(rows, Mapping) else list(rows)
    if not items:
        return "(no data)"
    label_w = max(len(str(k)) for k, _ in items)
    peak = max((v for _, v in items if v > 0), default=0)
    lines = []
    for label, value in items:
        bar = fill * int(round(width * value / peak)) if peak > 0 and value > 0 else ""
        val = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{str(label):>{label_w}}  {bar:<{width}}  {val}")
    return "\n".join(lines)
