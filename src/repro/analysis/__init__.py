"""Post-run analytics: delay profiles, contention maps, text charts.

The paper's lower-bound argument is *per operation*: the op that outputs
count ``k`` must have latency growing with ``k`` (Lemma 3.1) and with the
distance information travelled (Theorem 3.6).  This package turns raw
run results into those curves:

* :func:`latency_by_rank` — measured delay as a function of the rank
  received, against the analytic per-op bounds;
* :func:`contention_profile` — where the waiting happened (per-node
  receive-side contention totals);
* :mod:`repro.analysis.charts` — dependency-free ASCII bar charts and
  sparklines so examples and EXPERIMENTS.md can show the curves inline.
"""

from repro.analysis.profiles import (
    RankLatencyProfile,
    latency_by_rank,
    contention_profile,
    delay_histogram,
)
from repro.analysis.charts import ascii_bars, sparkline

__all__ = [
    "RankLatencyProfile",
    "latency_by_rank",
    "contention_profile",
    "delay_histogram",
    "ascii_bars",
    "sparkline",
]
