"""Delay and contention profiles from counting/queuing runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bounds.counting_lb import per_op_diameter_bound, per_op_general_bound
from repro.core.problem import CountingResult


@dataclass(frozen=True)
class RankLatencyProfile:
    """Measured latency as a function of the rank received.

    Attributes:
        ranks: the ranks ``1..|R|`` in order.
        delays: measured delay of the operation that received each rank.
        general_bounds: Lemma 3.1 per-op lower bound for each rank.
        diameter_bounds: Theorem 3.6 per-op bound (zeros unless all nodes
            counted and a diameter was supplied).
    """

    ranks: tuple[int, ...]
    delays: tuple[int, ...]
    general_bounds: tuple[int, ...]
    diameter_bounds: tuple[int, ...]

    def respects_bounds(self) -> bool:
        """Whether every measured delay dominates both per-rank bounds."""
        return all(
            d >= max(g, a)
            for d, g, a in zip(self.delays, self.general_bounds, self.diameter_bounds)
        )

    def slack(self) -> list[int]:
        """Per-rank gap between the measured delay and the binding bound."""
        return [
            d - max(g, a)
            for d, g, a in zip(self.delays, self.general_bounds, self.diameter_bounds)
        ]


def latency_by_rank(
    result: CountingResult,
    *,
    n: int | None = None,
    diameter: int | None = None,
) -> RankLatencyProfile:
    """Build the rank -> latency curve of one counting run.

    Args:
        result: a verified counting result.
        n: graph size (needed for the Theorem 3.6 per-op bound).
        diameter: graph diameter; when given *and* every vertex counted,
            the diameter bound column is populated.
    """
    by_rank = sorted((rank, result.delays[v]) for v, rank in result.counts.items())
    ranks = tuple(r for r, _ in by_rank)
    delays = tuple(d for _, d in by_rank)
    general = tuple(per_op_general_bound(r) for r in ranks)
    if diameter is not None and n is not None and len(ranks) == n:
        diam = tuple(per_op_diameter_bound(r, n, diameter) for r in ranks)
    else:
        diam = tuple(0 for _ in ranks)
    return RankLatencyProfile(
        ranks=ranks, delays=delays, general_bounds=general, diameter_bounds=diam
    )


def contention_profile(delays_by_node: Mapping[int, int], top: int = 8) -> list[tuple[int, int]]:
    """The ``top`` largest entries of a per-node totals mapping.

    Typically fed with per-node receive-wait totals (from a trace) or
    per-node delays; returns ``(node, value)`` pairs sorted descending.
    """
    return sorted(delays_by_node.items(), key=lambda kv: (-kv[1], kv[0]))[:top]


def delay_histogram(delays: Mapping[object, int], bins: int = 10) -> list[tuple[str, int]]:
    """Equal-width histogram of delay values as ``(label, count)`` rows."""
    values = sorted(delays.values())
    if not values:
        return []
    lo, hi = values[0], values[-1]
    if lo == hi:
        return [(f"{lo}", len(values))]
    width = max(1, (hi - lo + bins) // bins)
    rows: list[tuple[str, int]] = []
    edge = lo
    while edge <= hi:
        count = sum(1 for v in values if edge <= v < edge + width)
        rows.append((f"{edge}-{edge + width - 1}", count))
        edge += width
    return rows
