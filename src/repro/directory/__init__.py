"""The arrow distributed directory (Demmer & Herlihy, DISC 1998).

Reference [4] of the paper: the arrow protocol was popularised as a
*distributed directory* for a mobile object (e.g. a shared data
structure or a lock with payload).  A node wanting the object issues a
find request that runs the arrow path-reversal on the spanning tree;
when the current holder is done, the object itself travels *directly*
through the communication graph (shortest path, not the tree) to the
next requester.

This package implements that full loop on the simulator, separating the
two kinds of traffic the analysis distinguishes: tree-bound ``queue()``
messages and graph-bound object moves.
"""

from repro.directory.protocol import DirectoryOutcome, run_object_directory

__all__ = ["DirectoryOutcome", "run_object_directory"]
