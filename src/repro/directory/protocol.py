"""Mobile-object directory over the arrow queue.

The node logic is the mutual-exclusion loop of :mod:`repro.mutex` with
one twist that matters for delay accounting: the *object* is routed
along shortest paths of the communication graph ``G`` (the directory
only uses the spanning tree for find requests), so on low-diameter
graphs the handoff is much cheaper than a tree walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from repro.arrow.protocol import init_op, op_of
from repro.sim import Message, Node, NodeContext, SynchronousNetwork
from repro.topology.base import Graph
from repro.topology.properties import bfs_distances
from repro.topology.spanning import SpanningTree
from repro.tree import RootedTree


def _shortest_path_next_hops(graph: Graph) -> dict[int, list[int]]:
    """For each destination, the next-hop array (BFS parents toward it)."""
    out: dict[int, list[int]] = {}
    for dest in graph.vertices():
        dist = bfs_distances(graph, dest)
        par = list(range(graph.n))
        for v in graph.vertices():
            if v == dest:
                continue
            for u in graph.adj[v]:
                if dist[u] == dist[v] - 1:
                    par[v] = u
                    break
        out[dest] = par
    return out


class _DirectoryNode(Node):
    """Arrow node + object holder state.

    Messages:
        ``queue``: arrow find request, travels on *tree* edges only.
        ``object``: the mobile object, payload = destination vertex,
            routed hop-by-hop along graph shortest paths.
    """

    __slots__ = (
        "link",
        "parked",
        "requesting",
        "tree_neighbors",
        "use_rounds",
        "has_object",
        "object_for",
        "succ_of",
        "use_completed",
        "next_hops",
    )

    def __init__(
        self,
        node_id: int,
        link: int,
        requesting: bool,
        tree_neighbors: frozenset[int],
        use_rounds: int,
        is_home: bool,
        next_hops: dict[int, list[int]],
    ) -> None:
        super().__init__(node_id)
        self.link = link
        self.parked: Hashable = init_op(node_id) if link == node_id else None
        self.requesting = requesting
        self.tree_neighbors = tree_neighbors
        self.use_rounds = use_rounds
        self.has_object = is_home
        self.object_for: Hashable = init_op(node_id) if is_home else None
        self.succ_of: dict[Hashable, int] = {}
        self.use_completed: set[Hashable] = {init_op(node_id)} if is_home else set()
        self.next_hops = next_hops

    # -- arrow on the tree ---------------------------------------------------

    def _terminate(self, a: Hashable, ctx: NodeContext) -> None:
        pred = self.parked
        self.parked = a
        self.succ_of[pred] = a[1]
        self._try_hand_off(ctx)

    def on_start(self, ctx: NodeContext) -> None:
        if not self.requesting:
            return
        a = op_of(self.node_id)
        w = self.link
        self.link = self.node_id
        if w == self.node_id:
            self._terminate(a, ctx)
        else:
            self.parked = a
            ctx.send(w, "queue", payload=a)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind == "queue":
            if msg.src not in self.tree_neighbors:  # pragma: no cover
                raise ValueError("find message arrived off-tree")
            a = msg.payload
            w = self.link
            self.link = msg.src
            if w == self.node_id:
                self._terminate(a, ctx)
            else:
                ctx.send(w, "queue", payload=a)
        elif msg.kind == "object":
            dest = msg.payload
            if dest == self.node_id:
                self._acquire(ctx)
            else:
                ctx.send(self.next_hops[dest][self.node_id], "object", payload=dest)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")

    # -- object lifecycle ------------------------------------------------------

    def _acquire(self, ctx: NodeContext) -> None:
        if self.has_object:
            return  # spurious second delivery; acquiring is idempotent
        self.has_object = True
        self.object_for = op_of(self.node_id)
        ctx.complete(op_of(self.node_id), result=ctx.now)
        if self.use_rounds == 0:
            self._release(ctx)
        else:
            ctx.schedule_wakeup(ctx.now + self.use_rounds)

    def on_wake(self, ctx: NodeContext) -> None:
        self._release(ctx)

    def _release(self, ctx: NodeContext) -> None:
        self.use_completed.add(op_of(self.node_id))
        self._try_hand_off(ctx)

    def _try_hand_off(self, ctx: NodeContext) -> None:
        if not self.has_object:
            return
        op = self.object_for
        if op not in self.use_completed or op not in self.succ_of:
            return
        target = self.succ_of[op]
        self.has_object = False
        if target == self.node_id:
            self._acquire(ctx)
        else:
            ctx.send(self.next_hops[target][self.node_id], "object", payload=target)


@dataclass(frozen=True)
class DirectoryOutcome:
    """Result of one directory run.

    Attributes:
        requests: requesting vertices, sorted.
        use_rounds: rounds each holder keeps the object.
        acquire_rounds: vertex -> round it received the object.
        order: vertices in acquisition order.
    """

    requests: tuple[int, ...]
    use_rounds: int
    acquire_rounds: dict[int, int]
    order: tuple[int, ...]

    @property
    def total_waiting(self) -> int:
        """Sum of acquisition rounds — the directory's aggregate latency."""
        return sum(self.acquire_rounds.values())

    def exclusive_holding(self) -> bool:
        """The object is never at two places: acquisitions are spaced by
        at least ``use_rounds`` (plus travel, which only helps)."""
        entries = sorted(self.acquire_rounds.values())
        return all(b - a >= self.use_rounds for a, b in zip(entries, entries[1:]))


def run_object_directory(
    graph: Graph,
    spanning: SpanningTree,
    requests: Iterable[int],
    *,
    use_rounds: int = 1,
    home: int | None = None,
    capacity: int | None = None,
    delay_model=None,
    max_rounds: int = 50_000_000,
    trace: Any | None = None,
    monitors: Any | None = None,
) -> DirectoryOutcome:
    """Run the arrow directory: find on the tree, move on the graph.

    Args:
        graph: the communication graph (object moves take shortest paths
            here).
        spanning: the spanning tree of ``graph`` carrying find requests.
        requests: vertices requesting the object at round 0.
        use_rounds: how long each holder uses the object before releasing.
        home: the object's initial location (default: tree root).
        capacity: per-round message budget (default: tree max degree —
            object hops and finds share it, which is the interesting
            contention).
        delay_model: optional link-delay model.
        max_rounds: engine safety limit.

    Raises:
        AssertionError: if some requester never obtained the object or
            exclusivity is violated.
    """
    tree = spanning.tree
    if home is None:
        home = tree.root
    if capacity is None:
        capacity = max(1, spanning.max_degree())
    if use_rounds < 0:
        raise ValueError(f"use_rounds must be >= 0, got {use_rounds}")

    if home == tree.root:
        parent_toward_home = tree.parent
    else:
        parent_toward_home = RootedTree.from_edges(
            tree.n, tree.edges(), root=home
        ).parent

    tree_adj: dict[int, set[int]] = {v: set() for v in range(tree.n)}
    for p, c in tree.edges():
        tree_adj[p].add(c)
        tree_adj[c].add(p)

    next_hops = _shortest_path_next_hops(graph)
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nodes = {
        v: _DirectoryNode(
            v,
            link=parent_toward_home[v],
            requesting=(v in req_set),
            tree_neighbors=frozenset(tree_adj[v]),
            use_rounds=use_rounds,
            is_home=(v == home),
            next_hops=next_hops,
        )
        for v in range(tree.n)
    }
    net = SynchronousNetwork(
        graph,
        nodes,
        send_capacity=capacity,
        recv_capacity=capacity,
        delay_model=delay_model,
        trace=trace,
        monitors=monitors,
    )
    net.run(max_rounds=max_rounds)

    acquire = {op[1]: r for op, r in net.delays.delay_by_op().items()}
    if set(acquire) != req_set:
        raise AssertionError(
            f"{len(acquire)} of {len(req)} requesters obtained the object"
        )
    order = tuple(sorted(acquire, key=lambda v: acquire[v]))
    out = DirectoryOutcome(
        requests=req, use_rounds=use_rounds, acquire_rounds=acquire, order=order
    )
    if not out.exclusive_holding():
        raise AssertionError("object exclusivity violated")
    return out
