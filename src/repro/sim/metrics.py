"""Delay accounting: the paper's concurrent delay complexity metric.

The metric of the paper (Section 2.2) is the *total delay*: the sum over
all requesters of the round in which their operation completed, maximized
over request sets.  :class:`DelayRecorder` collects per-operation
completion rounds during a run; :func:`summarize_delays` reduces them to
the totals the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping

from repro.sim.errors import ProtocolViolation


@dataclass(slots=True, frozen=True)
class OperationRecord:
    """Completion record for one operation.

    Attributes:
        op_id: the operation identifier passed to ``ctx.complete``.
        round: the round in which the response condition held.
        result: protocol-defined response (a count for counting, a
            predecessor identifier for queuing).
        at_node: node at which the completion was recorded.
    """

    op_id: Hashable
    round: int
    result: Any
    at_node: int


class DelayRecorder:
    """Collects operation completions during a simulation run."""

    def __init__(self) -> None:
        self._records: dict[Hashable, OperationRecord] = {}

    def record(self, op_id: Hashable, round_: int, *, result: Any, at_node: int) -> None:
        """Record the completion of ``op_id`` at round ``round_``.

        Raises:
            ProtocolViolation: if the operation already completed.
        """
        if op_id in self._records:
            raise ProtocolViolation(f"operation {op_id!r} completed twice")
        self._records[op_id] = OperationRecord(op_id, round_, result, at_node)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, op_id: Hashable) -> bool:
        return op_id in self._records

    def record_for(self, op_id: Hashable) -> OperationRecord:
        """The full completion record of one operation."""
        return self._records[op_id]

    def delay_by_op(self) -> dict[Hashable, int]:
        """Mapping operation id -> completion round."""
        return {op: rec.round for op, rec in self._records.items()}

    def result_by_op(self) -> dict[Hashable, Any]:
        """Mapping operation id -> protocol result value."""
        return {op: rec.result for op, rec in self._records.items()}

    def total_delay(self) -> int:
        """Sum of completion rounds — the paper's cost of this execution."""
        return sum(rec.round for rec in self._records.values())

    def max_delay(self) -> int:
        """Largest single completion round (0 if no operations)."""
        return max((rec.round for rec in self._records.values()), default=0)

    def records(self) -> list[OperationRecord]:
        """All completion records, sorted by (round, op id repr)."""
        return sorted(self._records.values(), key=lambda r: (r.round, repr(r.op_id)))


@dataclass(slots=True, frozen=True)
class DelaySummary:
    """Reduced view of a set of operation delays."""

    count: int
    total: int
    maximum: int
    mean: float

    def to_dict(self) -> dict[str, float | int]:
        """JSON-safe form (what metrics exports and reports embed)."""
        return {
            "count": self.count,
            "total": self.total,
            "max": self.maximum,
            "mean": self.mean,
        }


def summarize_delays(delays: Mapping[Hashable, int] | Iterable[int]) -> DelaySummary:
    """Reduce per-operation delays to (count, total, max, mean).

    Accepts either the mapping from :meth:`DelayRecorder.delay_by_op` or a
    bare iterable of rounds.
    """
    values = list(delays.values()) if isinstance(delays, Mapping) else list(delays)
    n = len(values)
    total = sum(values)
    return DelaySummary(
        count=n,
        total=total,
        maximum=max(values, default=0),
        mean=(total / n) if n else 0.0,
    )
