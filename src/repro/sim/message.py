"""The unit of communication in the synchronous model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class Message:
    """A single message traversing one link of the network.

    Messages are created by :meth:`repro.sim.node.NodeContext.send` and are
    delivered exactly one round after they leave the sender's outbox (unit
    link delay).  A message that arrives at a saturated receiver waits on
    its incoming link in FIFO order; ``sent_at`` records when it entered
    the link and ``delivered_at`` when the receiver actually processed it,
    so the difference (minus one, the link latency) is the contention delay
    it suffered at the receiver.

    Attributes:
        src: sender node id.
        dst: receiver node id (must be a neighbor of ``src``).
        kind: short protocol-defined tag, e.g. ``"queue"`` or ``"reply"``.
        payload: protocol-defined content; treated as opaque by the engine.
        sent_at: round in which the message entered the link (set by the
            engine; ``-1`` until then).
        ready_at: earliest round the message can be received — ``sent_at``
            plus the link delay assigned by the network's delay model
            (1 in the paper's synchronous model).
        delivered_at: round in which the receiver processed the message
            (set by the engine; ``-1`` until then).
        seq: global creation sequence number, used only for deterministic
            tie-breaking.
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    sent_at: int = -1
    ready_at: int = -1
    delivered_at: int = -1
    seq: int = field(default=-1, compare=False)

    def link_wait(self) -> int:
        """Rounds this message waited beyond its link delay.

        Returns ``delivered_at - ready_at``; zero for an uncontended
        delivery.  Raises :class:`ValueError` if the message has not been
        delivered yet.
        """
        if self.sent_at < 0 or self.delivered_at < 0:
            raise ValueError("message has not completed its traversal")
        return self.delivered_at - self.ready_at
