"""Optional event tracing for debugging and protocol validation.

Tracing is off by default (the engine takes ``trace=None``) because a
trace of a Theta(n^2)-round run is large.  Tests use it to assert engine
invariants such as "no node received more than ``recv_capacity`` messages
in any round".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(slots=True, frozen=True)
class TraceEvent:
    """One engine event.

    Attributes:
        kind: ``"enqueue"`` (protocol called send), ``"send"`` (message
            entered a link), ``"deliver"`` (message processed by receiver),
            or ``"complete"`` (operation finished).  With a fault plan
            attached the injector adds ``"drop"``, ``"duplicate"``,
            ``"crash"`` and ``"recover"`` events.
        round: round in which the event happened.
        data: event-specific fields (src, dst, kind of message, ...).
    """

    kind: str
    round: int
    data: dict[str, Any]


class EventTrace:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: str, round_: int, **data: Any) -> None:
        """Append one event (called by the engine).

        ``event`` is the engine event type; ``data`` may carry a ``kind``
        key for the *message* kind without colliding.
        """
        self.events.append(TraceEvent(event, round_, data))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def slice(self, start_round: int, end_round: int | None = None) -> "EventTrace":
        """A new trace holding the events of rounds ``[start, end]``.

        ``end_round=None`` means "through the last recorded round".
        Event objects are shared (they are frozen), order is preserved.
        Violation reports and chaos reproducers embed these windows.
        """
        out = EventTrace()
        out.events = [
            e
            for e in self.events
            if e.round >= start_round
            and (end_round is None or e.round <= end_round)
        ]
        return out

    def to_json(self) -> str:
        """Serialize to a JSON string round-tripping via :meth:`from_json`.

        Tuples inside event data (e.g. arrow op ids like ``("op", 3)``)
        are tagged as ``{"__tuple__": [...]}`` so the round trip restores
        them as tuples, keeping replayed traces ``==``-comparable to live
        ones.
        """
        import json

        def enc(value: Any) -> Any:
            if isinstance(value, tuple):
                return {"__tuple__": [enc(v) for v in value]}
            if isinstance(value, list):
                return [enc(v) for v in value]
            if isinstance(value, dict):
                return {k: enc(v) for k, v in value.items()}
            return value

        return json.dumps(
            [[e.kind, e.round, enc(e.data)] for e in self.events],
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "EventTrace":
        """Rebuild a trace serialized by :meth:`to_json`."""
        import json

        def dec(value: Any) -> Any:
            if isinstance(value, dict):
                if set(value) == {"__tuple__"}:
                    return tuple(dec(v) for v in value["__tuple__"])
                return {k: dec(v) for k, v in value.items()}
            if isinstance(value, list):
                return [dec(v) for v in value]
            return value

        out = cls()
        out.events = [
            TraceEvent(kind, round_, dec(data))
            for kind, round_, data in json.loads(text)
        ]
        return out

    def fault_events(self) -> list[TraceEvent]:
        """All injected-fault events (drop/duplicate/crash/recover), in order."""
        kinds = ("drop", "duplicate", "crash", "recover")
        return [e for e in self.events if e.kind in kinds]

    def last_round(self) -> int:
        """The latest round any event was recorded in (0 when empty)."""
        return max((e.round for e in self.events), default=0)

    def deliveries_per_node_round(self) -> Counter[tuple[int, int]]:
        """Counter ``(node, round) -> deliveries`` for capacity checks."""
        c: Counter[tuple[int, int]] = Counter()
        for e in self.of_kind("deliver"):
            c[(e.data["dst"], e.round)] += 1
        return c

    def sends_per_node_round(self) -> Counter[tuple[int, int]]:
        """Counter ``(node, round) -> link entries`` for capacity checks."""
        c: Counter[tuple[int, int]] = Counter()
        for e in self.of_kind("send"):
            c[(e.data["src"], e.round)] += 1
        return c

    def max_deliveries_in_a_round(self) -> int:
        """Largest number of deliveries any node processed in one round."""
        per = self.deliveries_per_node_round()
        return max(per.values(), default=0)

    def max_sends_in_a_round(self) -> int:
        """Largest number of link entries any node made in one round."""
        per = self.sends_per_node_round()
        return max(per.values(), default=0)
