"""Optional event tracing for debugging and protocol validation.

Tracing is off by default (the engine takes ``trace=None``) because a
trace of a Theta(n^2)-round run is large.  Tests use it to assert engine
invariants such as "no node received more than ``recv_capacity`` messages
in any round".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(slots=True, frozen=True)
class TraceEvent:
    """One engine event.

    Attributes:
        kind: ``"enqueue"`` (protocol called send), ``"send"`` (message
            entered a link), ``"deliver"`` (message processed by receiver),
            or ``"complete"`` (operation finished).  With a fault plan
            attached the injector adds ``"drop"``, ``"duplicate"``,
            ``"crash"`` and ``"recover"`` events.
        round: round in which the event happened.
        data: event-specific fields (src, dst, kind of message, ...).
    """

    kind: str
    round: int
    data: dict[str, Any]


class EventTrace:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: str, round_: int, **data: Any) -> None:
        """Append one event (called by the engine).

        ``event`` is the engine event type; ``data`` may carry a ``kind``
        key for the *message* kind without colliding.
        """
        self.events.append(TraceEvent(event, round_, data))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def fault_events(self) -> list[TraceEvent]:
        """All injected-fault events (drop/duplicate/crash/recover), in order."""
        kinds = ("drop", "duplicate", "crash", "recover")
        return [e for e in self.events if e.kind in kinds]

    def last_round(self) -> int:
        """The latest round any event was recorded in (0 when empty)."""
        return max((e.round for e in self.events), default=0)

    def deliveries_per_node_round(self) -> Counter[tuple[int, int]]:
        """Counter ``(node, round) -> deliveries`` for capacity checks."""
        c: Counter[tuple[int, int]] = Counter()
        for e in self.of_kind("deliver"):
            c[(e.data["dst"], e.round)] += 1
        return c

    def sends_per_node_round(self) -> Counter[tuple[int, int]]:
        """Counter ``(node, round) -> link entries`` for capacity checks."""
        c: Counter[tuple[int, int]] = Counter()
        for e in self.of_kind("send"):
            c[(e.data["src"], e.round)] += 1
        return c

    def max_deliveries_in_a_round(self) -> int:
        """Largest number of deliveries any node processed in one round."""
        per = self.deliveries_per_node_round()
        return max(per.values(), default=0)

    def max_sends_in_a_round(self) -> int:
        """Largest number of link entries any node made in one round."""
        per = self.sends_per_node_round()
        return max(per.values(), default=0)
