"""Human-readable execution timelines from an event trace.

For teaching and debugging: render a small run round by round, showing
which messages moved where and which operations completed.  Used by the
quickstart material and by tests that assert specific round-by-round
behaviour of the arrow protocol.
"""

from __future__ import annotations

from collections import defaultdict

from repro.sim.trace import EventTrace


def render_timeline(trace: EventTrace, max_rounds: int | None = None) -> str:
    """Render a trace as one line per round.

    Each round shows message deliveries (``src->dst kind``, with a
    ``+wait`` suffix when the message waited at the receiver beyond its
    link delay) and operation completions (``node!op``).  Injected
    faults render too: drops as ``src-x>dst kind`` (with `` (outage)``
    when a link outage ate the message rather than random loss),
    duplicated sends as ``src=>dst kind x2``, and crash windows as
    ``crash node`` / ``recover node``.

    Args:
        trace: the engine trace (pass ``trace=EventTrace()`` to the
            network to collect one).
        max_rounds: truncate the rendering after this many rounds.
    """
    by_round: dict[int, list[str]] = defaultdict(list)
    for e in trace.events:
        if e.kind == "deliver":
            wait = e.data.get("wait", 0)
            suffix = f"+{wait}" if wait else ""
            by_round[e.round].append(
                f"{e.data['src']}->{e.data['dst']} {e.data['kind']}{suffix}"
            )
        elif e.kind == "complete":
            by_round[e.round].append(f"{e.data['node']}!{e.data['op']}")
        elif e.kind == "drop":
            suffix = " (outage)" if e.data.get("reason") == "outage" else ""
            by_round[e.round].append(
                f"{e.data['src']}-x>{e.data['dst']} {e.data['kind']}{suffix}"
            )
        elif e.kind == "duplicate":
            by_round[e.round].append(
                f"{e.data['src']}=>{e.data['dst']} {e.data['kind']} x2"
            )
        elif e.kind in ("crash", "recover"):
            by_round[e.round].append(f"{e.kind} {e.data['node']}")
    if not by_round:
        return "(no events)"
    rounds = sorted(by_round)
    if max_rounds is not None:
        rounds = rounds[:max_rounds]
    width = len(str(rounds[-1]))
    lines = [
        f"r{r:>{width}}: " + " | ".join(by_round[r]) for r in rounds
    ]
    if max_rounds is not None and len(by_round) > max_rounds:
        lines.append(f"... ({len(by_round) - max_rounds} more rounds)")
    return "\n".join(lines)


def message_flow_summary(trace: EventTrace) -> dict[str, int]:
    """Per message-kind delivery counts (a quick protocol fingerprint)."""
    out: dict[str, int] = defaultdict(int)
    for e in trace.of_kind("deliver"):
        out[e.data["kind"]] += 1
    return dict(sorted(out.items()))
