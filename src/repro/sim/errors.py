"""Exception types raised by the simulator."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class CapacityError(SimulationError):
    """Raised when a capacity parameter is invalid (must be >= 1)."""


class RoundLimitExceeded(SimulationError):
    """Raised when a run does not quiesce within ``max_rounds`` rounds.

    Either the protocol genuinely diverges or the caller's round budget was
    too small for the instance size.  The exception carries the round limit
    so harnesses can report it.
    """

    def __init__(self, max_rounds: int, in_flight: int) -> None:
        self.max_rounds = max_rounds
        self.in_flight = in_flight
        super().__init__(
            f"simulation did not quiesce within {max_rounds} rounds "
            f"({in_flight} messages still in flight or queued)"
        )


class ProtocolViolation(SimulationError):
    """Raised when a protocol implementation breaks a model rule.

    Examples: sending to a non-neighbor, sending from inside ``on_start``
    of a node that is not part of the network, or completing the same
    operation twice.
    """
