"""Exception types raised by the simulator."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class CapacityError(SimulationError):
    """Raised when a capacity parameter is invalid (must be >= 1)."""


class RoundLimitExceeded(SimulationError):
    """Raised when a run does not quiesce within ``max_rounds`` rounds.

    Either the protocol genuinely diverges, the caller's round budget was
    too small for the instance size, or (under fault injection) a message
    was silently lost and nobody retried it.  Beyond the round limit the
    exception carries the deadlock evidence a debugger wants first:

    Attributes:
        max_rounds: the exhausted round budget.
        in_flight: messages still in flight or queued.
        pending_nodes: sorted ids of nodes with undelivered inbound or
            unsent outbound messages — the nodes whose operations are
            still pending.
        oldest: ``(kind, src, dst, sent_at)`` of the oldest undelivered
            message (``sent_at`` is ``-1`` for a message still in its
            sender's outbox), or ``None`` when nothing is queued.
    """

    def __init__(
        self,
        max_rounds: int,
        in_flight: int,
        pending_nodes: tuple[int, ...] = (),
        oldest: tuple[str, int, int, int] | None = None,
    ) -> None:
        self.max_rounds = max_rounds
        self.in_flight = in_flight
        self.pending_nodes = tuple(pending_nodes)
        self.oldest = oldest
        detail = ""
        if self.pending_nodes:
            shown = ", ".join(map(str, self.pending_nodes[:8]))
            more = "..." if len(self.pending_nodes) > 8 else ""
            detail += f"; nodes with pending operations: [{shown}{more}]"
        if oldest is not None:
            kind, src, dst, sent_at = oldest
            when = f"sent at round {sent_at}" if sent_at >= 0 else "never sent"
            detail += f"; oldest undelivered: {kind!r} {src}->{dst} ({when})"
        super().__init__(
            f"simulation did not quiesce within {max_rounds} rounds "
            f"({in_flight} messages still in flight or queued){detail}"
        )


class InvariantViolation(SimulationError):
    """A resilience monitor caught a safety-invariant breach mid-run.

    Raised at the end of the round in which the breach became visible,
    while the whole network state is still live — unlike post-hoc
    verification, the offending round, nodes, and surrounding trace
    window are all known exactly.

    Attributes:
        invariant: the monitor's invariant name, e.g.
            ``"counting.rank-uniqueness"``, ``"arrow.single-sink"``,
            or ``"mutex.token-uniqueness"``.
        round: the round whose end-of-round check failed.
        nodes: sorted ids of the offending nodes.
        detail: human-readable description of the breach.
        trace_slice: an :class:`~repro.sim.trace.EventTrace` covering the
            rounds around the breach, or ``None`` when the run was not
            traced.
    """

    def __init__(
        self,
        invariant: str,
        round_: int,
        nodes: tuple[int, ...] = (),
        detail: str = "",
        trace_slice=None,
    ) -> None:
        self.invariant = invariant
        self.round = round_
        self.nodes = tuple(sorted(nodes))
        self.detail = detail
        self.trace_slice = trace_slice
        at = ", ".join(map(str, self.nodes[:8]))
        more = "..." if len(self.nodes) > 8 else ""
        where = f" at nodes [{at}{more}]" if self.nodes else ""
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"invariant {invariant!r} violated in round {round_}{where}{suffix}"
        )


class StallDetected(SimulationError):
    """The watchdog diagnosed a deadlock, livelock, or stalled window.

    Replaces a bare :class:`RoundLimitExceeded` with the evidence a
    debugger wants first: who is stuck, the oldest undelivered message,
    and the state of every retry budget.

    Attributes:
        kind: ``"deadlock"`` (network quiesced with requesters
            incomplete), ``"livelock"`` (messages keep flowing but no
            completion or knowledge progress for a full window), or
            ``"stall"`` (no deliveries at all for a full window).
        round: the round in which the diagnosis fired.
        window: the progress window (rounds) that elapsed without
            progress; ``0`` for deadlocks, which are instant.
        pending_nodes: sorted ids of nodes whose operations are still
            incomplete.
        oldest: ``(kind, src, dst, sent_at)`` of the oldest undelivered
            message, or ``None`` when nothing is queued.
        retry_state: per-node retry-budget summaries
            ``{node: (pending_envelopes, max_attempts)}`` for nodes
            wrapped in the reliable adapter; empty otherwise.
        in_flight: messages still in flight or queued.
        wakeups_pending: scheduled wakeups not yet fired.
    """

    def __init__(
        self,
        kind: str,
        round_: int,
        window: int,
        pending_nodes: tuple[int, ...] = (),
        oldest: tuple[str, int, int, int] | None = None,
        retry_state: dict[int, tuple[int, int]] | None = None,
        in_flight: int = 0,
        wakeups_pending: int = 0,
    ) -> None:
        self.kind = kind
        self.round = round_
        self.window = window
        self.pending_nodes = tuple(sorted(pending_nodes))
        self.oldest = oldest
        self.retry_state = dict(retry_state or {})
        self.in_flight = in_flight
        self.wakeups_pending = wakeups_pending
        detail = ""
        if self.pending_nodes:
            shown = ", ".join(map(str, self.pending_nodes[:8]))
            more = "..." if len(self.pending_nodes) > 8 else ""
            detail += f"; stuck nodes: [{shown}{more}]"
        if oldest is not None:
            k, src, dst, sent_at = oldest
            when = f"sent at round {sent_at}" if sent_at >= 0 else "never sent"
            detail += f"; oldest undelivered: {k!r} {src}->{dst} ({when})"
        if self.retry_state:
            worst = max(self.retry_state.items(), key=lambda kv: kv[1][1])
            detail += (
                f"; worst retry budget: node {worst[0]} at "
                f"{worst[1][1]} attempts ({worst[1][0]} pending)"
            )
        window_txt = (
            "" if kind == "deadlock" else f" after {window} rounds without progress"
        )
        super().__init__(
            f"watchdog: {kind} diagnosed in round {round_}{window_txt} "
            f"({in_flight} in flight, {wakeups_pending} wakeups pending){detail}"
        )


class ProtocolViolation(SimulationError):
    """Raised when a protocol implementation breaks a model rule.

    Examples: sending to a non-neighbor, sending from inside ``on_start``
    of a node that is not part of the network, or completing the same
    operation twice.
    """


class StrictModeViolation(ProtocolViolation):
    """Raised in strict mode when a node exceeds a per-round budget.

    The engine always *enforces* the capacities by queuing excess
    messages; strict mode additionally *asserts* that no queuing was
    needed — i.e. that the protocol genuinely sends at most
    ``send_capacity`` and has at most ``recv_capacity`` messages ready
    per node per round.  Protocols whose delay analysis assumes zero
    contention (e.g. a combining tree on its own spanning tree) can opt
    in to catch accidental budget overruns instead of silently absorbing
    them as extra delay.
    """

    def __init__(self, node_id: int, round_: int, phase: str, budget: int) -> None:
        self.node_id = node_id
        self.round = round_
        self.phase = phase
        self.budget = budget
        super().__init__(
            f"strict mode: node {node_id} exceeded its per-round {phase} "
            f"budget of {budget} in round {round_}"
        )
