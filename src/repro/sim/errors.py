"""Exception types raised by the simulator."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class CapacityError(SimulationError):
    """Raised when a capacity parameter is invalid (must be >= 1)."""


class RoundLimitExceeded(SimulationError):
    """Raised when a run does not quiesce within ``max_rounds`` rounds.

    Either the protocol genuinely diverges, the caller's round budget was
    too small for the instance size, or (under fault injection) a message
    was silently lost and nobody retried it.  Beyond the round limit the
    exception carries the deadlock evidence a debugger wants first:

    Attributes:
        max_rounds: the exhausted round budget.
        in_flight: messages still in flight or queued.
        pending_nodes: sorted ids of nodes with undelivered inbound or
            unsent outbound messages — the nodes whose operations are
            still pending.
        oldest: ``(kind, src, dst, sent_at)`` of the oldest undelivered
            message (``sent_at`` is ``-1`` for a message still in its
            sender's outbox), or ``None`` when nothing is queued.
    """

    def __init__(
        self,
        max_rounds: int,
        in_flight: int,
        pending_nodes: tuple[int, ...] = (),
        oldest: tuple[str, int, int, int] | None = None,
    ) -> None:
        self.max_rounds = max_rounds
        self.in_flight = in_flight
        self.pending_nodes = tuple(pending_nodes)
        self.oldest = oldest
        detail = ""
        if self.pending_nodes:
            shown = ", ".join(map(str, self.pending_nodes[:8]))
            more = "..." if len(self.pending_nodes) > 8 else ""
            detail += f"; nodes with pending operations: [{shown}{more}]"
        if oldest is not None:
            kind, src, dst, sent_at = oldest
            when = f"sent at round {sent_at}" if sent_at >= 0 else "never sent"
            detail += f"; oldest undelivered: {kind!r} {src}->{dst} ({when})"
        super().__init__(
            f"simulation did not quiesce within {max_rounds} rounds "
            f"({in_flight} messages still in flight or queued){detail}"
        )


class ProtocolViolation(SimulationError):
    """Raised when a protocol implementation breaks a model rule.

    Examples: sending to a non-neighbor, sending from inside ``on_start``
    of a node that is not part of the network, or completing the same
    operation twice.
    """


class StrictModeViolation(ProtocolViolation):
    """Raised in strict mode when a node exceeds a per-round budget.

    The engine always *enforces* the capacities by queuing excess
    messages; strict mode additionally *asserts* that no queuing was
    needed — i.e. that the protocol genuinely sends at most
    ``send_capacity`` and has at most ``recv_capacity`` messages ready
    per node per round.  Protocols whose delay analysis assumes zero
    contention (e.g. a combining tree on its own spanning tree) can opt
    in to catch accidental budget overruns instead of silently absorbing
    them as extra delay.
    """

    def __init__(self, node_id: int, round_: int, phase: str, budget: int) -> None:
        self.node_id = node_id
        self.round = round_
        self.phase = phase
        self.budget = budget
        super().__init__(
            f"strict mode: node {node_id} exceeded its per-round {phase} "
            f"budget of {budget} in round {round_}"
        )
