"""Link-delay models: the synchronous model and asynchronous extensions.

The paper's model (Section 2.1) has every link deliver in exactly one
round; Section 2.1 also notes that the *lower bounds* carry over to the
asynchronous model, where link delays are unpredictable.  These delay
models let the experiments probe that claim: protocols run unchanged
while an adversary (deterministic, seeded) stretches individual message
delays, and the correctness validators plus the separation checks are
re-applied.

A delay model is a callable ``(msg) -> int`` returning the link delay
(>= 1) for one message.  Links remain FIFO: a delayed message still
blocks the messages sent after it on the same link, matching the
reliable-FIFO-link assumption.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.sim.message import Message

#: A link-delay model: maps one message to its link delay in rounds (>= 1).
DelayModel = Callable[[Message], int]


def _det_uniform(seed: int, key: tuple[object, ...], lo: int, hi: int) -> int:
    """Deterministic pseudo-uniform integer in ``[lo, hi]`` from a key."""
    h = hashlib.blake2b(repr((seed, key)).encode(), digest_size=8).digest()
    return lo + int.from_bytes(h, "big") % (hi - lo + 1)


@dataclass(frozen=True)
class ConstantDelay:
    """Every message takes exactly ``delay`` rounds on its link.

    ``ConstantDelay(1)`` is the paper's synchronous model; larger values
    model uniformly slower links (a pure time rescaling).
    """

    delay: int = 1

    def __post_init__(self) -> None:
        if self.delay < 1:
            raise ValueError(f"link delay must be >= 1, got {self.delay}")

    def __call__(self, msg: Message) -> int:
        return self.delay


@dataclass(frozen=True)
class UniformDelay:
    """Each message independently takes a delay in ``[lo, hi]`` (seeded).

    The draw is a deterministic function of the message's creation
    sequence number, so runs are exactly reproducible.
    """

    lo: int = 1
    hi: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not (1 <= self.lo <= self.hi):
            raise ValueError(f"need 1 <= lo <= hi, got [{self.lo}, {self.hi}]")

    def __call__(self, msg: Message) -> int:
        return _det_uniform(self.seed, ("u", msg.seq), self.lo, self.hi)


@dataclass(frozen=True)
class TargetedDelay:
    """An adversary that slows every message crossing selected links.

    Messages traversing a link in ``slow_links`` (as ordered ``(src, dst)``
    pairs) take ``slow`` rounds; everything else takes 1.  Models a
    congested cut or a laggy region of the network.
    """

    slow_links: frozenset[tuple[int, int]]
    slow: int = 5

    def __post_init__(self) -> None:
        if self.slow < 1:
            raise ValueError(f"slow delay must be >= 1, got {self.slow}")

    def __call__(self, msg: Message) -> int:
        if (msg.src, msg.dst) in self.slow_links:
            return self.slow
        return 1


@dataclass(frozen=True)
class KindDelay:
    """Delay by message kind — e.g. slow down only ``queue`` traffic.

    Useful for asymmetric adversaries that stress one protocol phase.
    """

    delays: tuple[tuple[str, int], ...]
    default: int = 1

    def __call__(self, msg: Message) -> int:
        for kind, d in self.delays:
            if msg.kind == kind:
                return d
        return self.default
