"""Synchronous message-passing network simulator.

This package implements the exact computation model of Busch & Tirthapura,
"Concurrent counting is harder than queuing" (Section 2.1):

* the distributed system is a connected undirected graph ``G = (V, E)``;
* every communication link is reliable, FIFO, and has a delay of exactly
  one time unit;
* in each synchronous round a processor may *send* at most ``send_capacity``
  messages and *receive* at most ``recv_capacity`` messages (both default
  to the paper's strict value of one), then perform local computation.

The restriction to one message sent/received per round is what rules out
trivial all-to-all protocols and is the source of all contention lower
bounds in the paper.  The simulator therefore enforces it exactly:
messages that cannot be received in a round wait, in FIFO order, on their
incoming link, and messages that cannot be sent wait in the sender's
outbox.  All arbitration is deterministic so that every run is exactly
reproducible.

The paper's "expanded time step" convention (end of Section 4, used so
that the arrow protocol can process up to ``deg`` simultaneous messages on
a constant-degree spanning tree) is modelled by setting the capacities to
the tree degree; this changes delays by at most a constant factor, which
is all the asymptotic statements need.
"""

from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    KindDelay,
    TargetedDelay,
    UniformDelay,
)
from repro.sim.errors import (
    SimulationError,
    CapacityError,
    RoundLimitExceeded,
    ProtocolViolation,
    StrictModeViolation,
)
from repro.sim.message import Message
from repro.sim.node import Node, NodeContext
from repro.sim.network import (
    SynchronousNetwork,
    RunStats,
    engine_fast_path,
    run_protocol,
)
from repro.sim.metrics import DelayRecorder, OperationRecord, summarize_delays
from repro.sim.timeline import message_flow_summary, render_timeline
from repro.sim.trace import EventTrace, TraceEvent

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "UniformDelay",
    "TargetedDelay",
    "KindDelay",
    "SimulationError",
    "CapacityError",
    "RoundLimitExceeded",
    "ProtocolViolation",
    "StrictModeViolation",
    "Message",
    "Node",
    "NodeContext",
    "SynchronousNetwork",
    "RunStats",
    "engine_fast_path",
    "run_protocol",
    "DelayRecorder",
    "OperationRecord",
    "summarize_delays",
    "EventTrace",
    "TraceEvent",
    "render_timeline",
    "message_flow_summary",
]
