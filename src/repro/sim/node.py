"""Protocol node base class and the context API the engine exposes to it."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.sim.errors import ProtocolViolation
from repro.sim.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import SynchronousNetwork


class NodeContext:
    """The engine-side API handed to a node's callbacks.

    A context is bound to one node of one network.  All interaction with
    the world — sending messages, learning the current round, reporting
    operation completion — goes through it, which keeps protocol code free
    of engine internals and makes the model rules (neighbors only,
    capacities, unit delay) enforceable in one place.
    """

    __slots__ = ("_network", "_node_id", "_neighbors", "_nbr_set")

    def __init__(self, network: "SynchronousNetwork", node_id: int) -> None:
        self._network = network
        self._node_id = node_id
        self._neighbors = network.neighbors(node_id)
        self._nbr_set = network.neighbor_set(node_id)

    @property
    def node_id(self) -> int:
        """Id of the node this context is bound to."""
        return self._node_id

    @property
    def now(self) -> int:
        """The current round number (0 during ``on_start``)."""
        return self._network.now

    @property
    def neighbors(self) -> tuple[int, ...]:
        """The node's neighbors in the communication graph, sorted."""
        return self._neighbors

    def send(self, dst: int, kind: str, payload: Any = None) -> Message:
        """Enqueue a message to neighbor ``dst``.

        The message leaves the node's outbox subject to the per-round send
        capacity and arrives one round after it leaves.  Returns the
        :class:`Message` so callers may inspect it after the run.

        Raises:
            ProtocolViolation: if ``dst`` is not a neighbor of this node.
        """
        if dst not in self._nbr_set:
            raise ProtocolViolation(
                f"node {self._node_id} tried to send to non-neighbor {dst}"
            )
        return self._network._enqueue_send(self._node_id, dst, kind, payload)

    def complete(self, op_id: Any, result: Any = None) -> None:
        """Report that operation ``op_id`` received its response this round.

        The engine records the completion round in its
        :class:`~repro.sim.metrics.DelayRecorder`.  Completing the same
        operation twice raises :class:`ProtocolViolation`.
        """
        self._network._record_completion(op_id, result, self._node_id)

    def schedule_wakeup(self, round_: int) -> None:
        """Ask the engine to call this node's ``on_wake`` in round ``round_``.

        Used by long-lived protocols whose nodes act at predetermined
        times without having received a message (e.g. staggered request
        arrivals).  The round must be in the future.

        Raises:
            ProtocolViolation: if ``round_`` is not strictly after the
                current round.
        """
        self._network._schedule_wakeup(self._node_id, round_)


class Node:
    """Base class for all protocol nodes.

    Subclasses override :meth:`on_start` (called once, in round 0, for
    every node — this is where requesters issue their operations) and
    :meth:`on_receive` (called once per delivered message).  Both receive
    the node's :class:`NodeContext`.

    The base class stores the node id and nothing else; protocol state
    lives in subclasses.
    """

    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: NodeContext) -> None:
        """Hook run in round 0, before any message is delivered."""

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        """Hook run when a message is delivered to this node."""

    def on_wake(self, ctx: NodeContext) -> None:
        """Hook run in a round this node scheduled via ``schedule_wakeup``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(node_id={self.node_id})"


def make_nodes(factory: Callable[[int], Node], node_ids: Iterable[int]) -> dict[int, Node]:
    """Build a node map ``{id: factory(id)}`` for all ``node_ids``.

    A small convenience used by protocol runners.
    """
    return {v: factory(v) for v in node_ids}
