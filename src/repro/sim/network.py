"""The synchronous round-based execution engine.

The engine implements the model of Section 2.1 of the paper exactly:

* unit link delay: a message sent in round ``t`` is receivable from round
  ``t + 1`` on;
* per-round send capacity: each node moves at most ``send_capacity``
  messages from its outbox onto links per round (excess messages wait in
  FIFO order — *send contention*);
* per-round receive capacity: each node processes at most
  ``recv_capacity`` messages per round, in deterministic
  ``(sent_at, creation seq)`` order across its incoming links, with FIFO
  order preserved per link (excess messages wait on the link — *receive
  contention*);
* all remaining computation is local and free.

The engine is event-driven within the round structure: per round it only
touches nodes that have something to receive or send, so the total work is
proportional to the total number of message-rounds, not ``rounds x n``.
This matters because the paper's contention bounds make some protocols run
for Theta(n^2) rounds.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.errors import (
    CapacityError,
    ProtocolViolation,
    RoundLimitExceeded,
    StrictModeViolation,
)
from repro.sim.message import Message
from repro.sim.metrics import DelayRecorder
from repro.sim.node import Node, NodeContext
from repro.sim.trace import EventTrace


@dataclass(slots=True)
class RunStats:
    """Aggregate accounting for one simulation run.

    Attributes:
        rounds: number of rounds executed until quiescence (the round in
            which the last message was delivered).
        messages_sent: messages that entered a link.
        messages_delivered: messages processed by a receiver.
        max_send_backlog: largest outbox length observed.
        max_recv_backlog: largest single-link queue length observed.
        total_link_wait: sum over delivered messages of the rounds they
            waited at the receiver beyond the unit link delay — the total
            receive contention in the run.
        messages_dropped: messages lost at link entry by an injected
            fault (random loss or link outage); zero without a fault plan.
        messages_duplicated: extra copies injected onto links by a fault
            plan; each copy also counts in ``messages_sent`` once it is
            on the link.
        node_crashes: crash windows entered during the run.
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    max_send_backlog: int = 0
    max_recv_backlog: int = 0
    total_link_wait: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    node_crashes: int = 0


def _as_adjacency(graph: Any) -> dict[int, tuple[int, ...]]:
    """Normalize a graph-like input to a sorted adjacency dict.

    Accepts a :class:`repro.topology.Graph` (anything with an ``adj``
    mapping), a plain mapping ``{node: neighbors}``, or an iterable of
    edges ``(u, v)``.
    """
    if hasattr(graph, "adj"):
        raw: Mapping[int, Sequence[int]] = graph.adj
        return {v: tuple(sorted(raw[v])) for v in raw}
    if isinstance(graph, Mapping):
        return {v: tuple(sorted(graph[v])) for v in graph}
    adj: dict[int, set[int]] = {}
    for u, v in graph:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}


class SynchronousNetwork:
    """A synchronous message-passing network over a fixed graph.

    Args:
        graph: the communication graph (see :func:`_as_adjacency` for the
            accepted forms).
        nodes: mapping from node id to the :class:`Node` protocol object
            for that id; must cover every vertex of the graph.
        send_capacity: messages a node may send per round (paper: 1).
        recv_capacity: messages a node may receive per round (paper: 1;
            the arrow protocol uses the spanning-tree degree, the paper's
            "expanded time step" convention).
        delay_model: callable ``(msg) -> int`` giving each message's link
            delay; defaults to the paper's synchronous unit delay.  See
            :mod:`repro.sim.delays` for the asynchronous extensions.
        trace: optional :class:`EventTrace` to record engine events into.
        metrics: optional :class:`repro.obs.MetricsRegistry` (duck-typed:
            anything with ``inc``/``set_gauge``/``observe``/``sample``).
            When attached, the engine publishes message counters, per-op
            completion-delay and link-wait histograms, and per-round
            in-flight/backlog gauges; when ``None`` (the default) every
            instrumented call site reduces to one ``is not None`` check,
            so the run is unobserved at zero cost.  ``RunStats`` stays
            the always-on thin aggregate view; an attached registry
            reproduces it exactly (``metrics.run_stats_view()``).
        profiler: optional :class:`repro.obs.PhaseProfiler` (duck-typed:
            ``clock``/``add``/``tick_round``).  Times the engine phases
            (send drain, delivery, wakeups, fault ticks, and the nested
            protocol ``on_receive`` compute) per executed round.  Pure
            observation: a profiled run is event-for-event identical to
            an unprofiled one.
        strict: when true, exceeding a per-round send or receive budget
            raises :class:`StrictModeViolation` instead of queuing the
            excess.  Opt-in: contention-by-design protocols (the paper's
            main subject) must leave this off.
        faults: optional :class:`repro.faults.FaultPlan` describing
            message drops, duplications, link outages, and node crashes
            to inject (see :mod:`repro.faults`).  An empty plan (or
            ``None``) leaves every code path untouched, so the run is
            byte-for-byte identical to a fault-free one.

    Typical use::

        net = SynchronousNetwork(graph, nodes)
        stats = net.run(max_rounds=10_000)
        delays = net.delays.delay_by_op()
    """

    def __init__(
        self,
        graph: Any,
        nodes: Mapping[int, Node],
        *,
        send_capacity: int = 1,
        recv_capacity: int = 1,
        delay_model: DelayModel | None = None,
        trace: EventTrace | None = None,
        metrics: Any | None = None,
        profiler: Any | None = None,
        strict: bool = False,
        faults: Any | None = None,
    ) -> None:
        if send_capacity < 1:
            raise CapacityError(f"send_capacity must be >= 1, got {send_capacity}")
        if recv_capacity < 1:
            raise CapacityError(f"recv_capacity must be >= 1, got {recv_capacity}")
        self._adj = _as_adjacency(graph)
        missing = set(self._adj) - set(nodes)
        if missing:
            raise ProtocolViolation(f"no Node object for vertices {sorted(missing)[:5]}...")
        self._nodes: dict[int, Node] = dict(nodes)
        self._nbr_sets = {v: frozenset(nbrs) for v, nbrs in self._adj.items()}
        self.send_capacity = send_capacity
        self.recv_capacity = recv_capacity
        self.delay_model = delay_model if delay_model is not None else ConstantDelay(1)
        self.now = 0
        self.delays = DelayRecorder()
        self.stats = RunStats()
        self.trace = trace
        # Observability hooks (see repro.obs).  Both are duck-typed so the
        # engine never imports the obs package; None disables publishing.
        self.metrics = metrics
        self.profiler = profiler
        self.strict = strict
        # Runtime fault state, or None for fault-free runs.  Duck-typed
        # (see repro.faults.injector.FaultInjector) so the engine never
        # imports the faults package.
        self._injector = faults.injector() if faults is not None else None
        # Strict-mode send accounting: node -> (round, sends so far).
        self._send_budget: dict[int, tuple[int, int]] = {}

        # Per directed link (u, v): FIFO queue of messages in transit or
        # waiting to be received at v.
        self._links: dict[tuple[int, int], deque[Message]] = {}
        # Per node: FIFO outbox of messages not yet on a link.
        self._outbox: dict[int, deque[Message]] = {}
        # Per node: heap of (ready_at, seq, src) for head-of-line messages
        # on its incoming links.  Only heads are in the heap so arbitration
        # is O(log deg) per delivery even on the star's hub.  A promoted
        # head is never receivable before the round after its predecessor
        # (per-link throughput is one message per round).
        self._ready: dict[int, list[tuple[int, int, int]]] = {}
        self._ctx: dict[int, NodeContext] = {
            v: NodeContext(self, v) for v in self._adj
        }
        self._msg_seq = 0
        self._in_flight = 0
        self._started = False
        self._wakeups: dict[int, list[int]] = {}

    # ---------------------------------------------------------------- API

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self._adj[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        """Neighbors of ``v`` as a frozenset (for membership tests)."""
        return self._nbr_sets[v]

    @property
    def node_ids(self) -> list[int]:
        """All vertex ids, sorted."""
        return sorted(self._adj)

    def node(self, v: int) -> Node:
        """The protocol object at vertex ``v``."""
        return self._nodes[v]

    def context(self, v: int) -> NodeContext:
        """The :class:`NodeContext` bound to vertex ``v``."""
        return self._ctx[v]

    def run(self, max_rounds: int = 1_000_000) -> RunStats:
        """Execute the protocol to quiescence and return run statistics.

        Round 0 calls every node's ``on_start`` (in node-id order) and
        flushes outboxes once; rounds 1, 2, ... alternate the receive and
        send phases until no message remains in any link or outbox.

        Raises:
            RoundLimitExceeded: if quiescence is not reached within
                ``max_rounds`` rounds.
            ProtocolViolation: if :meth:`run` is called twice.
        """
        if self._started:
            raise ProtocolViolation("a SynchronousNetwork can only be run once")
        self._started = True

        self.now = 0
        inj = self._injector
        met = self.metrics
        prof = self.profiler
        t_run = prof.clock() if prof is not None else 0.0
        if inj is not None:
            inj.tick(0, self.stats, self.trace, met)
        if prof is None:
            for v in sorted(self._nodes):
                self._nodes[v].on_start(self._ctx[v])
        else:
            t0 = prof.clock()
            for v in sorted(self._nodes):
                self._nodes[v].on_start(self._ctx[v])
            prof.add("node.on_start", prof.clock() - t0)
        if prof is None:
            self._send_phase()
        else:
            t0 = prof.clock()
            self._send_phase()
            prof.add("send", prof.clock() - t0)

        while self._in_flight > 0 or self._wakeups:
            self.now += 1
            if self.now > max_rounds:
                raise RoundLimitExceeded(
                    max_rounds,
                    self._in_flight,
                    pending_nodes=self._pending_nodes(),
                    oldest=self._oldest_undelivered(),
                )
            if prof is None:
                if inj is not None:
                    inj.tick(self.now, self.stats, self.trace, met)
                self._wake_phase()
                self._receive_phase()
                self._send_phase()
            else:
                prof.tick_round()
                t0 = prof.clock()
                if inj is not None:
                    inj.tick(self.now, self.stats, self.trace, met)
                    t1 = prof.clock()
                    prof.add("faults.tick", t1 - t0)
                    t0 = t1
                self._wake_phase()
                t1 = prof.clock()
                prof.add("wake", t1 - t0)
                self._receive_phase()
                t0 = prof.clock()
                prof.add("receive", t0 - t1)
                self._send_phase()
                prof.add("send", prof.clock() - t0)
            if met is not None:
                met.set_gauge("engine.in_flight", self._in_flight)
                met.sample("engine.in_flight", self.now, self._in_flight)
            self._maybe_jump(max_rounds)

        self.stats.rounds = self.now
        if met is not None:
            met.set_gauge("engine.rounds", self.now)
        if prof is not None:
            prof.wall += prof.clock() - t_run
        return self.stats

    def _pending_nodes(self) -> tuple[int, ...]:
        """Nodes with unsent outbound or undelivered inbound messages."""
        pending = {u for u, box in self._outbox.items() if box}
        for (_, dst), q in self._links.items():
            if q:
                pending.add(dst)
        return tuple(sorted(pending))

    def _oldest_undelivered(self) -> tuple[str, int, int, int] | None:
        """``(kind, src, dst, sent_at)`` of the oldest queued message."""
        oldest: Message | None = None
        for q in self._links.values():
            for m in q:
                if oldest is None or (m.sent_at, m.seq) < (oldest.sent_at, oldest.seq):
                    oldest = m
        if oldest is None:
            for box in self._outbox.values():
                for m in box:
                    if oldest is None or m.seq < oldest.seq:
                        oldest = m
        if oldest is None:
            return None
        return (oldest.kind, oldest.src, oldest.dst, oldest.sent_at)

    # ------------------------------------------------------------ engine

    def _enqueue_send(self, src: int, dst: int, kind: str, payload: Any) -> Message:
        if self.strict:
            last_round, count = self._send_budget.get(src, (-1, 0))
            count = count + 1 if last_round == self.now else 1
            self._send_budget[src] = (self.now, count)
            if count > self.send_capacity:
                raise StrictModeViolation(src, self.now, "send", self.send_capacity)
        msg = Message(src=src, dst=dst, kind=kind, payload=payload, seq=self._msg_seq)
        self._msg_seq += 1
        box = self._outbox.get(src)
        if box is None:
            box = self._outbox[src] = deque()
        box.append(msg)
        self._in_flight += 1
        if len(box) > self.stats.max_send_backlog:
            self.stats.max_send_backlog = len(box)
        if self.metrics is not None:
            self.metrics.set_gauge("engine.send_backlog", len(box))
        if self.trace is not None:
            self.trace.record("enqueue", self.now, src=src, dst=dst, kind=kind)
        return msg

    def _schedule_wakeup(self, node_id: int, round_: int) -> None:
        if round_ <= self.now:
            raise ProtocolViolation(
                f"wakeup for node {node_id} at round {round_} is not in the "
                f"future (now={self.now})"
            )
        self._wakeups.setdefault(round_, []).append(node_id)

    def _wake_phase(self) -> None:
        due = self._wakeups.pop(self.now, None)
        if not due:
            # If nothing is in flight, jump the clock to the next wakeup so
            # idle stretches of a long-lived schedule cost no work.
            if self._in_flight == 0 and self._wakeups:
                nxt = min(self._wakeups)
                if nxt > self.now:
                    self.now = nxt
                    due = self._wakeups.pop(nxt)
            if not due:
                return
        inj = self._injector
        for v in sorted(set(due)):
            if inj is not None and inj.crashed(v, self.now):
                # Crashed nodes do not act; their wakeups fire at recovery
                # (and are dropped for a permanent crash).
                rec = inj.recovery_round(v, self.now)
                if rec is not None:
                    self._wakeups.setdefault(rec, []).append(v)
                continue
            self._nodes[v].on_wake(self._ctx[v])

    def _maybe_jump(self, max_rounds: int) -> None:
        """Skip idle rounds: with long link delays nothing may be
        receivable for a while; advance the clock to the next event."""
        if self._in_flight == 0:
            return
        if any(box for box in self._outbox.values()):
            return  # something enters a link next round
        nxt = None
        for heap in self._ready.values():
            if heap and (nxt is None or heap[0][0] < nxt):
                nxt = heap[0][0]
        if self._wakeups:
            w = min(self._wakeups)
            nxt = w if nxt is None else min(nxt, w)
        if nxt is not None and nxt > self.now + 1:
            self.now = min(nxt - 1, max_rounds)

    def _record_completion(self, op_id: Any, result: Any, node_id: int) -> None:
        self.delays.record(op_id, self.now, result=result, at_node=node_id)
        if self.metrics is not None:
            self.metrics.inc("engine.completions")
            self.metrics.observe("op.delay", self.now)
        if self.trace is not None:
            self.trace.record("complete", self.now, node=node_id, op=op_id)

    def _receive_phase(self) -> None:
        t = self.now
        inj = self._injector
        met = self.metrics
        prof = self.profiler
        # Snapshot: only nodes with a non-empty ready heap can receive.
        receivers = sorted(v for v, h in self._ready.items() if h)
        for v in receivers:
            if inj is not None and inj.crashed(v, t):
                continue  # crashed receiver: messages wait on their links
            heap = self._ready[v]
            node = self._nodes[v]
            ctx = self._ctx[v]
            budget = self.recv_capacity
            while budget > 0 and heap:
                ready_at, _seq, src = heap[0]
                if ready_at > t:
                    break  # still traversing its link
                heapq.heappop(heap)
                q = self._links[(src, v)]
                msg = q.popleft()
                if q:
                    nxt = q[0]
                    heapq.heappush(heap, (max(nxt.ready_at, t + 1), nxt.seq, src))
                msg.delivered_at = t
                self._in_flight -= 1
                budget -= 1
                self.stats.messages_delivered += 1
                wait = msg.link_wait()
                self.stats.total_link_wait += wait
                if met is not None:
                    met.inc("engine.messages_delivered")
                    met.inc("engine.link_wait_total", wait)
                    met.observe("msg.link_wait", wait)
                if self.trace is not None:
                    self.trace.record(
                        "deliver", t, src=src, dst=v, kind=msg.kind, wait=wait
                    )
                if prof is None:
                    node.on_receive(msg, ctx)
                else:
                    t0 = prof.clock()
                    node.on_receive(msg, ctx)
                    prof.add("node.on_receive", prof.clock() - t0)
            if self.strict and heap and heap[0][0] <= t:
                raise StrictModeViolation(v, t, "receive", self.recv_capacity)

    def _send_phase(self) -> None:
        t = self.now
        inj = self._injector
        senders = sorted(v for v, box in self._outbox.items() if box)
        for u in senders:
            if inj is not None and inj.crashed(u, t):
                continue  # crashed sender: outbox frozen until recovery
            box = self._outbox[u]
            for _ in range(min(self.send_capacity, len(box))):
                msg = box.popleft()
                msg.sent_at = t
                verdict = None
                if inj is not None:
                    verdict = inj.on_link_entry(msg, t)
                    if verdict in ("drop", "outage"):
                        # Lost on the wire: the send slot is consumed but
                        # the message never enters the link.
                        self._in_flight -= 1
                        self.stats.messages_dropped += 1
                        if self.metrics is not None:
                            self.metrics.inc("engine.messages_dropped")
                        if self.trace is not None:
                            self.trace.record(
                                "drop", t, src=u, dst=msg.dst, kind=msg.kind,
                                reason=verdict,
                            )
                        continue
                self._link_entry(msg, u, t)
                if verdict == "duplicate":
                    clone = Message(
                        src=msg.src, dst=msg.dst, kind=msg.kind,
                        payload=msg.payload, seq=self._msg_seq,
                    )
                    self._msg_seq += 1
                    clone.sent_at = t
                    self._in_flight += 1
                    self.stats.messages_duplicated += 1
                    if self.metrics is not None:
                        self.metrics.inc("engine.messages_duplicated")
                    self._link_entry(clone, u, t)
                    if self.trace is not None:
                        self.trace.record(
                            "duplicate", t, src=u, dst=msg.dst, kind=msg.kind
                        )

    def _link_entry(self, msg: Message, u: int, t: int) -> None:
        """Place ``msg`` on its link (the fault-free tail of the send phase)."""
        msg.ready_at = t + self.delay_model(msg)
        key = (u, msg.dst)
        q = self._links.get(key)
        if q is None:
            q = self._links[key] = deque()
        q.append(msg)
        if len(q) > self.stats.max_recv_backlog:
            self.stats.max_recv_backlog = len(q)
        if len(q) == 1:
            heap = self._ready.get(msg.dst)
            if heap is None:
                heap = self._ready[msg.dst] = []
            heapq.heappush(heap, (msg.ready_at, msg.seq, u))
        self.stats.messages_sent += 1
        if self.metrics is not None:
            self.metrics.inc("engine.messages_sent")
            self.metrics.set_gauge("engine.recv_backlog", len(q))
        if self.trace is not None:
            self.trace.record("send", t, src=u, dst=msg.dst, kind=msg.kind)


def run_protocol(
    graph: Any,
    nodes: Mapping[int, Node],
    *,
    send_capacity: int = 1,
    recv_capacity: int = 1,
    max_rounds: int = 1_000_000,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
) -> SynchronousNetwork:
    """Convenience wrapper: build a network, run it, return it.

    The returned network exposes ``delays`` (per-operation completion
    rounds) and ``stats`` (aggregate accounting).
    """
    net = SynchronousNetwork(
        graph,
        nodes,
        send_capacity=send_capacity,
        recv_capacity=recv_capacity,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
    )
    net.run(max_rounds=max_rounds)
    return net
