"""The synchronous round-based execution engine.

The engine implements the model of Section 2.1 of the paper exactly:

* unit link delay: a message sent in round ``t`` is receivable from round
  ``t + 1`` on;
* per-round send capacity: each node moves at most ``send_capacity``
  messages from its outbox onto links per round (excess messages wait in
  FIFO order — *send contention*);
* per-round receive capacity: each node processes at most
  ``recv_capacity`` messages per round, in deterministic
  ``(sent_at, creation seq)`` order across its incoming links, with FIFO
  order preserved per link (excess messages wait on the link — *receive
  contention*);
* all remaining computation is local and free.

The engine is event-driven within the round structure: per round it only
touches nodes that have something to receive or send, so the total work is
proportional to the total number of message-rounds, not ``rounds x n``.
This matters because the paper's contention bounds make some protocols run
for Theta(n^2) rounds.

Two interchangeable executions of the same semantics exist (see
``docs/PERFORMANCE.md``):

* the **dense fast path** — used automatically when the vertex ids are
  the contiguous range ``0..n-1`` (true for every ``repro.topology``
  generator).  Link queues, outboxes, and ready heaps live in flat
  list-indexed arrays, the per-round "who is active" snapshots are
  maintained incrementally instead of re-derived with ``sorted()`` over
  dicts, and idle-round detection uses a shared next-event heap;
* the **generic fallback** — dict-keyed structures that accept arbitrary
  hashable vertex ids.

Both paths produce event-for-event identical executions: the same trace
events in the same order, the same stats, the same delivery schedule.
The golden-trace suite and ``tests/test_fast_path_equivalence.py`` pin
this equivalence.
"""

from __future__ import annotations

import heapq
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.sim.delays import ConstantDelay, DelayModel
from repro.sim.errors import (
    CapacityError,
    ProtocolViolation,
    RoundLimitExceeded,
    StrictModeViolation,
)
from repro.sim.message import Message
from repro.sim.metrics import DelayRecorder
from repro.sim.node import Node, NodeContext
from repro.sim.trace import EventTrace

#: Process-wide default for the dense fast path.  The fast path is
#: semantically identical to the generic one, so this stays True; tests
#: and benchmarks flip it with :func:`engine_fast_path` to compare paths.
_FAST_PATH_DEFAULT = True


@contextmanager
def engine_fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the engine's dense fast path on or off.

    Networks constructed inside the ``with`` block (without an explicit
    ``fast_path=`` argument) use ``enabled`` as their default.  Used by
    the equivalence tests and ``repro bench`` to time the generic
    fallback against the fast path on identical inputs.
    """
    global _FAST_PATH_DEFAULT
    prev = _FAST_PATH_DEFAULT
    _FAST_PATH_DEFAULT = bool(enabled)
    try:
        yield
    finally:
        _FAST_PATH_DEFAULT = prev


@dataclass(slots=True)
class RunStats:
    """Aggregate accounting for one simulation run.

    Attributes:
        rounds: number of rounds executed until quiescence (the round in
            which the last message was delivered).
        messages_sent: messages that entered a link.
        messages_delivered: messages processed by a receiver.
        max_send_backlog: largest outbox length observed.
        max_recv_backlog: largest single-link queue length observed.
        total_link_wait: sum over delivered messages of the rounds they
            waited at the receiver beyond the unit link delay — the total
            receive contention in the run.
        messages_dropped: messages lost at link entry by an injected
            fault (random loss or link outage); zero without a fault plan.
        messages_duplicated: extra copies injected onto links by a fault
            plan; each copy also counts in ``messages_sent`` once it is
            on the link.
        node_crashes: crash windows entered during the run.
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    max_send_backlog: int = 0
    max_recv_backlog: int = 0
    total_link_wait: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    node_crashes: int = 0


def _as_adjacency(graph: Any) -> dict[int, tuple[int, ...]]:
    """Normalize a graph-like input to a sorted adjacency dict.

    Accepts a :class:`repro.topology.Graph` (anything with an ``adj``
    mapping), a plain mapping ``{node: neighbors}``, or an iterable of
    edges ``(u, v)``.
    """
    if hasattr(graph, "adj"):
        raw: Mapping[int, Sequence[int]] = graph.adj
        return {v: tuple(sorted(raw[v])) for v in raw}
    if isinstance(graph, Mapping):
        return {v: tuple(sorted(graph[v])) for v in graph}
    adj: dict[int, set[int]] = {}
    for u, v in graph:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}


class SynchronousNetwork:
    """A synchronous message-passing network over a fixed graph.

    Args:
        graph: the communication graph (see :func:`_as_adjacency` for the
            accepted forms).
        nodes: mapping from node id to the :class:`Node` protocol object
            for that id; must cover every vertex of the graph and contain
            no entries for vertices outside it.
        send_capacity: messages a node may send per round (paper: 1).
        recv_capacity: messages a node may receive per round (paper: 1;
            the arrow protocol uses the spanning-tree degree, the paper's
            "expanded time step" convention).
        delay_model: callable ``(msg) -> int`` giving each message's link
            delay; defaults to the paper's synchronous unit delay.  See
            :mod:`repro.sim.delays` for the asynchronous extensions.
        trace: optional :class:`EventTrace` to record engine events into.
        metrics: optional :class:`repro.obs.MetricsRegistry` (duck-typed:
            anything with ``inc``/``set_gauge``/``observe``/``sample``).
            When attached, the engine publishes message counters, per-op
            completion-delay and link-wait histograms, and per-round
            in-flight/backlog gauges; when ``None`` (the default) every
            instrumented call site reduces to one ``is not None`` check,
            so the run is unobserved at zero cost.  ``RunStats`` stays
            the always-on thin aggregate view; an attached registry
            reproduces it exactly (``metrics.run_stats_view()``).
        profiler: optional :class:`repro.obs.PhaseProfiler` (duck-typed:
            ``clock``/``add``/``tick_round``).  Times the engine phases
            (send drain, delivery, wakeups, fault ticks, and the nested
            protocol ``on_receive`` compute) per executed round.  Pure
            observation: a profiled run is event-for-event identical to
            an unprofiled one.
        strict: when true, exceeding a per-round send or receive budget
            raises :class:`StrictModeViolation` instead of queuing the
            excess.  Opt-in: contention-by-design protocols (the paper's
            main subject) must leave this off.
        faults: optional :class:`repro.faults.FaultPlan` describing
            message drops, duplications, link outages, and node crashes
            to inject (see :mod:`repro.faults`).  An empty plan (or
            ``None``) leaves every code path untouched, so the run is
            byte-for-byte identical to a fault-free one.
        monitors: optional :class:`repro.resilience.MonitorSet`
            (duck-typed: ``on_round``/``on_complete``/``on_finish``).
            Runs end-of-round invariant checks, watchdog progress
            tracking, and periodic checkpoints against the live network.
            Pure observation unless an invariant breaks (then a
            structured :class:`~repro.sim.errors.InvariantViolation` or
            :class:`~repro.sim.errors.StallDetected` is raised); when
            ``None`` (the default) each hook site is one ``is not None``
            check, and traces stay byte-identical.
        fast_path: force the dense fast path on/off; ``None`` (default)
            auto-selects — dense when the vertex ids are exactly
            ``0..n-1``, generic otherwise.  Both paths are execution-
            equivalent; see ``docs/PERFORMANCE.md``.

    Typical use::

        net = SynchronousNetwork(graph, nodes)
        stats = net.run(max_rounds=10_000)
        delays = net.delays.delay_by_op()
    """

    def __init__(
        self,
        graph: Any,
        nodes: Mapping[int, Node],
        *,
        send_capacity: int = 1,
        recv_capacity: int = 1,
        delay_model: DelayModel | None = None,
        trace: EventTrace | None = None,
        metrics: Any | None = None,
        profiler: Any | None = None,
        strict: bool = False,
        faults: Any | None = None,
        monitors: Any | None = None,
        fast_path: bool | None = None,
    ) -> None:
        if send_capacity < 1:
            raise CapacityError(f"send_capacity must be >= 1, got {send_capacity}")
        if recv_capacity < 1:
            raise CapacityError(f"recv_capacity must be >= 1, got {recv_capacity}")
        self._adj = _as_adjacency(graph)
        missing = set(self._adj) - set(nodes)
        if missing:
            raise ProtocolViolation(f"no Node object for vertices {sorted(missing)[:5]}...")
        extra = set(nodes) - set(self._adj)
        if extra:
            raise ProtocolViolation(
                f"Node objects for vertices not in the graph: {sorted(extra)[:5]}"
            )
        self._nodes: dict[int, Node] = dict(nodes)
        self._nbr_sets = {v: frozenset(nbrs) for v, nbrs in self._adj.items()}
        self.send_capacity = send_capacity
        self.recv_capacity = recv_capacity
        self.delay_model = delay_model if delay_model is not None else ConstantDelay(1)
        self.now = 0
        self.delays = DelayRecorder()
        self.stats = RunStats()
        self.trace = trace
        # Observability hooks (see repro.obs).  Both are duck-typed so the
        # engine never imports the obs package; None disables publishing.
        self.metrics = metrics
        self.profiler = profiler
        # Resilience hook (see repro.resilience).  Duck-typed like the
        # obs hooks; None disables all end-of-round checking.
        self.monitors = monitors
        self.strict = strict
        # Runtime fault state, or None for fault-free runs.  Duck-typed
        # (see repro.faults.injector.FaultInjector) so the engine never
        # imports the faults package.
        self._injector = faults.injector() if faults is not None else None
        # Strict-mode send accounting: node -> (round, sends so far).
        self._send_budget: dict[int, tuple[int, int]] = {}

        n = len(self._adj)
        if fast_path is None:
            fast_path = _FAST_PATH_DEFAULT
        # Dense ids 0..n-1 (keys are unique, so min/max pin the range).
        self._dense = bool(fast_path) and n > 0 and (
            min(self._adj) == 0 and max(self._adj) == n - 1
        )
        self._unit_delay = (
            type(self.delay_model) is ConstantDelay and self.delay_model.delay == 1
        )

        if self._dense:
            # Flat list-indexed engine state (the fast path).
            self._outboxes: list[deque[Message]] = [deque() for _ in range(n)]
            #: per destination: incoming-link FIFO queues keyed by source.
            self._in_links: list[dict[int, deque[Message]]] = [{} for _ in range(n)]
            #: per node: heap of (ready_at, seq, src) over link heads.
            self._rheaps: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
            # Maintained active sets: node is listed exactly once while its
            # outbox / ready heap is non-empty (flag == membership).
            self._send_active: list[int] = []
            self._send_flag = bytearray(n)
            self._recv_active: list[int] = []
            self._recv_flag = bytearray(n)
            #: messages sitting in outboxes (not yet on a link).
            self._outbox_pending = 0
            self._nodes_l: list[Node] = [self._nodes[v] for v in range(n)]
            # Shadow the generic method so NodeContext.send hits the flat
            # arrays without a per-call dense check.
            self._enqueue_send = self._enqueue_send_dense  # type: ignore[method-assign]
        else:
            # Generic dict-keyed state: arbitrary hashable vertex ids.
            # Per directed link (u, v): FIFO queue of messages in transit
            # or waiting to be received at v.
            self._links: dict[tuple[int, int], deque[Message]] = {}
            # Per node: FIFO outbox of messages not yet on a link.
            self._outbox: dict[int, deque[Message]] = {}
            # Per node: heap of (ready_at, seq, src) for head-of-line
            # messages on its incoming links.  Only heads are in the heap
            # so arbitration is O(log deg) per delivery even on the star's
            # hub.  A promoted head is never receivable before the round
            # after its predecessor (per-link throughput is one message
            # per round).
            self._ready: dict[int, list[tuple[int, int, int]]] = {}

        self._ctx: dict[int, NodeContext] = {
            v: NodeContext(self, v) for v in self._adj
        }
        if self._dense:
            self._ctx_l: list[NodeContext] = [self._ctx[v] for v in range(n)]
        self._msg_seq = 0
        self._in_flight = 0
        self._started = False
        self._wakeups: dict[int, list[int]] = {}
        #: Shared next-event heap over wakeup rounds.  Contains every
        #: round that currently has (or once had) scheduled wakeups; rounds
        #: no longer in ``_wakeups`` are discarded lazily on peek.  This
        #: replaces the former ``min(self._wakeups)`` linear scans.
        self._wake_heap: list[int] = []
        #: Rounds the run loop actually iterated (idle stretches that the
        #: clock jumped over are not counted).  ``stats.rounds`` stays the
        #: model-level clock; this is the engine-level work measure.
        self.rounds_executed = 0

    # ---------------------------------------------------------------- API

    @property
    def uses_fast_path(self) -> bool:
        """Whether this network runs on the dense fast path."""
        return self._dense

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self._adj[v]

    def neighbor_set(self, v: int) -> frozenset[int]:
        """Neighbors of ``v`` as a frozenset (for membership tests)."""
        return self._nbr_sets[v]

    @property
    def node_ids(self) -> list[int]:
        """All vertex ids, sorted."""
        return sorted(self._adj)

    def node(self, v: int) -> Node:
        """The protocol object at vertex ``v``."""
        return self._nodes[v]

    def context(self, v: int) -> NodeContext:
        """The :class:`NodeContext` bound to vertex ``v``."""
        return self._ctx[v]

    def run(self, max_rounds: int = 1_000_000) -> RunStats:
        """Execute the protocol to quiescence and return run statistics.

        Round 0 calls every node's ``on_start`` (in node-id order) and
        flushes outboxes once; rounds 1, 2, ... alternate the receive and
        send phases until no message remains in any link or outbox.

        Raises:
            RoundLimitExceeded: if quiescence is not reached within
                ``max_rounds`` rounds.
            ProtocolViolation: if :meth:`run` is called twice.
        """
        if self._started:
            raise ProtocolViolation("a SynchronousNetwork can only be run once")
        self._started = True

        _, send_phase, _ = self._select_phases()
        self.now = 0
        inj = self._injector
        met = self.metrics
        prof = self.profiler
        mon = self.monitors
        t_run = prof.clock() if prof is not None else 0.0
        if inj is not None:
            inj.tick(0, self.stats, self.trace, met)
        if prof is None:
            for v in sorted(self._nodes):
                self._nodes[v].on_start(self._ctx[v])
        else:
            t0 = prof.clock()
            for v in sorted(self._nodes):
                self._nodes[v].on_start(self._ctx[v])
            prof.add("node.on_start", prof.clock() - t0)
        if prof is None:
            send_phase()
        else:
            t0 = prof.clock()
            send_phase()
            prof.add("send", prof.clock() - t0)
        if mon is not None:
            if prof is None:
                mon.on_round(self)
            else:
                t0 = prof.clock()
                mon.on_round(self)
                prof.add("monitors", prof.clock() - t0)

        return self._loop(max_rounds, t_run)

    def resume(self, max_rounds: int = 1_000_000) -> RunStats:
        """Continue a started network to quiescence.

        The checkpoint/restore workflow: a network deepcopied mid-run by
        :class:`repro.resilience.Checkpoint` re-enters the round loop
        here and finishes byte-identically to the original — same trace
        events, same stats, same completion order.  ``max_rounds`` is the
        same *absolute* round budget :meth:`run` takes.

        Raises:
            ProtocolViolation: if the network was never started (call
                :meth:`run` instead).
        """
        if not self._started:
            raise ProtocolViolation(
                "resume() on a network that was never run; call run() first"
            )
        prof = self.profiler
        t_run = prof.clock() if prof is not None else 0.0
        return self._loop(max_rounds, t_run)

    def _select_phases(self):
        """(receive, send, maybe_jump) phase callables for this path."""
        if self._dense:
            # Under the paper's unit delay every link head is receivable
            # by round now+1, so while messages are in flight the clock
            # can never jump — skip the scan entirely.
            return (
                self._receive_phase_dense,
                self._send_phase_dense,
                self._maybe_jump_dense if not self._unit_delay else None,
            )
        return self._receive_phase, self._send_phase, self._maybe_jump

    def _loop(self, max_rounds: int, t_run: float = 0.0) -> RunStats:
        """The round loop: rounds ``now+1 ...`` until quiescence."""
        receive_phase, send_phase, maybe_jump = self._select_phases()
        inj = self._injector
        met = self.metrics
        prof = self.profiler
        mon = self.monitors

        executed = self.rounds_executed
        while self._in_flight > 0 or self._wakeups:
            self.now += 1
            executed += 1
            if self.now > max_rounds:
                self.rounds_executed = executed
                raise RoundLimitExceeded(
                    max_rounds,
                    self._in_flight,
                    pending_nodes=self._pending_nodes(),
                    oldest=self._oldest_undelivered(),
                )
            if prof is None:
                if inj is not None:
                    inj.tick(self.now, self.stats, self.trace, met)
                self._wake_phase()
                receive_phase()
                send_phase()
            else:
                prof.tick_round()
                t0 = prof.clock()
                if inj is not None:
                    inj.tick(self.now, self.stats, self.trace, met)
                    t1 = prof.clock()
                    prof.add("faults.tick", t1 - t0)
                    t0 = t1
                self._wake_phase()
                t1 = prof.clock()
                prof.add("wake", t1 - t0)
                receive_phase()
                t0 = prof.clock()
                prof.add("receive", t0 - t1)
                send_phase()
                prof.add("send", prof.clock() - t0)
            if met is not None:
                met.set_gauge("engine.in_flight", self._in_flight)
                met.sample("engine.in_flight", self.now, self._in_flight)
            if mon is not None:
                # Sync the executed-round counter so monitors (and any
                # checkpoint they capture) see a consistent engine.
                self.rounds_executed = executed
                if prof is None:
                    mon.on_round(self)
                else:
                    t0 = prof.clock()
                    mon.on_round(self)
                    prof.add("monitors", prof.clock() - t0)
            if maybe_jump is not None:
                maybe_jump(max_rounds)

        self.rounds_executed = executed
        self.stats.rounds = self.now
        if met is not None:
            met.set_gauge("engine.rounds", self.now)
        if mon is not None:
            mon.on_finish(self)
        if prof is not None:
            prof.wall += prof.clock() - t_run
        return self.stats

    def _pending_nodes(self) -> tuple[int, ...]:
        """Nodes with unsent outbound or undelivered inbound messages."""
        if self._dense:
            pending = {u for u, box in enumerate(self._outboxes) if box}
            for dst, links in enumerate(self._in_links):
                if any(links.values()):
                    pending.add(dst)
            return tuple(sorted(pending))
        pending = {u for u, box in self._outbox.items() if box}
        for (_, dst), q in self._links.items():
            if q:
                pending.add(dst)
        return tuple(sorted(pending))

    def _queued_messages(self) -> tuple[Iterator[deque[Message]], Iterator[deque[Message]]]:
        """(link queues, outboxes) iterators for diagnostics."""
        if self._dense:
            return (
                (q for links in self._in_links for q in links.values()),
                iter(self._outboxes),
            )
        return iter(self._links.values()), iter(self._outbox.values())

    def _oldest_undelivered(self) -> tuple[str, int, int, int] | None:
        """``(kind, src, dst, sent_at)`` of the oldest queued message."""
        links, outboxes = self._queued_messages()
        oldest: Message | None = None
        for q in links:
            for m in q:
                if oldest is None or (m.sent_at, m.seq) < (oldest.sent_at, oldest.seq):
                    oldest = m
        if oldest is None:
            for box in outboxes:
                for m in box:
                    if oldest is None or m.seq < oldest.seq:
                        oldest = m
        if oldest is None:
            return None
        return (oldest.kind, oldest.src, oldest.dst, oldest.sent_at)

    # ------------------------------------------------------------ engine

    def _enqueue_send(self, src: int, dst: int, kind: str, payload: Any) -> Message:
        if self.strict:
            last_round, count = self._send_budget.get(src, (-1, 0))
            count = count + 1 if last_round == self.now else 1
            self._send_budget[src] = (self.now, count)
            if count > self.send_capacity:
                raise StrictModeViolation(src, self.now, "send", self.send_capacity)
        seq = self._msg_seq
        self._msg_seq = seq + 1
        msg = Message(src, dst, kind, payload, -1, -1, -1, seq)
        box = self._outbox.get(src)
        if box is None:
            box = self._outbox[src] = deque()
        box.append(msg)
        self._in_flight += 1
        if len(box) > self.stats.max_send_backlog:
            self.stats.max_send_backlog = len(box)
        if self.metrics is not None:
            self.metrics.set_gauge("engine.send_backlog", len(box))
        if self.trace is not None:
            self.trace.record("enqueue", self.now, src=src, dst=dst, kind=kind)
        return msg

    def _enqueue_send_dense(self, src: int, dst: int, kind: str, payload: Any) -> Message:
        if self.strict:
            last_round, count = self._send_budget.get(src, (-1, 0))
            count = count + 1 if last_round == self.now else 1
            self._send_budget[src] = (self.now, count)
            if count > self.send_capacity:
                raise StrictModeViolation(src, self.now, "send", self.send_capacity)
        seq = self._msg_seq
        self._msg_seq = seq + 1
        msg = Message(src, dst, kind, payload, -1, -1, -1, seq)
        box = self._outboxes[src]
        box.append(msg)
        self._outbox_pending += 1
        if not self._send_flag[src]:
            self._send_flag[src] = 1
            self._send_active.append(src)
        self._in_flight += 1
        stats = self.stats
        backlog = len(box)
        if backlog > stats.max_send_backlog:
            stats.max_send_backlog = backlog
        if self.metrics is not None:
            self.metrics.set_gauge("engine.send_backlog", backlog)
        if self.trace is not None:
            self.trace.record("enqueue", self.now, src=src, dst=dst, kind=kind)
        return msg

    def _schedule_wakeup(self, node_id: int, round_: int) -> None:
        if round_ <= self.now:
            raise ProtocolViolation(
                f"wakeup for node {node_id} at round {round_} is not in the "
                f"future (now={self.now})"
            )
        due = self._wakeups.get(round_)
        if due is None:
            self._wakeups[round_] = [node_id]
            heapq.heappush(self._wake_heap, round_)
        else:
            due.append(node_id)

    def _next_wakeup(self) -> int | None:
        """The earliest round with scheduled wakeups, via the event heap.

        Lazily discards heap entries whose round has already fired (the
        ``_wakeups`` key was popped).  O(log w) amortised, replacing the
        O(w) ``min()`` scans over the wakeup dict.
        """
        heap = self._wake_heap
        wakeups = self._wakeups
        while heap:
            r = heap[0]
            if r in wakeups:
                return r
            heapq.heappop(heap)
        return None

    def _wake_phase(self) -> None:
        due = self._wakeups.pop(self.now, None)
        if not due:
            # If nothing is in flight, jump the clock to the next wakeup so
            # idle stretches of a long-lived schedule cost no work.
            if self._in_flight == 0 and self._wakeups:
                nxt = self._next_wakeup()
                if nxt is not None and nxt > self.now:
                    self.now = nxt
                    due = self._wakeups.pop(nxt)
            if not due:
                return
        inj = self._injector
        for v in sorted(set(due)):
            if inj is not None and inj.crashed(v, self.now):
                # Crashed nodes do not act; their wakeups fire at recovery
                # (and are dropped for a permanent crash).
                rec = inj.recovery_round(v, self.now)
                if rec is not None:
                    deferred = self._wakeups.get(rec)
                    if deferred is None:
                        self._wakeups[rec] = [v]
                        heapq.heappush(self._wake_heap, rec)
                    else:
                        deferred.append(v)
                continue
            self._nodes[v].on_wake(self._ctx[v])

    def _maybe_jump(self, max_rounds: int) -> None:
        """Skip idle rounds: with long link delays nothing may be
        receivable for a while; advance the clock to the next event."""
        if self._in_flight == 0:
            return
        if any(box for box in self._outbox.values()):
            return  # something enters a link next round
        nxt = None
        for heap in self._ready.values():
            if heap and (nxt is None or heap[0][0] < nxt):
                nxt = heap[0][0]
        if self._wakeups:
            w = self._next_wakeup()
            if w is not None:
                nxt = w if nxt is None else min(nxt, w)
        if nxt is not None and nxt > self.now + 1:
            self.now = min(nxt - 1, max_rounds)

    def _maybe_jump_dense(self, max_rounds: int) -> None:
        """Dense-path idle-round jump (only reachable with non-unit delays).

        The active receiver set holds exactly the nodes with a non-empty
        ready heap, so the scan is O(active), not O(n)."""
        if self._in_flight == 0:
            return
        if self._outbox_pending:
            return  # something enters a link next round
        nxt = None
        rheaps = self._rheaps
        for v in self._recv_active:
            h = rheaps[v]
            if h and (nxt is None or h[0][0] < nxt):
                nxt = h[0][0]
        if self._wakeups:
            w = self._next_wakeup()
            if w is not None:
                nxt = w if nxt is None else min(nxt, w)
        if nxt is not None and nxt > self.now + 1:
            self.now = min(nxt - 1, max_rounds)

    def _record_completion(self, op_id: Any, result: Any, node_id: int) -> None:
        self.delays.record(op_id, self.now, result=result, at_node=node_id)
        if self.metrics is not None:
            self.metrics.inc("engine.completions")
            self.metrics.observe("op.delay", self.now)
        if self.trace is not None:
            self.trace.record("complete", self.now, node=node_id, op=op_id)
        if self.monitors is not None:
            self.monitors.on_complete(self, op_id, result, node_id)

    # --------------------------------------------- generic (fallback) path

    def _receive_phase(self) -> None:
        t = self.now
        inj = self._injector
        met = self.metrics
        prof = self.profiler
        # Snapshot: only nodes with a non-empty ready heap can receive.
        receivers = sorted(v for v, h in self._ready.items() if h)
        for v in receivers:
            if inj is not None and inj.crashed(v, t):
                continue  # crashed receiver: messages wait on their links
            heap = self._ready[v]
            node = self._nodes[v]
            ctx = self._ctx[v]
            budget = self.recv_capacity
            while budget > 0 and heap:
                ready_at, _seq, src = heap[0]
                if ready_at > t:
                    break  # still traversing its link
                heapq.heappop(heap)
                q = self._links[(src, v)]
                msg = q.popleft()
                if q:
                    nxt = q[0]
                    heapq.heappush(heap, (max(nxt.ready_at, t + 1), nxt.seq, src))
                msg.delivered_at = t
                self._in_flight -= 1
                budget -= 1
                self.stats.messages_delivered += 1
                wait = msg.link_wait()
                self.stats.total_link_wait += wait
                if met is not None:
                    met.inc("engine.messages_delivered")
                    met.inc("engine.link_wait_total", wait)
                    met.observe("msg.link_wait", wait)
                if self.trace is not None:
                    self.trace.record(
                        "deliver", t, src=src, dst=v, kind=msg.kind, wait=wait
                    )
                if prof is None:
                    node.on_receive(msg, ctx)
                else:
                    t0 = prof.clock()
                    node.on_receive(msg, ctx)
                    prof.add("node.on_receive", prof.clock() - t0)
            if self.strict and heap and heap[0][0] <= t:
                raise StrictModeViolation(v, t, "receive", self.recv_capacity)

    def _send_phase(self) -> None:
        t = self.now
        inj = self._injector
        senders = sorted(v for v, box in self._outbox.items() if box)
        for u in senders:
            if inj is not None and inj.crashed(u, t):
                continue  # crashed sender: outbox frozen until recovery
            box = self._outbox[u]
            for _ in range(min(self.send_capacity, len(box))):
                msg = box.popleft()
                msg.sent_at = t
                verdict = None
                if inj is not None:
                    verdict = inj.on_link_entry(msg, t)
                    if verdict in ("drop", "outage"):
                        # Lost on the wire: the send slot is consumed but
                        # the message never enters the link.
                        self._in_flight -= 1
                        self.stats.messages_dropped += 1
                        if self.metrics is not None:
                            self.metrics.inc("engine.messages_dropped")
                        if self.trace is not None:
                            self.trace.record(
                                "drop", t, src=u, dst=msg.dst, kind=msg.kind,
                                reason=verdict,
                            )
                        continue
                self._link_entry(msg, u, t)
                if verdict == "duplicate":
                    clone = Message(
                        src=msg.src, dst=msg.dst, kind=msg.kind,
                        payload=msg.payload, seq=self._msg_seq,
                    )
                    self._msg_seq += 1
                    clone.sent_at = t
                    self._in_flight += 1
                    self.stats.messages_duplicated += 1
                    if self.metrics is not None:
                        self.metrics.inc("engine.messages_duplicated")
                    self._link_entry(clone, u, t)
                    if self.trace is not None:
                        self.trace.record(
                            "duplicate", t, src=u, dst=msg.dst, kind=msg.kind
                        )

    def _link_entry(self, msg: Message, u: int, t: int) -> None:
        """Place ``msg`` on its link (the fault-free tail of the send phase)."""
        msg.ready_at = t + self.delay_model(msg)
        key = (u, msg.dst)
        q = self._links.get(key)
        if q is None:
            q = self._links[key] = deque()
        q.append(msg)
        if len(q) > self.stats.max_recv_backlog:
            self.stats.max_recv_backlog = len(q)
        if len(q) == 1:
            heap = self._ready.get(msg.dst)
            if heap is None:
                heap = self._ready[msg.dst] = []
            heapq.heappush(heap, (msg.ready_at, msg.seq, u))
        self.stats.messages_sent += 1
        if self.metrics is not None:
            self.metrics.inc("engine.messages_sent")
            self.metrics.set_gauge("engine.recv_backlog", len(q))
        if self.trace is not None:
            self.trace.record("send", t, src=u, dst=msg.dst, kind=msg.kind)

    # ------------------------------------------------------ dense fast path
    #
    # Mirror images of the generic phases over flat arrays.  Every
    # externally visible effect (delivery order, stats totals, metrics
    # calls, trace events) happens at the same point in the same order as
    # the generic path — the equivalence suite diffs full event traces to
    # keep it that way.

    def _receive_phase_dense(self) -> None:
        active = self._recv_active
        if not active:
            return
        t = self.now
        inj = self._injector
        met = self.metrics
        prof = self.profiler
        trace = self.trace
        strict = self.strict
        cap = self.recv_capacity
        heappop = heapq.heappop
        heappush = heapq.heappush
        nodes = self._nodes_l
        ctxs = self._ctx_l
        in_links = self._in_links
        rheaps = self._rheaps
        flags = self._recv_flag
        order = sorted(active)
        active.clear()
        delivered = 0
        wait_total = 0
        for v in order:
            flags[v] = 0
            heap = rheaps[v]
            if inj is not None and inj.crashed(v, t):
                # Crashed receiver: messages wait on their links.
                if heap:
                    flags[v] = 1
                    active.append(v)
                continue
            node = nodes[v]
            ctx = ctxs[v]
            links_v = in_links[v]
            budget = cap
            while budget and heap:
                head = heap[0]
                if head[0] > t:
                    break  # still traversing its link
                heappop(heap)
                src = head[2]
                q = links_v[src]
                msg = q.popleft()
                if q:
                    nxt = q[0]
                    ra = nxt.ready_at
                    if ra <= t:
                        ra = t + 1
                    heappush(heap, (ra, nxt.seq, src))
                msg.delivered_at = t
                budget -= 1
                delivered += 1
                wait = t - msg.ready_at
                wait_total += wait
                if met is not None:
                    met.inc("engine.messages_delivered")
                    met.inc("engine.link_wait_total", wait)
                    met.observe("msg.link_wait", wait)
                if trace is not None:
                    trace.record("deliver", t, src=src, dst=v, kind=msg.kind, wait=wait)
                if prof is None:
                    node.on_receive(msg, ctx)
                else:
                    t0 = prof.clock()
                    node.on_receive(msg, ctx)
                    prof.add("node.on_receive", prof.clock() - t0)
            if heap:
                if strict and heap[0][0] <= t:
                    raise StrictModeViolation(v, t, "receive", cap)
                flags[v] = 1
                active.append(v)
        self._in_flight -= delivered
        self.stats.messages_delivered += delivered
        self.stats.total_link_wait += wait_total

    def _send_phase_dense(self) -> None:
        active = self._send_active
        if not active:
            return
        t = self.now
        inj = self._injector
        met = self.metrics
        trace = self.trace
        cap = self.send_capacity
        unit = self._unit_delay
        delay_model = self.delay_model
        outboxes = self._outboxes
        in_links = self._in_links
        rheaps = self._rheaps
        recv_active = self._recv_active
        recv_flag = self._recv_flag
        heappush = heapq.heappush
        flags = self._send_flag
        stats = self.stats
        order = sorted(active)
        active.clear()
        sent = 0
        moved = 0
        max_backlog = stats.max_recv_backlog
        for u in order:
            flags[u] = 0
            box = outboxes[u]
            if inj is not None and inj.crashed(u, t):
                # Crashed sender: outbox frozen until recovery.
                flags[u] = 1
                active.append(u)
                continue
            for _ in range(cap if cap < len(box) else len(box)):
                msg = box.popleft()
                moved += 1
                msg.sent_at = t
                if inj is not None:
                    verdict = inj.on_link_entry(msg, t)
                    if verdict in ("drop", "outage"):
                        # Lost on the wire: the send slot is consumed but
                        # the message never enters the link.
                        self._in_flight -= 1
                        stats.messages_dropped += 1
                        if met is not None:
                            met.inc("engine.messages_dropped")
                        if trace is not None:
                            trace.record(
                                "drop", t, src=u, dst=msg.dst, kind=msg.kind,
                                reason=verdict,
                            )
                        continue
                else:
                    verdict = None
                # Inlined link entry (the hot path).
                dst = msg.dst
                msg.ready_at = t + 1 if unit else t + delay_model(msg)
                links_d = in_links[dst]
                q = links_d.get(u)
                if q is None:
                    q = links_d[u] = deque()
                q.append(msg)
                lq = len(q)
                if lq > max_backlog:
                    max_backlog = lq
                if lq == 1:
                    heappush(rheaps[dst], (msg.ready_at, msg.seq, u))
                    if not recv_flag[dst]:
                        recv_flag[dst] = 1
                        recv_active.append(dst)
                sent += 1
                if met is not None:
                    met.inc("engine.messages_sent")
                    met.set_gauge("engine.recv_backlog", lq)
                if trace is not None:
                    trace.record("send", t, src=u, dst=dst, kind=msg.kind)
                if verdict == "duplicate":
                    clone = Message(
                        src=msg.src, dst=dst, kind=msg.kind,
                        payload=msg.payload, seq=self._msg_seq,
                    )
                    self._msg_seq += 1
                    clone.sent_at = t
                    self._in_flight += 1
                    stats.messages_duplicated += 1
                    if met is not None:
                        met.inc("engine.messages_duplicated")
                    # Duplicate copies take the non-inlined tail so the
                    # stats/metrics ordering matches the generic path.
                    stats.max_recv_backlog = max_backlog
                    stats.messages_sent += sent
                    sent = 0
                    self._link_entry_dense(clone, u, t)
                    max_backlog = stats.max_recv_backlog
                    if trace is not None:
                        trace.record("duplicate", t, src=u, dst=dst, kind=msg.kind)
            if box:
                flags[u] = 1
                active.append(u)
        stats.max_recv_backlog = max_backlog
        stats.messages_sent += sent
        self._outbox_pending -= moved

    def _link_entry_dense(self, msg: Message, u: int, t: int) -> None:
        """Dense-path link entry for the rare (fault duplicate) tail."""
        msg.ready_at = t + self.delay_model(msg)
        links_d = self._in_links[msg.dst]
        q = links_d.get(u)
        if q is None:
            q = links_d[u] = deque()
        q.append(msg)
        if len(q) > self.stats.max_recv_backlog:
            self.stats.max_recv_backlog = len(q)
        if len(q) == 1:
            heapq.heappush(self._rheaps[msg.dst], (msg.ready_at, msg.seq, u))
            if not self._recv_flag[msg.dst]:
                self._recv_flag[msg.dst] = 1
                self._recv_active.append(msg.dst)
        self.stats.messages_sent += 1
        if self.metrics is not None:
            self.metrics.inc("engine.messages_sent")
            self.metrics.set_gauge("engine.recv_backlog", len(q))
        if self.trace is not None:
            self.trace.record("send", t, src=u, dst=msg.dst, kind=msg.kind)


def run_protocol(
    graph: Any,
    nodes: Mapping[int, Node],
    *,
    send_capacity: int = 1,
    recv_capacity: int = 1,
    max_rounds: int = 1_000_000,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
) -> SynchronousNetwork:
    """Convenience wrapper: build a network, run it, return it.

    The returned network exposes ``delays`` (per-operation completion
    rounds) and ``stats`` (aggregate accounting).
    """
    net = SynchronousNetwork(
        graph,
        nodes,
        send_capacity=send_capacity,
        recv_capacity=recv_capacity,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
    )
    net.run(max_rounds=max_rounds)
    return net
