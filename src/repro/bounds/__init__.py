"""Exact evaluation of every bound expression in the paper.

The lower bounds of Section 3 cannot be "run" (they quantify over all
algorithms), so the reproduction evaluates their exact expressions and
checks every implemented algorithm against them:

* :mod:`repro.bounds.towers` — ``tow`` and ``log*`` (Definition 3.4);
* :mod:`repro.bounds.recurrences` — the information-spread recurrences of
  Lemmas 3.2/3.3 and the ``f(k)`` recurrence of Section 4.2;
* :mod:`repro.bounds.counting_lb` — Theorem 3.5's ``Omega(n log* n)`` sum
  and Theorem 3.6's diameter sum, evaluated exactly;
* :mod:`repro.bounds.queuing_ub` — the queuing upper bounds of Section 4.
"""

from repro.bounds.towers import tow, log_star, TOW_MAX_EXACT
from repro.bounds.recurrences import (
    ab_trajectory,
    f_recurrence,
    verify_ab_tower_bound,
    verify_f_bound,
)
from repro.bounds.counting_lb import (
    min_latency_for_count,
    theorem35_lower_bound,
    theorem36_lower_bound,
    counting_lower_bound,
)
from repro.bounds.queuing_ub import (
    arrow_upper_bound,
    list_queuing_bound,
    binary_tree_queuing_bound,
    mary_tree_queuing_bound,
    constant_degree_queuing_bound,
)

__all__ = [
    "tow",
    "log_star",
    "TOW_MAX_EXACT",
    "ab_trajectory",
    "f_recurrence",
    "verify_ab_tower_bound",
    "verify_f_bound",
    "min_latency_for_count",
    "theorem35_lower_bound",
    "theorem36_lower_bound",
    "counting_lower_bound",
    "arrow_upper_bound",
    "list_queuing_bound",
    "binary_tree_queuing_bound",
    "mary_tree_queuing_bound",
    "constant_degree_queuing_bound",
]
