"""The paper's growth recurrences, evaluated exactly.

* Lemmas 3.2/3.3: the "processors affecting / affected by" quantities obey
  ``a(t+1) <= a(t) + a(t)^2 b(t)`` and ``b(t+1) <= b(t)(1 + 2 a(t))`` with
  ``a(0) = b(0) = 1``.  Lemma 3.4 shows both stay below ``tow(2t)``.
  :func:`ab_trajectory` iterates the recurrences at equality — the fastest
  growth the model permits — and :func:`verify_ab_tower_bound` checks the
  tower bound on that worst case.

* Section 4.2: ``f(0) = 0, f(k) = 2 f(k-1) + 2k`` with Lemma 4.8's bound
  ``f(k) < 2^(k+2)``.
"""

from __future__ import annotations

from repro.bounds.towers import TOW_MAX_EXACT, tow


def ab_trajectory(t_max: int) -> tuple[list[int], list[int]]:
    """Iterate the Lemma 3.2/3.3 recurrences at equality.

    Returns ``(a, b)`` with ``a[t]``/``b[t]`` for ``t = 0..t_max``.  The
    values grow as a tower, so ``t_max`` above ~5 is rejected.

    Raises:
        ValueError: if the trajectory would exceed representable sizes.
    """
    if t_max < 0:
        raise ValueError(f"t_max must be >= 0, got {t_max}")
    if t_max > 5:
        raise ValueError("a(t)/b(t) exceed representable sizes beyond t=5")
    a = [1]
    b = [1]
    for t in range(t_max):
        at, bt = a[t], b[t]
        a.append(at + at * at * bt)
        b.append(bt * (1 + 2 * at))
    return a, b


def verify_ab_tower_bound(t_max: int = 4) -> bool:
    """Check Lemma 3.4: ``a(t) <= tow(2t)`` and ``b(t) <= tow(2t)``.

    Evaluated on the equality trajectory for ``t = 0..t_max`` (``t_max``
    capped so the towers stay representable).
    """
    t_max = min(t_max, TOW_MAX_EXACT // 2 + 1, 4)
    a, b = ab_trajectory(t_max)
    for t in range(t_max + 1):
        if t == 0:
            # tow(0) = 1 = a(0) = b(0)
            if a[0] > 1 or b[0] > 1:
                return False
            continue
        bound = tow(min(2 * t, TOW_MAX_EXACT))
        if 2 * t > TOW_MAX_EXACT:
            continue  # bound astronomically large; trivially satisfied
        if a[t] > bound or b[t] > bound:
            return False
    return True


def f_recurrence(k: int) -> int:
    """Section 4.2's ``f``: ``f(0) = 0``, ``f(k) = 2 f(k-1) + 2k``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    value = 0
    for i in range(1, k + 1):
        value = 2 * value + 2 * i
    return value


def verify_f_bound(k_max: int) -> bool:
    """Check Lemma 4.8: ``f(k) < 2^(k+2)`` for ``k = 1..k_max``."""
    value = 0
    for k in range(1, k_max + 1):
        value = 2 * value + 2 * k
        if value >= 1 << (k + 2):
            return False
    return True
