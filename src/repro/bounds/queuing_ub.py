"""Upper bounds on concurrent queuing via the arrow protocol (Section 4)."""

from __future__ import annotations

import math
from typing import Iterable

from repro.tree import RootedTree
from repro.tsp.bounds import (
    binary_tree_tsp_bound,
    list_tsp_bound,
    mary_tree_tsp_bound,
    rosenkrantz_nn_bound,
)
from repro.tsp.nearest_neighbor import nearest_neighbor_tour


def arrow_upper_bound(tree: RootedTree, requests: Iterable[int]) -> int:
    """Theorem 4.1: arrow's one-shot total delay <= 2 x NN-TSP cost.

    Computes the nearest-neighbour tour on ``tree`` over ``requests``
    (started at the tree root, where the initial queue tail lives) and
    returns twice its cost.
    """
    return 2 * nearest_neighbor_tour(tree, requests).cost


def list_queuing_bound(n: int) -> int:
    """Lemma 4.3 + Theorem 4.1: arrow on the list costs <= 6n."""
    return 2 * list_tsp_bound(n)


def binary_tree_queuing_bound(n: int) -> int:
    """Theorem 4.7 + Theorem 4.1: arrow on the perfect binary tree, <= 2(2d(d+1)+8n)."""
    return 2 * binary_tree_tsp_bound(n)


def mary_tree_queuing_bound(n: int, m: int) -> int:
    """Theorem 4.12's envelope: arrow on a perfect m-ary spanning tree."""
    return 2 * mary_tree_tsp_bound(n, m)


def constant_degree_queuing_bound(n: int, k: int | None = None) -> float:
    """Corollary 4.2: arrow on any constant-degree spanning tree, O(n log n).

    Args:
        n: tree size.
        k: number of requesters (defaults to ``n``).
    """
    return 2 * rosenkrantz_nn_bound(n, n if k is None else k)


def queuing_vs_counting_gap(n: int, counting_lb: int, queuing_ub: float) -> float:
    """The separation factor the comparison experiments report.

    Returns ``counting_lb / queuing_ub`` (``math.inf`` when the queuing
    bound is 0): a growing value as ``n`` grows is the paper's headline
    claim, a bounded value is the star-graph counterexample.
    """
    if queuing_ub == 0:
        return math.inf
    return counting_lb / queuing_ub
