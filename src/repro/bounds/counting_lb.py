"""Lower bounds on concurrent counting (Section 3), evaluated exactly.

These are bounds on *every* counting algorithm, so they cannot be
measured; instead the experiments evaluate them exactly and assert that
every implemented counting algorithm's measured total delay dominates
them.

* Theorem 3.5 (any graph): a processor outputting count ``k`` has latency
  at least the smallest ``t`` with ``tow(2t) >= k``; summing over the
  processors with counts ``>= n/2`` gives ``Omega(n log* n)``.
* Theorem 3.6 (diameter ``alpha``): the processor receiving count ``k``
  with ``k > n - alpha/2`` has latency ``>= alpha/2 + k - n``; summing
  gives ``Omega(alpha^2)``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bounds.towers import TOW_MAX_EXACT, log_star, tow


def min_latency_for_count(k: int) -> int:
    """Lemma 3.1 + 3.4: the least ``t`` such that ``tow(2t) >= k``.

    A processor that outputs count ``k`` must have been influenced by at
    least ``k`` processors, and influence spreads no faster than
    ``a(t) <= tow(2t)``.

    Raises:
        ValueError: for ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"count must be >= 1, got {k}")
    t = 0
    while 2 * t <= TOW_MAX_EXACT and tow(2 * t) < k:
        t += 1
    return t


def theorem35_lower_bound(n: int, requesters: int | None = None) -> int:
    """Theorem 3.5's exact sum: total-delay lower bound on any graph.

    With ``r`` requesters (default: all ``n`` nodes counting), counts
    ``1..r`` are all handed out; the processor with count ``k`` has
    latency at least :func:`min_latency_for_count`.  Returns the exact
    integer sum — the quantity that is ``Omega(n log* n)``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    r = n if requesters is None else requesters
    if not (0 <= r <= n):
        raise ValueError(f"requesters must be in [0, {n}], got {r}")
    total = 0
    k = 1
    t = 0
    # Latency jumps only at tow(2t) boundaries: counts in
    # (tow(2t), tow(2t+2)] need latency t+1.  Sum in O(log* r) blocks.
    while k <= r:
        while 2 * t <= TOW_MAX_EXACT and tow(2 * t) < k:
            t += 1
        # All counts k' with tow(2(t-1)) < k' <= tow(2t) share latency t.
        hi = tow(2 * t) if 2 * t <= TOW_MAX_EXACT else r
        hi = min(hi, r)
        total += t * (hi - k + 1)
        k = hi + 1
    return total


def theorem35_paper_form(n: int) -> Fraction:
    """The form stated in the proof: ``sum over counts k >= n/2 of log*(k)/2``.

    Kept alongside :func:`theorem35_lower_bound` because the proof sums
    only over the top half of counts; this is the expression the
    experiment tables print next to measured delays.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    total = Fraction(0)
    for k in range(max(1, n // 2), n + 1):
        total += Fraction(log_star(k), 2)
    return total


def theorem36_lower_bound(alpha: int) -> int:
    """Theorem 3.6's exact sum for a graph of diameter ``alpha``.

    Summing the latencies ``1, 2, ..., floor(alpha/2)`` of the highest
    counts gives ``m(m+1)/2`` with ``m = floor(alpha/2)`` — the quantity
    that is ``Omega(alpha^2)``.
    """
    if alpha < 0:
        raise ValueError(f"diameter must be >= 0, got {alpha}")
    m = alpha // 2
    return m * (m + 1) // 2


def per_op_general_bound(count: int) -> int:
    """Lemma 3.1 + 3.4 per-operation bound: the op that outputs ``count``
    needs latency at least ``min t: tow(2t) >= count``.

    This is the fine-grained form behind Theorem 3.5; the test suite
    checks every implemented counting algorithm's *individual* delays
    against it.
    """
    return min_latency_for_count(count)


def per_op_diameter_bound(count: int, n: int, alpha: int) -> int:
    """Theorem 3.6's per-operation bound (all ``n`` nodes counting).

    The proof shows the op receiving count ``k > n - alpha/2`` has latency
    at least ``alpha/2 + k - n``; for smaller counts the bound is 0.
    """
    if count < 1 or count > n:
        raise ValueError(f"count must be in [1, {n}], got {count}")
    return max(0, alpha // 2 + count - n)


def verify_per_op_bounds(
    counts: "dict[int, int]",
    delays: "dict[int, int]",
    n: int,
    alpha: int,
    all_counting: bool,
) -> bool:
    """Whether every operation's delay dominates both per-op bounds.

    Args:
        counts: vertex -> rank received.
        delays: vertex -> measured delay.
        n: number of vertices in the graph.
        alpha: graph diameter.
        all_counting: whether every vertex requested (Theorem 3.6's
            hypothesis; its bound is skipped otherwise).
    """
    for v, k in counts.items():
        need = per_op_general_bound(k)
        if all_counting:
            need = max(need, per_op_diameter_bound(k, n, alpha))
        if delays[v] < need:
            return False
    return True


def counting_lower_bound(n: int, alpha: int, requesters: int | None = None) -> int:
    """The better of the two lower bounds for an ``n``-vertex, diameter-``alpha`` graph.

    Theorem 3.6 requires all nodes counting; it is only applied when
    ``requesters`` is ``None`` or equals ``n``.
    """
    general = theorem35_lower_bound(n, requesters)
    if requesters is None or requesters == n:
        return max(general, theorem36_lower_bound(alpha))
    return general
