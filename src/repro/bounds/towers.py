"""The tower function and iterated logarithm (Definition 3.4).

``tow(j)`` is the height-``j`` tower of twos and ``log*(k)`` is the least
number of times ``log2`` must be applied to bring ``k`` to at most 1.
``tow(5) = 2^65536`` is a 65537-bit integer Python handles fine;
``tow(6)`` is physically unrepresentable, so :func:`tow` refuses heights
above :data:`TOW_MAX_EXACT` and :func:`log_star` never materialises a
tower — it works downward with ``bit_length``.
"""

from __future__ import annotations

import math
from fractions import Fraction

#: Largest tower height this library evaluates exactly (tow(5) has 65537 bits).
TOW_MAX_EXACT = 5


def tow(j: int) -> int:
    """The tower of twos of height ``j``: ``tow(0)=1, tow(j)=2**tow(j-1)``.

    Raises:
        ValueError: for negative ``j`` or ``j > TOW_MAX_EXACT`` (the value
            would not fit in memory).
    """
    if j < 0:
        raise ValueError(f"tower height must be >= 0, got {j}")
    if j > TOW_MAX_EXACT:
        raise ValueError(
            f"tow({j}) has more than 2**65536 bits; heights above "
            f"{TOW_MAX_EXACT} are not representable"
        )
    value = 1
    for _ in range(j):
        value = 2**value
    return value


#: Precomputed ``tow(0) .. tow(TOW_MAX_EXACT)`` for exact log* lookups.
_TOWER_CACHE = tuple(tow(i) for i in range(TOW_MAX_EXACT + 1))


def log_star(k: int | float) -> int:
    """The iterated logarithm: ``min{i >= 0 : log2^(i)(k) <= 1}``.

    Integers are handled *exactly* via the equivalent characterisation
    ``log*(k) = i  iff  tow(i-1) < k <= tow(i)``; any Python int exceeds
    ``tow(5)`` only if it has more than 2**16 bits and never exceeds
    ``tow(6)``, so the answer for huge ints is 6.  Floats use the
    straightforward iterated ``log2``.

    Raises:
        ValueError: for non-positive input.
    """
    if isinstance(k, int):
        if k <= 0:
            raise ValueError(f"log* undefined for {k}")
        for i, boundary in enumerate(_TOWER_CACHE):
            if k <= boundary:
                return i
        return TOW_MAX_EXACT + 1  # tow(5) < k <= tow(6) for every Python int
    if k <= 0.0:
        raise ValueError(f"log* undefined for {k}")
    i = 0
    x = float(k)
    while x > 1.0:
        x = math.log2(x)
        i += 1
    return i


def log_star_table(upto: int) -> list[int]:
    """``log*`` of every integer ``1..upto`` (vectorised by thresholds).

    Uses the fact that ``log*`` changes value only at ``tow(i)``
    boundaries: ``log*(k) = i`` exactly for ``tow(i-1) < k <= tow(i)``.
    """
    if upto < 1:
        return []
    out = [0] * (upto + 1)
    i = 0
    prev = 1
    while prev < upto and i < TOW_MAX_EXACT:
        i += 1
        boundary = tow(i)
        hi = min(boundary, upto)
        for k in range(prev + 1, hi + 1):
            out[k] = i
        prev = boundary
    if prev < upto:
        # Everything above tow(TOW_MAX_EXACT) (unreachable in practice).
        for k in range(prev + 1, upto + 1):
            out[k] = TOW_MAX_EXACT + 1
    return out[1:]


def half_log_star(k: int) -> Fraction:
    """``log*(k) / 2`` as an exact fraction (the per-count latency of Thm 3.5)."""
    return Fraction(log_star(k), 2)
