"""Runtime fault state for one simulation run.

A :class:`FaultInjector` is built from a :class:`~repro.faults.plan.FaultPlan`
by the engine (via :meth:`FaultPlan.injector`) and consulted from the
engine's three phases:

* :meth:`tick` — once per visited round, emits crash/recover trace
  events whose scheduled round has been reached (rounds may be skipped by
  the engine's idle jumps, so boundaries are emitted "at or before" their
  round with the *scheduled* round recorded);
* :meth:`crashed` — whether a node is down this round (send phase skips
  crashed senders, receive phase skips crashed receivers, wake phase
  defers their wakeups);
* :meth:`on_link_entry` — the verdict for a message leaving an outbox:
  deliver, drop (loss, outage), or deliver-plus-duplicate.

All randomness comes from two ``random.Random`` streams seeded from the
plan, drawn in the engine's deterministic send order, so a run under a
plan is exactly reproducible.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.message import Message

#: Verdicts returned by :meth:`FaultInjector.on_link_entry`.
DELIVER = "deliver"
DUPLICATE = "duplicate"
DROP = "drop"
OUTAGE = "outage"


class FaultInjector:
    """Seeded per-run fault state (see module docstring)."""

    __slots__ = (
        "plan",
        "_rng_drop",
        "_rng_dup",
        "_drop_runs",
        "_crashes_by_node",
        "_outages_by_edge",
        "_boundaries",
    )

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # String seeds hash via SHA-512, so the streams are independent of
        # PYTHONHASHSEED — replays are stable across interpreters.
        self._rng_drop = random.Random(f"drop:{plan.seed}")
        self._rng_dup = random.Random(f"dup:{plan.seed}")
        #: directed link -> current run of consecutive random drops.
        self._drop_runs: dict[tuple[int, int], int] = {}
        self._crashes_by_node: dict[int, list] = {}
        for c in plan.crashes:
            self._crashes_by_node.setdefault(c.node, []).append(c)
        self._outages_by_edge: dict[tuple[int, int], list] = {}
        for o in plan.outages:
            self._outages_by_edge.setdefault(o.edge, []).append(o)
        #: (round, event, node) crash/recover boundaries not yet emitted,
        #: sorted so :meth:`tick` can emit them in schedule order.
        self._boundaries: list[tuple[int, str, int]] = sorted(
            [(c.start, "crash", c.node) for c in plan.crashes]
            + [(c.end, "recover", c.node) for c in plan.crashes if c.end is not None]
        )

    # ------------------------------------------------------------- crashes

    def has_crashes(self) -> bool:
        """Whether the plan schedules any node crash."""
        return bool(self._crashes_by_node)

    def crashed(self, node: int, round_: int) -> bool:
        """Whether ``node`` is down in ``round_``."""
        crashes = self._crashes_by_node.get(node)
        if not crashes:
            return False
        return any(c.down(round_) for c in crashes)

    def recovery_round(self, node: int, round_: int) -> int | None:
        """First round after ``round_`` in which ``node`` is live again.

        Returns ``None`` when the node never recovers.  Used by the wake
        phase to defer a crashed node's wakeups.
        """
        for c in self._crashes_by_node.get(node, ()):
            if c.down(round_):
                return c.end
        return round_ + 1  # pragma: no cover - callers check crashed() first

    def tick(self, round_: int, stats, trace, metrics=None) -> None:
        """Emit crash/recover boundaries scheduled at or before ``round_``.

        ``stats`` gains one ``node_crashes`` increment per crash window
        entered; ``trace`` (when not ``None``) records the boundary with
        its *scheduled* round, even if the engine's idle jumps skipped
        that round; ``metrics`` (when not ``None``) gains
        ``faults.node_crashes``/``faults.node_recoveries`` counters and a
        per-boundary sample so crash windows line up with the per-round
        gauges.
        """
        while self._boundaries and self._boundaries[0][0] <= round_:
            at, event, node = self._boundaries.pop(0)
            if event == "crash":
                stats.node_crashes += 1
            if metrics is not None:
                metrics.inc(
                    "faults.node_crashes" if event == "crash"
                    else "faults.node_recoveries"
                )
                metrics.sample(f"faults.{event}", at, node)
            if trace is not None:
                trace.record(event, at, node=node)

    # ------------------------------------------------------- link verdicts

    def on_link_entry(self, msg: "Message", round_: int) -> str:
        """Fate of ``msg`` as it moves from the outbox onto its link.

        Returns one of :data:`OUTAGE` (link down this round), :data:`DROP`
        (random loss), :data:`DUPLICATE` (deliver plus one copy), or
        :data:`DELIVER`.  Consecutive random drops per directed link are
        capped at the plan's ``max_consecutive_drops``; the RNG streams
        are drawn unconditionally so verdicts never depend on earlier
        forced deliveries.
        """
        plan = self.plan
        edge = (min(msg.src, msg.dst), max(msg.src, msg.dst))
        for o in self._outages_by_edge.get(edge, ()):
            if o.down(round_):
                return OUTAGE
        if plan.drop_rate > 0.0:
            lossy = self._rng_drop.random() < plan.drop_rate
            key = (msg.src, msg.dst)
            run = self._drop_runs.get(key, 0)
            if lossy and (
                plan.max_consecutive_drops is None
                or run < plan.max_consecutive_drops
            ):
                self._drop_runs[key] = run + 1
                return DROP
            self._drop_runs[key] = 0
        if plan.duplicate_rate > 0.0 and self._rng_dup.random() < plan.duplicate_rate:
            return DUPLICATE
        return DELIVER
