"""Seeded, composable fault plans for the synchronous engine.

A :class:`FaultPlan` is a *pure description* of the faults one run should
suffer: independent per-message drop and duplication probabilities,
per-round link outage windows, and node crash/recovery schedules.  The
plan carries no runtime state; the engine asks it for a
:class:`~repro.faults.injector.FaultInjector`, which holds the seeded
RNGs and per-link counters, so the same plan replayed on the same
protocol instance yields the exact same execution.

Two properties matter for the rest of the repo:

* an **empty** plan (the default-constructed ``FaultPlan()``) produces no
  injector at all — the engine takes its fault-free code paths and the
  run is byte-for-byte identical to a run without a plan;
* a plan is **eventually delivering** when every outage and crash window
  is finite and drop runs are bounded (``max_consecutive_drops`` is not
  ``None``): any message re-offered to a link often enough gets through,
  which is what the reliable-delivery wrapper needs for liveness.

The CLI grammar (see ``docs/FAULTS.md``) maps onto the same fields::

    --faults drop=0.1,dup=0.05,seed=7,runs=3
    --crash  3@10:20          (node 3 is down in rounds [10, 20))
    --outage 1-2@5:15         (edge {1, 2} is down in rounds [5, 15))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable


@dataclass(frozen=True)
class LinkOutage:
    """One undirected link down-window.

    Attributes:
        u, v: the edge's endpoints (order irrelevant).
        start: first round in which the link is down.
        end: first round in which the link is up again (exclusive).  Must
            be finite: an eternally dead link would make every plan
            violate eventual delivery.
    """

    u: int
    v: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"outage edge ({self.u}, {self.v}) is a self-loop")
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"outage window [{self.start}, {self.end}) is empty or negative"
            )

    @property
    def edge(self) -> tuple[int, int]:
        """The edge as a normalized (min, max) pair."""
        return (min(self.u, self.v), max(self.u, self.v))

    def down(self, round_: int) -> bool:
        """Whether the link is down in ``round_``."""
        return self.start <= round_ < self.end


@dataclass(frozen=True)
class NodeCrash:
    """One node crash window (fail-stop, state-preserving recovery).

    While crashed the node neither sends, receives, nor wakes; its outbox
    and inbound link queues are frozen, and deferred wakeups fire at
    recovery.  ``end is None`` means the node never recovers — such plans
    are legal but give up the liveness guarantee.

    Attributes:
        node: the crashing vertex.
        start: first round of the crash.
        end: first round the node is live again (exclusive), or ``None``
            for a permanent crash.
    """

    node: int
    start: int
    end: int | None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"crash start {self.start} is negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"crash window [{self.start}, {self.end}) is empty"
            )

    def down(self, round_: int) -> bool:
        """Whether the node is crashed in ``round_``."""
        return self.start <= round_ and (self.end is None or round_ < self.end)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded composition of message and node faults.

    Attributes:
        seed: seeds the drop and duplication RNG streams; two runs of the
            same protocol under the same plan are identical executions.
        drop_rate: probability that a message is lost when it enters a
            link (after consuming the sender's per-round send slot).
        duplicate_rate: probability that a message entering a link is
            accompanied by an identical copy one queue slot behind it.
        max_consecutive_drops: upper bound on randomly dropped messages
            *in a row per directed link*; after that many consecutive
            losses the next message is force-delivered.  ``None`` removes
            the bound (and with it the eventual-delivery guarantee).
            Outage losses do not count toward the run — outages are
            bounded by their own finite windows.
        outages: link down-windows, applied to both directions of the
            edge at link-entry time (messages already in transit on the
            link are not affected).
        crashes: node crash/recovery windows.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_consecutive_drops: int | None = 3
    outages: tuple[LinkOutage, ...] = field(default_factory=tuple)
    crashes: tuple[NodeCrash, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1), got {self.duplicate_rate}"
            )
        if self.max_consecutive_drops is not None and self.max_consecutive_drops < 1:
            raise ValueError("max_consecutive_drops must be >= 1 or None")
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # ------------------------------------------------------------- queries

    def is_empty(self) -> bool:
        """True when this plan injects nothing at all.

        The engine skips every fault hook for an empty plan, so a run
        under ``FaultPlan()`` reproduces a plain run byte for byte.
        """
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and not self.outages
            and not self.crashes
        )

    def eventually_delivers(self) -> bool:
        """Whether every message re-offered often enough gets through.

        Requires bounded drop runs, finite outage windows (enforced by
        :class:`LinkOutage`), and finite crash windows.  This is the
        hypothesis under which the reliable wrapper guarantees that
        wrapped protocols still complete.
        """
        if self.drop_rate > 0.0 and self.max_consecutive_drops is None:
            return False
        return all(c.end is not None for c in self.crashes)

    def injector(self):
        """Build the runtime fault state for one run.

        Returns ``None`` for an empty plan so the engine keeps its exact
        fault-free code paths.
        """
        if self.is_empty():
            return None
        from repro.faults.injector import FaultInjector

        return FaultInjector(self)

    def blocked_until(self, src: int, dst: int, round_: int) -> int | None:
        """First round >= ``round_`` at which ``src -> dst`` is unblocked.

        A directed hop is *blocked* while its edge is in an outage window
        or its destination is crashed — a message entering the link then
        is lost (outage) or frozen until recovery (crash).  Returns
        ``round_`` itself when the hop is already clear, the first clear
        round otherwise, or ``None`` when ``dst`` never recovers from a
        permanent crash.  This is what lets a retry policy pause its
        budget across *scheduled* unavailability instead of burning
        retransmits into a window it knows about.
        """
        edge = (min(src, dst), max(src, dst))
        r = round_
        # Each window is a single interval, so once r clears a window's
        # end that window never blocks again: the fixpoint arrives within
        # one pass per window.
        for _ in range(len(self.outages) + len(self.crashes) + 1):
            moved = False
            for c in self.crashes:
                if c.node == dst and c.down(r):
                    if c.end is None:
                        return None
                    r = c.end
                    moved = True
            for o in self.outages:
                if o.edge == edge and o.down(r):
                    r = o.end
                    moved = True
            if not moved:
                break
        return r

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """A JSON-safe dict round-tripping through :meth:`from_dict`.

        Chaos reproducer artifacts embed plans in this form.
        """
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "max_consecutive_drops": self.max_consecutive_drops,
            "outages": [
                {"u": o.u, "v": o.v, "start": o.start, "end": o.end}
                for o in self.outages
            ],
            "crashes": [
                {"node": c.node, "start": c.start, "end": c.end}
                for c in self.crashes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            seed=data["seed"],
            drop_rate=data["drop_rate"],
            duplicate_rate=data["duplicate_rate"],
            max_consecutive_drops=data["max_consecutive_drops"],
            outages=tuple(LinkOutage(**o) for o in data["outages"]),
            crashes=tuple(NodeCrash(**c) for c in data["crashes"]),
        )

    # ------------------------------------------------------------- parsing

    @classmethod
    def parse(
        cls,
        spec: str = "",
        *,
        crashes: Iterable[str] = (),
        outages: Iterable[str] = (),
    ) -> "FaultPlan":
        """Build a plan from the CLI grammar.

        ``spec`` is a comma-separated ``key=value`` list with keys
        ``drop``, ``dup``, ``seed``, and ``runs`` (the consecutive-drop
        bound; ``runs=inf`` removes it).  Each ``crashes`` item is
        ``node@start:end`` (``end`` empty for a permanent crash); each
        ``outages`` item is ``u-v@start:end``.

        Raises:
            ValueError: on any malformed field.
        """
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"malformed fault spec field {part!r}")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "drop":
                kwargs["drop_rate"] = float(value)
            elif key == "dup":
                kwargs["duplicate_rate"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "runs":
                kwargs["max_consecutive_drops"] = (
                    None if value == "inf" else int(value)
                )
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        plan = cls(**kwargs)
        if crashes:
            plan = replace(
                plan, crashes=tuple(_parse_crash(c) for c in crashes)
            )
        if outages:
            plan = replace(
                plan, outages=tuple(_parse_outage(o) for o in outages)
            )
        return plan

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        if self.is_empty():
            return "no faults"
        parts = []
        if self.drop_rate:
            bound = (
                "unbounded" if self.max_consecutive_drops is None
                else f"runs<={self.max_consecutive_drops}"
            )
            parts.append(f"drop={self.drop_rate:g} ({bound})")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        for o in self.outages:
            parts.append(f"outage {o.edge[0]}-{o.edge[1]}@{o.start}:{o.end}")
        for c in self.crashes:
            end = "" if c.end is None else c.end
            parts.append(f"crash {c.node}@{c.start}:{end}")
        parts.append(f"seed={self.seed}")
        return ", ".join(parts)


def _parse_crash(text: str) -> NodeCrash:
    """Parse ``node@start:end`` (empty end = permanent)."""
    try:
        node_s, _, window = text.partition("@")
        start_s, _, end_s = window.partition(":")
        return NodeCrash(
            node=int(node_s),
            start=int(start_s),
            end=int(end_s) if end_s else None,
        )
    except ValueError as exc:
        raise ValueError(f"malformed crash spec {text!r}: {exc}") from None


def _parse_outage(text: str) -> LinkOutage:
    """Parse ``u-v@start:end``."""
    try:
        edge_s, _, window = text.partition("@")
        u_s, _, v_s = edge_s.partition("-")
        start_s, _, end_s = window.partition(":")
        return LinkOutage(u=int(u_s), v=int(v_s), start=int(start_s), end=int(end_s))
    except ValueError as exc:
        raise ValueError(f"malformed outage spec {text!r}: {exc}") from None
