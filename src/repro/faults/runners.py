"""Fault-tolerant protocol entry points.

Each ``run_*_ft`` function runs the corresponding base protocol under a
:class:`~repro.faults.plan.FaultPlan`, with every node wrapped in the
reliable-delivery adapter (:mod:`repro.faults.reliable`).  The outputs go
through the same verifiers as the fault-free runners, so a returned
result is a *correct* one — under an eventually-delivering plan the run
completes and verifies despite drops, duplicates, outages, and (finite)
crashes.

Round budgets: faults stretch executions, so callers should size
``max_rounds`` for the retry envelope, roughly ``fault_free_rounds +
retries * timeout`` per lost hop (see ``docs/FAULTS.md``).  The defaults
below are generous.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.arrow.runner import ArrowResult, run_arrow
from repro.core.problem import CountingResult
from repro.counting.central import run_central_counting
from repro.counting.flood import run_flood_counting
from repro.faults.plan import FaultPlan
from repro.faults.reliable import RetryPolicy, wrap_reliable
from repro.sim import DelayModel, EventTrace
from repro.topology.base import Graph
from repro.topology.spanning import SpanningTree


def run_arrow_ft(
    spanning: SpanningTree,
    requests: Iterable[int],
    plan: FaultPlan,
    *,
    tail: int | None = None,
    capacity: int | None = None,
    delay_model: DelayModel | None = None,
    max_rounds: int = 10_000_000,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    policy: RetryPolicy | None = None,
    monitors: Any | None = None,
) -> ArrowResult:
    """Arrow queuing under ``plan`` with reliable delivery.

    Same contract as :func:`repro.arrow.run_arrow`; the result's
    predecessor chain is still a single queue over all requests.  Strict
    mode is unavailable: acks and retransmits legitimately exceed the
    per-round budgets, which the engine absorbs as queuing delay.
    """
    return run_arrow(
        spanning,
        requests,
        tail=tail,
        capacity=capacity,
        delay_model=delay_model,
        max_rounds=max_rounds,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        node_wrapper=wrap_reliable(policy, metrics=metrics, plan=plan),
        faults=plan,
        monitors=monitors,
    )


def run_central_counting_ft(
    graph: Graph,
    requests: Iterable[int],
    plan: FaultPlan,
    *,
    root: int = 0,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    policy: RetryPolicy | None = None,
    monitors: Any | None = None,
) -> CountingResult:
    """Central-counter counting under ``plan`` with reliable delivery."""
    return run_central_counting(
        graph,
        requests,
        root=root,
        max_rounds=max_rounds,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        node_wrapper=wrap_reliable(policy, metrics=metrics, plan=plan),
        faults=plan,
        monitors=monitors,
    )


def run_flood_counting_ft(
    graph: Graph,
    requests: Iterable[int],
    plan: FaultPlan,
    *,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    policy: RetryPolicy | None = None,
    monitors: Any | None = None,
) -> CountingResult:
    """Flood-and-rank counting under ``plan`` with reliable delivery."""
    return run_flood_counting(
        graph,
        requests,
        max_rounds=max_rounds,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        node_wrapper=wrap_reliable(policy, metrics=metrics, plan=plan),
        faults=plan,
        monitors=monitors,
    )


__all__ = [
    "run_arrow_ft",
    "run_central_counting_ft",
    "run_flood_counting_ft",
]
