"""Reliable delivery over lossy links: an ack/retry :class:`Node` adapter.

:class:`ReliableNode` wraps any protocol :class:`~repro.sim.node.Node`
and makes its message exchange survive the faults a
:class:`~repro.faults.plan.FaultPlan` injects:

* every application send travels as a ``rel`` envelope carrying a
  per-sender sequence number; the receiver acks every copy and delivers
  the payload to the wrapped node exactly once (duplicates are absorbed
  by a per-sender seen-set);
* unacked envelopes are retransmitted on a timeout with exponential
  backoff, up to a bounded retry budget — exceeding it raises
  :class:`RetryBudgetExceeded`, turning a silent deadlock into a
  diagnosable failure.

The wrapper is itself a conforming protocol node: it only talks through
the :class:`~repro.sim.node.NodeContext` API (rules R1-R5 of
``docs/LINT.md`` apply to it like to any other node), so wrapped
protocols run on the unmodified engine and their runs remain
deterministic.

Guarantee: under a plan where every message is eventually deliverable
(finite outages and crash windows, bounded drop runs — see
:meth:`FaultPlan.eventually_delivers`) and a sufficient retry budget, a
wrapped protocol's messages are all delivered exactly once, so the
protocol completes and its outputs verify.  Non-guarantees: no ordering
beyond the engine's FIFO links is restored, crashed nodes do not lose
state (crash = fail-stop pause, not amnesia), and a permanent crash or
an unbounded drop run can still exhaust the retry budget.
"""

from __future__ import annotations

from typing import Any

from repro.sim.errors import SimulationError
from repro.sim.message import Message
from repro.sim.node import Node, NodeContext


class RetryBudgetExceeded(SimulationError):
    """A reliable sender gave up on a message after ``max_retries`` resends."""

    def __init__(
        self,
        node_id: int,
        dst: int,
        kind: str,
        attempts: int,
        round_: int | None = None,
    ) -> None:
        self.node_id = node_id
        self.dst = dst
        self.kind = kind
        self.attempts = attempts
        self.round = round_
        at = "" if round_ is None else f" (round {round_})"
        super().__init__(
            f"node {node_id} gave up sending {kind!r} to {dst} after "
            f"{attempts} attempts{at} — the fault plan starved the link"
        )


class RetryPolicy:
    """Retransmission knobs for :class:`ReliableNode`.

    Attributes:
        timeout: rounds to wait for an ack before the first retransmit.
            Must cover the round trip (2 link delays) plus expected
            receiver contention; too small a value wastes bandwidth on
            spurious retransmits but never breaks correctness.
        backoff: multiplicative interval growth per retransmit (>= 1).
        max_interval: cap on the retransmit interval.
        max_retries: retransmissions allowed per message before
            :class:`RetryBudgetExceeded`.
    """

    __slots__ = ("timeout", "backoff", "max_interval", "max_retries")

    def __init__(
        self,
        timeout: int = 6,
        backoff: float = 2.0,
        max_interval: int = 64,
        max_retries: int = 30,
    ) -> None:
        if timeout < 1:
            raise ValueError(f"timeout must be >= 1 round, got {timeout}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.timeout = timeout
        self.backoff = backoff
        self.max_interval = max(timeout, max_interval)
        self.max_retries = max_retries

    def next_interval(self, interval: int) -> int:
        """The interval following ``interval`` under the backoff curve."""
        return min(self.max_interval, max(interval + 1, int(interval * self.backoff)))


class _Pending:
    """One unacked envelope awaiting retransmission."""

    __slots__ = ("dst", "kind", "payload", "attempts", "interval", "due")

    def __init__(self, dst: int, kind: str, payload: Any, interval: int, due: int):
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.attempts = 1
        self.interval = interval
        self.due = due


class _ReliableContext:
    """The :class:`NodeContext` facade handed to the wrapped node.

    Looks exactly like the engine's context (``node_id``/``now``/
    ``neighbors``/``send``/``complete``/``schedule_wakeup``) but routes
    sends through the reliability envelope and multiplexes the wrapped
    node's wakeups with the wrapper's retransmit timers.
    """

    __slots__ = ("_ctx", "_owner")

    def __init__(self, ctx: NodeContext, owner: "ReliableNode") -> None:
        self._ctx = ctx
        self._owner = owner

    @property
    def node_id(self) -> int:
        return self._ctx.node_id

    @property
    def now(self) -> int:
        return self._ctx.now

    @property
    def neighbors(self) -> tuple[int, ...]:
        return self._ctx.neighbors

    def send(self, dst: int, kind: str, payload: Any = None) -> Message:
        """Send ``(kind, payload)`` reliably: envelope, track, arm timer."""
        owner = self._owner
        seq = owner.next_seq
        owner.next_seq += 1
        policy = owner.policy
        pending = _Pending(
            dst, kind, payload,
            interval=policy.timeout,
            due=self._ctx.now + policy.timeout,
        )
        owner.pending[seq] = pending
        if owner.metrics is not None:
            owner.metrics.inc("reliable.app_sends")
        msg = self._ctx.send(dst, "rel", payload=(seq, kind, payload))
        owner._arm_timer(self._ctx)
        return msg

    def complete(self, op_id: Any, result: Any = None) -> None:
        self._ctx.complete(op_id, result=result)

    def schedule_wakeup(self, round_: int) -> None:
        owner = self._owner
        owner.inner_wakes.add(round_)
        if round_ not in owner.armed:
            owner.armed.add(round_)
            self._ctx.schedule_wakeup(round_)


class ReliableNode(Node):
    """Ack + timeout + bounded-retry wrapper around any protocol node.

    Args:
        inner: the wrapped protocol node (supplies the node id).
        policy: retransmission parameters (default :class:`RetryPolicy`).

    Message kinds on the wire:
        ``rel``: payload ``(seq, kind, payload)`` — one application
            message under a per-sender sequence number.
        ``ack``: payload ``seq`` — receipt confirmation, sent for every
            copy received (acks are not themselves acked).

    When a :class:`repro.obs.MetricsRegistry` is attached (``metrics=``,
    also reachable through :func:`wrap_reliable`), the wrapper publishes
    the reliability overhead that aggregate message counts hide:
    ``reliable.app_sends`` (application messages enveloped),
    ``reliable.retransmits``, ``reliable.acks_sent``, and
    ``reliable.duplicates_absorbed`` (copies suppressed by the
    seen-set).  As everywhere, ``metrics=None`` costs nothing.
    """

    __slots__ = (
        "inner", "policy", "metrics", "plan", "next_seq", "pending", "seen",
        "armed", "inner_wakes", "_rctx",
    )

    def __init__(
        self,
        inner: Node,
        policy: RetryPolicy | None = None,
        metrics: Any | None = None,
        plan: Any | None = None,
    ) -> None:
        super().__init__(inner.node_id)
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.metrics = metrics
        #: the run's FaultPlan, when known: scheduled outage/crash windows
        #: pause the retry budget instead of burning it (crash-aware
        #: retries — see docs/FAULTS.md).
        self.plan = plan
        self.next_seq = 0
        #: seq -> unacked envelope.
        self.pending: dict[int, _Pending] = {}
        #: sender -> seqs already delivered to the wrapped node.
        self.seen: dict[int, set[int]] = {}
        #: rounds with an engine wakeup already scheduled.
        self.armed: set[int] = set()
        #: rounds at which the wrapped node asked to be woken.
        self.inner_wakes: set[int] = set()
        self._rctx: _ReliableContext | None = None

    # ----------------------------------------------------------- plumbing

    def _proxy(self, ctx: NodeContext) -> _ReliableContext:
        if self._rctx is None:
            self._rctx = _ReliableContext(ctx, self)
        return self._rctx

    def _arm_timer(self, ctx: NodeContext) -> None:
        """Ensure a wakeup covers the earliest pending retransmission."""
        if not self.pending:
            return
        due = min(p.due for p in self.pending.values())
        due = max(due, ctx.now + 1)
        if due not in self.armed:
            self.armed.add(due)
            ctx.schedule_wakeup(due)

    # ----------------------------------------------------- engine callbacks

    def on_start(self, ctx: NodeContext) -> None:
        self.inner.on_start(self._proxy(ctx))

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind == "rel":
            seq, kind, payload = msg.payload
            ctx.send(msg.src, "ack", payload=seq)
            if self.metrics is not None:
                self.metrics.inc("reliable.acks_sent")
            seen = self.seen.setdefault(msg.src, set())
            if seq in seen:
                if self.metrics is not None:
                    self.metrics.inc("reliable.duplicates_absorbed")
                return  # duplicate (injected or retransmitted): ack only
            seen.add(seq)
            inner_msg = Message(
                src=msg.src, dst=msg.dst, kind=kind, payload=payload,
                sent_at=msg.sent_at, ready_at=msg.ready_at,
                delivered_at=msg.delivered_at, seq=msg.seq,
            )
            self.inner.on_receive(inner_msg, self._proxy(ctx))
        elif msg.kind == "ack":
            self.pending.pop(msg.payload, None)
        else:  # pragma: no cover - defensive
            raise ValueError(f"reliable node got unexpected kind {msg.kind!r}")

    def on_wake(self, ctx: NodeContext) -> None:
        t = ctx.now
        self.armed.discard(t)
        # Fire every inner wakeup due at or *before* t: when this node
        # crashes over its scheduled round, the engine defers the wakeup
        # to the recovery round, so an exact-round match would silently
        # swallow the wrapped node's timer and stall its protocol (the
        # old flood_ft-under-crash-windows failure).  Deferred wakeups
        # are coalesced into one late on_wake, matching the "wake at or
        # after r" semantics a crash-deferred timer can honestly offer.
        due_inner = [r for r in sorted(self.inner_wakes) if r <= t]
        if due_inner:
            self.inner_wakes.difference_update(due_inner)
            self.inner.on_wake(self._proxy(ctx))
        for seq in sorted(self.pending):
            p = self.pending.get(seq)
            if p is None or p.due > t:
                continue
            if self.plan is not None:
                clear = self.plan.blocked_until(self.node_id, p.dst, t)
                if clear is not None and clear > t:
                    # Scheduled outage / crash window: retransmitting now
                    # would feed the message into a link that is known to
                    # lose or freeze it.  Re-aim at the first clear round
                    # without charging the retry budget.
                    p.due = clear
                    if self.metrics is not None:
                        self.metrics.inc("reliable.budget_pauses")
                    continue
            if p.attempts > self.policy.max_retries:
                raise RetryBudgetExceeded(
                    self.node_id, p.dst, p.kind, p.attempts, round_=t
                )
            p.attempts += 1
            p.interval = self.policy.next_interval(p.interval)
            p.due = t + p.interval
            if self.metrics is not None:
                self.metrics.inc("reliable.retransmits")
            ctx.send(p.dst, "rel", payload=(seq, p.kind, p.payload))
        self._arm_timer(ctx)


def wrap_reliable(
    policy: RetryPolicy | None = None,
    metrics: Any | None = None,
    plan: Any | None = None,
):
    """A node-wrapper callable for runners' ``node_wrapper`` hooks.

    ``run_arrow(..., node_wrapper=wrap_reliable())`` wraps every protocol
    node in a :class:`ReliableNode` sharing one :class:`RetryPolicy` (and
    optionally one metrics registry).  Passing the run's ``plan`` makes
    retries crash-aware: the budget pauses across scheduled outage and
    crash windows instead of exhausting into them.
    """
    policy = policy if policy is not None else RetryPolicy()

    def _wrap(node: Node) -> ReliableNode:
        return ReliableNode(node, policy, metrics=metrics, plan=plan)

    return _wrap


def unwrap(node: Node) -> Node:
    """The protocol node behind a possibly-wrapped ``node``."""
    return node.inner if isinstance(node, ReliableNode) else node


__all__ = [
    "ReliableNode",
    "RetryPolicy",
    "RetryBudgetExceeded",
    "wrap_reliable",
    "unwrap",
]
