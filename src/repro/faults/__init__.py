"""Deterministic fault injection for the synchronous engine.

The package splits into four layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the pure seeded
  description of drops, duplications, link outages, and node crashes;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the per-run
  runtime state the engine consults (built via :meth:`FaultPlan.injector`);
* :mod:`repro.faults.reliable` — :class:`ReliableNode`, the ack/retry
  adapter that makes any protocol node survive an eventually-delivering
  plan;
* :mod:`repro.faults.runners` — ``run_*_ft`` entry points wiring wrapped
  protocols and plans through the existing runners and verifiers.

See ``docs/FAULTS.md`` for the fault model and guarantees.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, LinkOutage, NodeCrash
from repro.faults.reliable import (
    ReliableNode,
    RetryBudgetExceeded,
    RetryPolicy,
    unwrap,
    wrap_reliable,
)
from repro.faults.runners import (
    run_arrow_ft,
    run_central_counting_ft,
    run_flood_counting_ft,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "LinkOutage",
    "NodeCrash",
    "ReliableNode",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "unwrap",
    "wrap_reliable",
    "run_arrow_ft",
    "run_central_counting_ft",
    "run_flood_counting_ft",
]
