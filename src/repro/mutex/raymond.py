"""Arrow-queued token passing for distributed mutual exclusion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from repro.arrow.protocol import init_op, op_of
from repro.sim import Message, Node, NodeContext, SynchronousNetwork
from repro.topology.spanning import SpanningTree
from repro.tree import RootedTree


class _MutexNode(Node):
    """Arrow node extended with token passing and critical-section timing.

    Messages:
        ``queue``: the arrow protocol's request (payload = op id).
        ``token``: the single token, source-routed (payload = remaining
            path, a list of vertices ending at the next holder).
    """

    __slots__ = (
        "link",
        "parked",
        "requesting",
        "tree",
        "cs_rounds",
        "has_token",
        "token_for",
        "succ_of",
        "cs_completed",
        "entry_round",
    )

    def __init__(
        self,
        node_id: int,
        link: int,
        requesting: bool,
        tree: RootedTree,
        cs_rounds: int,
        is_tail: bool,
    ) -> None:
        super().__init__(node_id)
        self.link = link
        self.parked: Hashable = init_op(node_id) if link == node_id else None
        self.requesting = requesting
        self.tree = tree
        self.cs_rounds = cs_rounds
        self.has_token = is_tail
        self.token_for: Hashable = init_op(node_id) if is_tail else None
        #: op originating here -> origin vertex of its successor op
        self.succ_of: dict[Hashable, int] = {}
        #: ops originating here whose critical section has finished
        self.cs_completed: set[Hashable] = {init_op(node_id)} if is_tail else set()
        self.entry_round: int | None = None

    # -- arrow core ---------------------------------------------------------

    def _terminate(self, a: Hashable, ctx: NodeContext) -> None:
        """A queue() message for op ``a`` found its predecessor here."""
        pred = self.parked
        self.parked = a
        # This node is the origin of ``pred``; record the successor and see
        # whether the token can move on.
        self.succ_of[pred] = a[1]
        self._try_pass(ctx)

    def on_start(self, ctx: NodeContext) -> None:
        if not self.requesting:
            return
        a = op_of(self.node_id)
        w = self.link
        self.link = self.node_id
        if w == self.node_id:
            self._terminate(a, ctx)
        else:
            self.parked = a
            ctx.send(w, "queue", payload=a)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind == "queue":
            a = msg.payload
            w = self.link
            self.link = msg.src
            if w == self.node_id:
                self._terminate(a, ctx)
            else:
                ctx.send(w, "queue", payload=a)
        elif msg.kind == "token":
            path = msg.payload
            if path:
                ctx.send(path[0], "token", payload=path[1:])
            else:
                self._acquire(ctx)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")

    # -- token / critical section -------------------------------------------

    def _acquire(self, ctx: NodeContext) -> None:
        """The token arrived for this node's own operation: enter the CS."""
        if self.has_token:
            return  # spurious second token; acquiring is idempotent
        self.has_token = True
        self.token_for = op_of(self.node_id)
        self.entry_round = ctx.now
        ctx.complete(op_of(self.node_id), result=ctx.now)
        if self.cs_rounds == 0:
            self._exit_cs(ctx)
        else:
            ctx.schedule_wakeup(ctx.now + self.cs_rounds)

    def on_wake(self, ctx: NodeContext) -> None:
        self._exit_cs(ctx)

    def _exit_cs(self, ctx: NodeContext) -> None:
        self.cs_completed.add(op_of(self.node_id))
        self._try_pass(ctx)

    def _try_pass(self, ctx: NodeContext) -> None:
        if not self.has_token:
            return
        op = self.token_for
        if op not in self.cs_completed or op not in self.succ_of:
            return
        target = self.succ_of[op]
        self.has_token = False
        if target == self.node_id:
            self._acquire(ctx)
        else:
            path = self.tree.path(self.node_id, target)[1:]
            ctx.send(path[0], "token", payload=path[1:])


@dataclass(frozen=True)
class MutexOutcome:
    """Result of a token-mutex run.

    Attributes:
        requests: requesting vertices, sorted.
        cs_rounds: critical-section duration used.
        entry_rounds: vertex -> round it entered the critical section.
        order: vertices in critical-section order.
    """

    requests: tuple[int, ...]
    cs_rounds: int
    entry_rounds: dict[int, int]
    order: tuple[int, ...]

    @property
    def total_waiting(self) -> int:
        """Sum of entry rounds — total time spent waiting for the CS."""
        return sum(self.entry_rounds.values())

    def mutual_exclusion_holds(self) -> bool:
        """No two critical sections overlap (entries >= cs_rounds apart)."""
        entries = sorted(self.entry_rounds.values())
        return all(
            b - a >= self.cs_rounds for a, b in zip(entries, entries[1:])
        )


def run_token_mutex(
    spanning: SpanningTree,
    requests: Iterable[int],
    *,
    cs_rounds: int = 1,
    tail: int | None = None,
    capacity: int | None = None,
    max_rounds: int = 50_000_000,
    trace: Any | None = None,
    monitors: Any | None = None,
) -> MutexOutcome:
    """Run one-shot token-based mutual exclusion over the arrow queue.

    Args:
        spanning: spanning tree carrying both the arrow queue and the
            token's travels.
        requests: vertices that want the critical section (all request at
            round 0).
        cs_rounds: how long each critical section lasts.
        tail: initial token holder (default: tree root).
        capacity: per-round message budget (default: tree max degree).
        max_rounds: engine safety limit.
        trace: optional :class:`~repro.sim.EventTrace` recording engine
            events.
        monitors: optional :class:`repro.resilience.MonitorSet` — pair
            with :class:`repro.resilience.TokenInvariant` to assert token
            uniqueness at the end of every round.

    Raises:
        AssertionError: if the mutual-exclusion property is violated
            (would indicate a protocol bug).
    """
    tree = spanning.tree
    if tail is None:
        tail = tree.root
    if capacity is None:
        capacity = max(1, spanning.max_degree())
    if cs_rounds < 0:
        raise ValueError(f"cs_rounds must be >= 0, got {cs_rounds}")

    if tail == tree.root:
        routing_tree = tree
        parent_toward_tail = tree.parent
    else:
        routing_tree = RootedTree.from_edges(tree.n, tree.edges(), root=tail)
        parent_toward_tail = routing_tree.parent

    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nodes = {
        v: _MutexNode(
            v,
            link=parent_toward_tail[v],
            requesting=(v in req_set),
            tree=routing_tree,
            cs_rounds=cs_rounds,
            is_tail=(v == tail),
        )
        for v in range(tree.n)
    }
    net = SynchronousNetwork(
        spanning.as_graph(),
        nodes,
        send_capacity=capacity,
        recv_capacity=capacity,
        trace=trace,
        monitors=monitors,
    )
    net.run(max_rounds=max_rounds)

    entry = {op[1]: r for op, r in net.delays.delay_by_op().items()}
    if set(entry) != req_set:
        raise AssertionError(
            f"{len(entry)} of {len(req)} requesters entered the CS"
        )
    order = tuple(sorted(entry, key=lambda v: entry[v]))
    outcome = MutexOutcome(
        requests=req, cs_rounds=cs_rounds, entry_rounds=entry, order=order
    )
    if not outcome.mutual_exclusion_holds():
        raise AssertionError("mutual exclusion violated")
    return outcome
