"""Token-based distributed mutual exclusion on the arrow tree.

Raymond's tree-based mutual exclusion (TOCS 1989) is the origin of the
arrow protocol (the paper's reference [9]): queuing requests form a
distributed queue and a single token travels from each critical-section
holder to its successor.  This package implements the full loop —
arrow queuing for the order, successor notification at the predecessor's
origin, token forwarding along tree paths, and critical-section timing —
and checks the mutual-exclusion safety property on every run.
"""

from repro.mutex.raymond import MutexOutcome, run_token_mutex

__all__ = ["MutexOutcome", "run_token_mutex"]
