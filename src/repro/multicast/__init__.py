"""Totally ordered multicast — the paper's motivating application.

Section 1 motivates the counting-vs-queuing comparison with totally
ordered multicast (Herlihy, Tirthapura & Wattenhofer, OSR 2001):

* the *counting-based* solution has each sender fetch a sequence number
  from a distributed counter and receivers deliver in sequence order;
* the *queuing-based* solution has each sender fetch its predecessor's
  identity via distributed queuing and receivers reconstruct the global
  order by chaining predecessors.

Both are implemented end-to-end on the simulator: a coordination phase
(any counting/queuing runner) followed by a dissemination phase (flooding
with the model's contention), with receivers buffering messages until
their delivery condition holds.  The consistency checker asserts all
receivers deliver identical sequences — and the delay comparison shows
the queuing flavour winning exactly as the paper predicts.
"""

from repro.multicast.ordered import (
    MulticastOutcome,
    run_counting_multicast,
    run_queuing_multicast,
)

__all__ = [
    "MulticastOutcome",
    "run_counting_multicast",
    "run_queuing_multicast",
]
