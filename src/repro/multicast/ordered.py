"""Counting-based vs queuing-based totally ordered multicast.

Delay accounting note: the coordination delay of the queuing flavour is
the paper's queuing delay — the round at which the operation's
predecessor is *determined* (its queue() message terminates).  Routing
that identity back to the sender is a reply leg over the same tree path,
at most a constant factor; the comparison's asymptotics are unaffected,
and using the paper's own metric keeps the two flavours directly
comparable with the theorems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.arrow.runner import run_arrow
from repro.core.verify import verify_total_order_consistency
from repro.counting.combining import run_combining_counting
from repro.sim import Message, Node, NodeContext, SynchronousNetwork
from repro.topology.base import Graph
from repro.topology.spanning import SpanningTree


@dataclass(frozen=True)
class MulticastOutcome:
    """Result of one ordered-multicast execution.

    Attributes:
        flavour: ``"counting"`` or ``"queuing"``.
        senders: the multicasting vertices, sorted.
        coordination_delays: sender -> rounds spent obtaining its sequence
            number / predecessor id (the coordination phase the paper
            compares).
        delivery_times: (receiver, sender) -> round the receiver
            *delivered* the sender's message to the application.
        delivery_order: the common delivery sequence (sender ids) —
            identical at every receiver, verified.
    """

    flavour: str
    senders: tuple[int, ...]
    coordination_delays: dict[int, int]
    delivery_times: dict[tuple[int, int], int]
    delivery_order: tuple[int, ...]

    @property
    def total_coordination_delay(self) -> int:
        """The paper's metric for the coordination phase."""
        return sum(self.coordination_delays.values())

    @property
    def completion_time(self) -> int:
        """Round by which every receiver delivered every message."""
        return max(self.delivery_times.values(), default=0)


class _DisseminationNode(Node):
    """Flooding receiver with order-enforcing delivery buffering.

    Messages (kind ``mc``): payload ``(sender, meta)`` where ``meta`` is a
    sequence number (counting flavour) or the predecessor sender id / None
    (queuing flavour).
    """

    __slots__ = (
        "mode",
        "sends_at",
        "meta",
        "known",
        "pending",
        "delivered_list",
        "delivered_at",
        "expected",
    )

    def __init__(
        self,
        node_id: int,
        mode: str,
        sends_at: int | None,
        meta: Hashable,
        expected: int,
    ) -> None:
        super().__init__(node_id)
        self.mode = mode
        self.sends_at = sends_at
        self.meta = meta
        #: sender -> meta for every message seen so far
        self.known: dict[int, Hashable] = {}
        self.pending: dict[int, Hashable] = {}
        self.delivered_list: list[int] = []
        self.delivered_at: dict[int, int] = {}
        self.expected = expected

    # -- delivery rule -----------------------------------------------------

    def _try_deliver(self, ctx: NodeContext) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self.mode == "counting":
                nxt = len(self.delivered_list) + 1
                for sender, seq in sorted(self.pending.items()):
                    if seq == nxt:
                        self._deliver(sender, ctx)
                        progressed = True
                        break
            else:
                delivered = set(self.delivered_list)
                for sender, pred in sorted(self.pending.items()):
                    if pred is None or pred in delivered:
                        self._deliver(sender, ctx)
                        progressed = True
                        break

    def _deliver(self, sender: int, ctx: NodeContext) -> None:
        del self.pending[sender]
        self.delivered_list.append(sender)
        self.delivered_at[sender] = ctx.now
        if len(self.delivered_list) == self.expected:
            ctx.complete(("deliv", self.node_id), result=tuple(self.delivered_list))

    # -- flooding ------------------------------------------------------------

    def _learn(self, sender: int, meta: Hashable, from_: int | None, ctx: NodeContext) -> None:
        if sender in self.known:
            return
        self.known[sender] = meta
        self.pending[sender] = meta
        for u in ctx.neighbors:
            if u != from_:
                ctx.send(u, "mc", payload=(sender, meta))
        self._try_deliver(ctx)

    def on_start(self, ctx: NodeContext) -> None:
        if self.sends_at == 0:
            self._learn(self.node_id, self.meta, None, ctx)
        elif self.sends_at is not None:
            ctx.schedule_wakeup(self.sends_at)

    def on_wake(self, ctx: NodeContext) -> None:
        self._learn(self.node_id, self.meta, None, ctx)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        sender, meta = msg.payload
        self._learn(sender, meta, msg.src, ctx)
        self._try_deliver(ctx)


def _run_dissemination(
    graph: Graph,
    mode: str,
    start_round: dict[int, int],
    meta: dict[int, Hashable],
    max_rounds: int,
) -> tuple[dict[tuple[int, int], int], tuple[int, ...]]:
    senders = sorted(start_round)
    nodes = {
        v: _DisseminationNode(
            v,
            mode=mode,
            sends_at=start_round.get(v),
            meta=meta.get(v),
            expected=len(senders),
        )
        for v in graph.vertices()
    }
    net = SynchronousNetwork(graph, nodes, send_capacity=1, recv_capacity=1)
    net.run(max_rounds=max_rounds)

    delivery_times: dict[tuple[int, int], int] = {}
    orders = []
    for v in graph.vertices():
        node = nodes[v]
        for s in senders:
            delivery_times[(v, s)] = node.delivered_at[s]
        orders.append(node.delivered_list)
    verify_total_order_consistency(orders)
    return delivery_times, tuple(orders[0])


def run_counting_multicast(
    graph: Graph,
    spanning: SpanningTree,
    senders: Iterable[int],
    *,
    counting_runner: Callable[..., object] | None = None,
    max_rounds: int = 50_000_000,
) -> MulticastOutcome:
    """Ordered multicast via distributed counting (the conventional solution).

    Phase 1: the senders obtain sequence numbers from a combining-tree
    counter on ``spanning`` (or any runner with the same signature).
    Phase 2: each sender floods its message — tagged with its sequence
    number — starting the round its number arrived; receivers deliver in
    sequence order.
    """
    senders_t = tuple(sorted(set(senders)))
    runner = counting_runner or run_combining_counting
    coord = runner(spanning, senders_t, max_rounds=max_rounds)
    start = {v: coord.delays[v] for v in senders_t}
    meta: dict[int, Hashable] = {v: coord.counts[v] for v in senders_t}
    delivery, order = _run_dissemination(graph, "counting", start, meta, max_rounds)
    return MulticastOutcome(
        flavour="counting",
        senders=senders_t,
        coordination_delays=dict(coord.delays),
        delivery_times=delivery,
        delivery_order=order,
    )


def run_queuing_multicast(
    graph: Graph,
    spanning: SpanningTree,
    senders: Iterable[int],
    *,
    max_rounds: int = 50_000_000,
) -> MulticastOutcome:
    """Ordered multicast via distributed queuing (Herlihy et al.'s proposal).

    Phase 1: the senders run the arrow protocol on ``spanning``; each
    message is tagged with its predecessor's sender id (``None`` for the
    first).  Phase 2 floods as in the counting flavour; receivers deliver
    a message once its predecessor has been delivered.
    """
    senders_t = tuple(sorted(set(senders)))
    coord = run_arrow(spanning, senders_t, max_rounds=max_rounds)
    start = {v: coord.delays[("op", v)] for v in senders_t}
    meta: dict[int, Hashable] = {}
    for v in senders_t:
        pred = coord.predecessors[("op", v)]
        meta[v] = None if pred[0] == "init" else pred[1]
    delivery, order = _run_dissemination(graph, "queuing", start, meta, max_rounds)
    return MulticastOutcome(
        flavour="queuing",
        senders=senders_t,
        coordination_delays={v: coord.delays[("op", v)] for v in senders_t},
        delivery_times=delivery,
        delivery_order=order,
    )
