"""Plain-text rendering of experiment tables (used by benches and docs)."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.experiments.harness import ExperimentResult


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render rows as an aligned monospaced table.

    Args:
        rows: mappings with identical keys (first row defines the column
            order when ``columns`` is omitted).
        columns: explicit column selection/order.
    """
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    )
    return f"{header}\n{sep}\n{body}"


def render_experiment(result: ExperimentResult) -> str:
    """Full text block for one experiment: header, table, checks, notes."""
    parts = [
        f"== {result.exp_id}: {result.title}",
        f"   (reproduces {result.paper_ref})",
        "",
        render_table(result.rows),
        "",
    ]
    parts.extend(str(c) for c in result.checks)
    if result.notes:
        parts.extend(["", result.notes])
    parts.append("")
    return "\n".join(parts)
