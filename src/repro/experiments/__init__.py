"""The experiment suite: one entry per theorem/lemma/figure of the paper.

Each ``run_e*`` function in :mod:`repro.experiments.suite` executes one
row of DESIGN.md's per-experiment index end-to-end — build the topology,
run the protocols, evaluate the paper's bound expressions, and return an
:class:`~repro.experiments.harness.ExperimentResult` whose ``checks``
encode the pass criteria (shape, factor, crossover).  The benchmark suite
and EXPERIMENTS.md are both generated from these functions so the
documented numbers are exactly the reproducible ones.
"""

from repro.experiments.executor import resolve_cell, run_cell, run_suite
from repro.experiments.harness import Check, ExperimentResult, suite_metrics
from repro.experiments.report import render_experiment, render_table
from repro.experiments.suite import (
    ALL_EXPERIMENTS,
    run_e1_fig1_semantics,
    run_e2_thm35_general_lower_bound,
    run_e3_recurrences,
    run_e4_thm36_diameter_lower_bound,
    run_e5_thm41_arrow_vs_tsp,
    run_e6_lemma43_list_tsp,
    run_e7_thm47_tree_tsp,
    run_e8_cor42_rosenkrantz,
    run_e9_thm45_hamilton,
    run_e10_thm412_mary,
    run_e11_thm413_high_diameter,
    run_e12_star_counterexample,
    run_e13_multicast,
    run_e14_ablation_tree_choice,
    run_e15_ablation_counters,
    run_e16_longlived,
    run_e21_fault_tolerance,
)

__all__ = [
    "Check",
    "ExperimentResult",
    "suite_metrics",
    "resolve_cell",
    "run_cell",
    "run_suite",
    "render_experiment",
    "render_table",
    "ALL_EXPERIMENTS",
    "run_e1_fig1_semantics",
    "run_e2_thm35_general_lower_bound",
    "run_e3_recurrences",
    "run_e4_thm36_diameter_lower_bound",
    "run_e5_thm41_arrow_vs_tsp",
    "run_e6_lemma43_list_tsp",
    "run_e7_thm47_tree_tsp",
    "run_e8_cor42_rosenkrantz",
    "run_e9_thm45_hamilton",
    "run_e10_thm412_mary",
    "run_e11_thm413_high_diameter",
    "run_e12_star_counterexample",
    "run_e13_multicast",
    "run_e14_ablation_tree_choice",
    "run_e15_ablation_counters",
    "run_e16_longlived",
    "run_e21_fault_tolerance",
]
