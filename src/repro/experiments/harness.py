"""Experiment result containers and pass-criteria records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


@dataclass(frozen=True)
class Check:
    """One pass criterion of an experiment.

    Attributes:
        name: short criterion label, e.g. ``"counting >= Thm3.5 bound"``.
        passed: whether the criterion held on this run.
        detail: the concrete numbers behind the verdict.
    """

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    Attributes:
        exp_id: DESIGN.md experiment id, e.g. ``"E4"``.
        title: one-line description.
        paper_ref: the theorem/lemma/figure reproduced.
        rows: the regenerated table (list of column->value mappings).
        checks: pass criteria with verdicts.
        notes: free-form commentary rendered under the table.
    """

    exp_id: str
    title: str
    paper_ref: str
    rows: list[Mapping[str, Any]] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    notes: str = ""

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> list[Check]:
        """The checks that did not hold (empty on a clean run)."""
        return [c for c in self.checks if not c.passed]

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Append a criterion verdict."""
        self.checks.append(Check(name=name, passed=bool(passed), detail=detail))

    def require(self) -> "ExperimentResult":
        """Raise if any check failed (used by tests and benches).

        Raises:
            AssertionError: listing every failed criterion.
        """
        bad = self.failed_checks()
        if bad:
            msgs = "\n".join(str(c) for c in bad)
            raise AssertionError(f"{self.exp_id} failed checks:\n{msgs}")
        return self

    def metrics_row(self) -> dict[str, Any]:
        """A JSON-safe summary row for metrics export (``--metrics-json``)."""
        return {
            "experiment": self.exp_id,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "rows": len(self.rows),
            "checks_total": len(self.checks),
            "checks_passed": sum(1 for c in self.checks if c.passed),
            "passed": self.passed,
        }


def suite_metrics(
    runs: Sequence[tuple["ExperimentResult", float]]
) -> dict[str, Any]:
    """Aggregate metrics document for a batch of experiment runs.

    Args:
        runs: ``(result, elapsed_seconds)`` pairs in execution order.

    Returns:
        A JSON-safe document with one row per experiment plus totals —
        what ``python -m repro run --metrics-json`` writes alongside the
        rendered tables.
    """
    experiments = []
    for result, elapsed in runs:
        row = result.metrics_row()
        row["elapsed_s"] = round(elapsed, 3)
        experiments.append(row)
    return {
        "experiments": experiments,
        "experiments_run": len(experiments),
        "experiments_passed": sum(1 for r, _ in runs if r.passed),
        "total_elapsed_s": round(sum(e for _, e in runs), 3),
    }


def fit_slope(rows: Sequence[Mapping[str, Any]], x_col: str, y_col: str) -> float:
    """Log-log growth exponent of ``y_col`` against ``x_col`` over the rows."""
    from repro.core.comparison import growth_exponent

    xs = [row[x_col] for row in rows]
    ys = [row[y_col] for row in rows]
    return growth_exponent(xs, ys)
