"""Experiment result containers and pass-criteria records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


@dataclass(frozen=True)
class Check:
    """One pass criterion of an experiment.

    Attributes:
        name: short criterion label, e.g. ``"counting >= Thm3.5 bound"``.
        passed: whether the criterion held on this run.
        detail: the concrete numbers behind the verdict.
    """

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    Attributes:
        exp_id: DESIGN.md experiment id, e.g. ``"E4"``.
        title: one-line description.
        paper_ref: the theorem/lemma/figure reproduced.
        rows: the regenerated table (list of column->value mappings).
        checks: pass criteria with verdicts.
        notes: free-form commentary rendered under the table.
    """

    exp_id: str
    title: str
    paper_ref: str
    rows: list[Mapping[str, Any]] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    notes: str = ""

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> list[Check]:
        """The checks that did not hold (empty on a clean run)."""
        return [c for c in self.checks if not c.passed]

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        """Append a criterion verdict."""
        self.checks.append(Check(name=name, passed=bool(passed), detail=detail))

    def require(self) -> "ExperimentResult":
        """Raise if any check failed (used by tests and benches).

        Raises:
            AssertionError: listing every failed criterion.
        """
        bad = self.failed_checks()
        if bad:
            msgs = "\n".join(str(c) for c in bad)
            raise AssertionError(f"{self.exp_id} failed checks:\n{msgs}")
        return self


def fit_slope(rows: Sequence[Mapping[str, Any]], x_col: str, y_col: str) -> float:
    """Log-log growth exponent of ``y_col`` against ``x_col`` over the rows."""
    from repro.core.comparison import growth_exponent

    xs = [row[x_col] for row in rows]
    ys = [row[y_col] for row in rows]
    return growth_exponent(xs, ys)
