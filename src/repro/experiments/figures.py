"""ASCII figures for the experiment record.

The paper's figures are illustrations, not data plots, but the
reproduction's headline series deserve a visual: these helpers render
the separation curves and per-rank latency profiles as terminal-friendly
charts, embedded into EXPERIMENTS.md by the generator.
"""

from __future__ import annotations

from repro.analysis import ascii_bars, latency_by_rank, sparkline
from repro.arrow import run_arrow
from repro.counting import run_combining_counting, run_flood_counting
from repro.topology import complete_graph, diameter, path_graph
from repro.counting import run_central_counting
from repro.topology.spanning import embedded_binary_tree, path_spanning_tree


def figure_separation_curve(sizes=(8, 16, 32, 64, 128)) -> str:
    """F1: counting/queuing total-delay ratio growing with n on K_n."""
    ratios = []
    rows = []
    for n in sizes:
        g = complete_graph(n)
        arrow = run_arrow(path_spanning_tree(g), range(n))
        counting = run_combining_counting(embedded_binary_tree(g), range(n))
        ratio = counting.total_delay / max(1, arrow.total_delay)
        ratios.append(ratio)
        rows.append((f"n={n}", round(ratio, 2)))
    lines = [
        "F1 — the separation grows: counting/queuing total-delay ratio on K_n",
        "",
        ascii_bars(rows, width=44),
        "",
        f"trend: {sparkline(ratios, width=len(ratios))}  (monotone growth = Theorem 4.5)",
    ]
    return "\n".join(lines)


def figure_latency_profiles(n: int = 48) -> str:
    """F2: per-rank latency vs the per-op lower bounds, both regimes."""
    g = complete_graph(n)
    flood = run_flood_counting(g, range(n))
    p1 = latency_by_rank(flood, n=n, diameter=diameter(g))

    gp = path_graph(n)
    central = run_central_counting(gp, range(n), root=0)
    p2 = latency_by_rank(central, n=n, diameter=n - 1)

    def fmt(profile):
        binding = [
            max(a, b)
            for a, b in zip(profile.general_bounds, profile.diameter_bounds)
        ]
        return (
            f"  measured : {sparkline(profile.delays, width=48)}\n"
            f"  bound    : {sparkline(binding, width=48)}\n"
            f"  respected: {profile.respects_bounds()}"
        )

    return "\n".join(
        [
            "F2 — per-rank latency (x = rank received, left to right)",
            "",
            f"flood counting on {g.name} (Lemma 3.1 regime):",
            fmt(p1),
            "",
            f"central counting on {gp.name} (Theorem 3.6 regime):",
            fmt(p2),
        ]
    )


ALL_FIGURES = {
    "F1": figure_separation_curve,
    "F2": figure_latency_profiles,
}
