"""Parallel experiment execution over a process pool.

Every experiment cell — one ``(experiment id, scale)`` pair — is
deterministic and shares nothing with any other cell: it builds its own
topologies, runs its own simulations, and returns a self-contained
:class:`~repro.experiments.harness.ExperimentResult`.  The suite is
therefore embarrassingly parallel, and this module fans cells out over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Only plain strings cross the process boundary going in (the cell
coordinates; workers re-resolve the experiment callables from the
registry locally, since the bench-scale lambdas do not pickle) and
``ExperimentResult`` dataclasses coming back.  Results are reassembled
in submission order, so ``run_suite(ids, jobs=4)`` yields the same
sequence of results as ``jobs=1`` — only the per-cell wall-clock
timings differ.  ``repro run --jobs N`` is the CLI surface.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import ExperimentResult


def resolve_cell(exp_id: str, scale: str = "test") -> Callable[[], "ExperimentResult"]:
    """The zero-argument callable for one experiment cell.

    Args:
        exp_id: experiment id from the registry, e.g. ``"E4"``.
        scale: ``"test"`` (suite defaults) or ``"bench"`` (the larger
            parameterisations from :func:`repro.experiments.suite.bench_scale`;
            experiments without a bench entry fall back to their defaults).

    Raises:
        KeyError: for an unknown experiment id.
    """
    from repro.experiments.suite import ALL_EXPERIMENTS, bench_scale

    if exp_id not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}")
    if scale == "bench":
        fn = bench_scale().get(exp_id)
        if fn is not None:
            return fn
    return ALL_EXPERIMENTS[exp_id]


def run_cell(exp_id: str, scale: str = "test") -> tuple["ExperimentResult", float]:
    """Run one cell and return ``(result, elapsed_seconds)``.

    Module-level (not a closure) so a process pool can pickle it by
    reference; the worker resolves the experiment callable locally.
    """
    fn = resolve_cell(exp_id, scale)
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def run_suite(
    exp_ids: Sequence[str],
    *,
    scale: str = "test",
    jobs: int = 1,
) -> list[tuple["ExperimentResult", float]]:
    """Run experiment cells, optionally fanned out over worker processes.

    Args:
        exp_ids: experiment ids in the order results should come back.
        scale: ``"test"`` or ``"bench"`` (see :func:`resolve_cell`).
        jobs: worker processes; ``1`` (the default) runs everything in
            this process with no pool.

    Returns:
        ``(result, elapsed_seconds)`` pairs in ``exp_ids`` order —
        independent of ``jobs``, which only changes wall-clock timing.

    Raises:
        KeyError: for an unknown experiment id (validated up front, so a
            bad id fails fast instead of mid-fan-out).
    """
    ids = list(exp_ids)
    for exp_id in ids:
        resolve_cell(exp_id, scale)  # validate before spawning workers
    if jobs <= 1 or len(ids) <= 1:
        return [run_cell(exp_id, scale) for exp_id in ids]
    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        futures = [pool.submit(run_cell, exp_id, scale) for exp_id in ids]
        return [f.result() for f in futures]
