"""One runnable experiment per theorem/lemma/figure of the paper.

Every function returns an :class:`~repro.experiments.harness.ExperimentResult`
whose ``rows`` regenerate the corresponding table/series and whose
``checks`` encode the *shape* criteria: who wins, by what factor, where
the crossover falls.  Absolute round counts are simulator-specific; the
checks are written against the paper's asymptotic statements.

Default sizes are chosen so the full suite runs in a couple of minutes;
pass larger ``sizes`` for publication-scale sweeps.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.arrow import arrow_vs_tsp, run_arrow, run_arrow_longlived
from repro.arrow.longlived import poisson_issue_times
from repro.bounds import (
    ab_trajectory,
    binary_tree_queuing_bound,
    constant_degree_queuing_bound,
    f_recurrence,
    list_queuing_bound,
    mary_tree_queuing_bound,
    theorem35_lower_bound,
    theorem36_lower_bound,
    tow,
    verify_ab_tower_bound,
    verify_f_bound,
)
from repro.core.comparison import growth_exponent
from repro.counting import (
    run_central_counting,
    run_central_queuing,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
)
from repro.experiments.harness import ExperimentResult
from repro.multicast import run_counting_multicast, run_queuing_multicast
from repro.mutex import run_token_mutex
from repro.topology import (
    caterpillar_graph,
    complete_graph,
    diameter,
    hypercube_graph,
    lollipop_graph,
    mesh_graph,
    path_graph,
    perfect_mary_tree,
    star_graph,
)
from repro.topology.spanning import (
    SpanningTree,
    bfs_spanning_tree,
    dfs_spanning_tree,
    embedded_binary_tree,
    embedded_mary_tree,
    path_spanning_tree,
    star_spanning_tree,
)
from repro.tree import RootedTree
from repro.tree import random_tree as _random_rooted_tree
from repro.tsp import (
    binary_tree_tsp_bound,
    lemma44_legs,
    list_tsp_bound,
    mary_tree_tsp_bound,
    nearest_neighbor_tour,
    rosenkrantz_nn_bound,
)
from repro.tsp.runs import satisfies_lemma44




# ---------------------------------------------------------------------------
# E1 — Fig. 1: the semantics of counting vs queuing on one instance
# ---------------------------------------------------------------------------


def run_e1_fig1_semantics() -> ExperimentResult:
    """Reproduce Fig. 1: three requesters, counting ranks vs queuing preds."""
    res = ExperimentResult(
        exp_id="E1",
        title="Counting vs queuing semantics on one instance",
        paper_ref="Fig. 1",
    )
    g = complete_graph(6)
    requests = [0, 2, 4]  # the solid nodes a, c, e of Fig. 1

    counting = run_central_counting(g, requests, root=0)
    st = path_spanning_tree(g)
    queuing = run_arrow(st, requests)
    order = queuing.order()

    for v in requests:
        op = ("op", v)
        pred = queuing.predecessors[op]
        pred_label = "init" if pred[0] == "init" else f"node {pred[1]}"
        res.rows.append(
            {
                "node": v,
                "count_received": counting.counts[v],
                "queuing_pred": pred_label,
                "count_delay": counting.delays[v],
                "queue_delay": queuing.delays[op],
            }
        )
    res.check(
        "counting hands out exactly {1..|R|}",
        sorted(counting.counts.values()) == [1, 2, 3],
        f"counts={counting.counts}",
    )
    res.check(
        "queuing forms one chain over R",
        sorted(order) == sorted(requests),
        f"order={order}",
    )
    res.notes = (
        "Counting gives each requester global information (its rank); "
        "queuing gives only the local predecessor — the informational "
        "asymmetry the paper builds on."
    )
    return res


# ---------------------------------------------------------------------------
# E2 — Theorem 3.5: Omega(n log* n) on any graph (K_n, all counting algos)
# ---------------------------------------------------------------------------


def run_e2_thm35_general_lower_bound(
    sizes: Sequence[int] = (8, 16, 32, 64),
) -> ExperimentResult:
    """Every counting algorithm on K_n dominates the Theorem 3.5 sum."""
    res = ExperimentResult(
        exp_id="E2",
        title="General counting lower bound on the complete graph",
        paper_ref="Theorem 3.5",
    )
    from repro.bounds.counting_lb import verify_per_op_bounds

    min_margin = float("inf")
    arrow_beats_all = True
    per_op_ok = True
    for n in sizes:
        g = complete_graph(n)
        requests = list(range(n))
        lb = theorem35_lower_bound(n)
        combining = run_combining_counting(embedded_binary_tree(g), requests)
        flood = run_flood_counting(g, requests)
        cnet = run_counting_network(g, requests)
        central = run_central_counting(g, requests)
        arrow = run_arrow(path_spanning_tree(g), requests)
        best_counting = min(
            combining.total_delay,
            flood.total_delay,
            cnet.total_delay,
            central.total_delay,
        )
        res.rows.append(
            {
                "n": n,
                "LB(Thm3.5)": lb,
                "combining": combining.total_delay,
                "flood": flood.total_delay,
                "cnet": cnet.total_delay,
                "central": central.total_delay,
                "arrow(queuing)": arrow.total_delay,
            }
        )
        for name, total in (
            ("combining", combining.total_delay),
            ("flood", flood.total_delay),
            ("cnet", cnet.total_delay),
            ("central", central.total_delay),
        ):
            if lb > 0:
                min_margin = min(min_margin, total / lb)
        for r in (combining, flood, cnet, central):
            per_op_ok &= verify_per_op_bounds(r.counts, r.delays, n, 1, True)
        if n >= 16 and arrow.total_delay >= best_counting:
            arrow_beats_all = False
    res.check(
        "every counting algorithm >= Thm 3.5 bound",
        min_margin >= 1.0,
        f"min measured/bound = {min_margin:.2f}",
    )
    res.check(
        "every individual operation respects the Lemma 3.1 latency bound",
        per_op_ok,
    )
    res.check(
        "arrow (queuing) beats the best counting algorithm for n >= 16",
        arrow_beats_all,
    )
    return res


# ---------------------------------------------------------------------------
# E3 — Lemmas 3.2-3.4 and 4.8: the growth recurrences
# ---------------------------------------------------------------------------


def run_e3_recurrences(t_max: int = 4, k_max: int = 12) -> ExperimentResult:
    """The a/b information-spread recurrences and the f(k) tour recurrence."""
    res = ExperimentResult(
        exp_id="E3",
        title="Information-spread and tour-cost recurrences",
        paper_ref="Lemmas 3.2, 3.3, 3.4, 4.8",
    )
    a, b = ab_trajectory(t_max)
    for t in range(t_max + 1):
        if 2 * t <= 5 and tow(2 * t) < 10**12:
            tower_label = str(tow(2 * t))
        else:
            tower_label = f"tow({2 * t})"  # astronomically large
        res.rows.append(
            {
                "t": t,
                "a(t)": a[t] if a[t] < 10**12 else f"~2^{a[t].bit_length() - 1}",
                "b(t)": b[t] if b[t] < 10**12 else f"~2^{b[t].bit_length() - 1}",
                "tow(2t)": tower_label,
            }
        )
    res.check("a(t), b(t) <= tow(2t)", verify_ab_tower_bound(t_max))
    res.check(f"f(k) < 2^(k+2) for k <= {k_max}", verify_f_bound(k_max))
    res.check(
        "f(5) matches the closed recursion",
        f_recurrence(5) == 2 * f_recurrence(4) + 10,
        f"f(5)={f_recurrence(5)}",
    )
    return res


# ---------------------------------------------------------------------------
# E4 — Theorem 3.6: diameter-based lower bound (list and mesh)
# ---------------------------------------------------------------------------


def run_e4_thm36_diameter_lower_bound(
    list_sizes: Sequence[int] = (16, 32, 64, 128),
    mesh_sides: Sequence[int] = (3, 4, 5, 6),
) -> ExperimentResult:
    """Counting on high-diameter graphs costs Omega(alpha^2); queuing doesn't."""
    res = ExperimentResult(
        exp_id="E4",
        title="Diameter lower bound: list Omega(n^2), mesh Omega(n sqrt n)",
        paper_ref="Theorem 3.6",
    )
    from repro.bounds.counting_lb import verify_per_op_bounds

    ok_lb = True
    per_op_ok = True
    list_counting: list[tuple[int, int]] = []
    list_arrow: list[tuple[int, int]] = []
    for n in list_sizes:
        g = path_graph(n)
        alpha = n - 1
        lb = theorem36_lower_bound(alpha)
        counting = run_central_counting(g, list(range(n)), root=0)
        per_op_ok &= verify_per_op_bounds(
            counting.counts, counting.delays, n, alpha, True
        )
        arrow = run_arrow(path_spanning_tree(g), list(range(n)))
        res.rows.append(
            {
                "graph": g.name,
                "n": n,
                "diam": alpha,
                "LB(Thm3.6)": lb,
                "central_counting": counting.total_delay,
                "arrow(queuing)": arrow.total_delay,
            }
        )
        ok_lb &= counting.total_delay >= lb
        list_counting.append((n, counting.total_delay))
        list_arrow.append((n, arrow.total_delay))
    for k in mesh_sides:
        g = mesh_graph([k, k])
        alpha = diameter(g)
        lb = theorem36_lower_bound(alpha)
        counting = run_central_counting(g, list(range(g.n)), root=0)
        arrow = run_arrow(path_spanning_tree(g), list(range(g.n)))
        res.rows.append(
            {
                "graph": g.name,
                "n": g.n,
                "diam": alpha,
                "LB(Thm3.6)": lb,
                "central_counting": counting.total_delay,
                "arrow(queuing)": arrow.total_delay,
            }
        )
        ok_lb &= counting.total_delay >= lb
    res.check("measured counting >= Thm 3.6 bound on every instance", ok_lb)
    res.check(
        "every individual operation respects the Thm 3.6 latency bound",
        per_op_ok,
    )
    slope_c = growth_exponent(*zip(*list_counting))
    slope_q = growth_exponent(*zip(*list_arrow))
    res.check(
        "counting on the list grows ~ n^2",
        1.7 <= slope_c <= 2.3,
        f"fitted exponent {slope_c:.2f}",
    )
    res.check(
        "arrow on the list grows ~ n",
        0.7 <= slope_q <= 1.3,
        f"fitted exponent {slope_q:.2f}",
    )
    return res


# ---------------------------------------------------------------------------
# E5 — Theorem 4.1: arrow <= 2 x nearest-neighbour TSP
# ---------------------------------------------------------------------------


def run_e5_thm41_arrow_vs_tsp(
    sizes: Sequence[int] = (8, 16, 32, 64),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> ExperimentResult:
    """The factor-2 relation between arrow and the NN tour, across trees."""
    res = ExperimentResult(
        exp_id="E5",
        title="Arrow total delay vs 2 x NN-TSP cost",
        paper_ref="Theorem 4.1 (Herlihy et al. 2001)",
    )
    worst = 0.0
    all_ok = True
    for n in sizes:
        for seed in seeds:
            rng = np.random.default_rng(seed * 1000 + n)
            tree = _random_rooted_tree(n, seed=seed + n, max_children=3)
            from repro.topology.base import Graph

            g = Graph.from_edges(n, tree.edges(), name=f"rtree({n},{seed})")
            st = SpanningTree(g, tree, label="random")
            k = int(rng.integers(1, n + 1))
            requests = sorted(rng.choice(n, size=k, replace=False).tolist())
            cmpr = arrow_vs_tsp(st, requests)
            worst = max(worst, cmpr.ratio)
            all_ok &= cmpr.within_theorem41
            if seed == 0:
                res.rows.append(
                    {
                        "tree": g.name,
                        "|R|": k,
                        "arrow_total": cmpr.arrow_total,
                        "nn_tsp": cmpr.tsp_cost,
                        "ratio": cmpr.ratio,
                    }
                )
    # Structured trees as well: list and perfect binary.
    for n in sizes:
        for st in (
            path_spanning_tree(path_graph(n)),
            embedded_binary_tree(complete_graph(n)),
        ):
            cmpr = arrow_vs_tsp(st, list(range(n)))
            worst = max(worst, cmpr.ratio)
            all_ok &= cmpr.within_theorem41
            res.rows.append(
                {
                    "tree": st.label + f"(n={n})",
                    "|R|": n,
                    "arrow_total": cmpr.arrow_total,
                    "nn_tsp": cmpr.tsp_cost,
                    "ratio": cmpr.ratio,
                }
            )
    res.check(
        "arrow <= 2 x NN-TSP on every instance",
        all_ok,
        f"worst ratio {worst:.3f}",
    )
    return res


# ---------------------------------------------------------------------------
# E6 — Lemmas 4.3/4.4: the NN tour on a list costs <= 3n
# ---------------------------------------------------------------------------


def run_e6_lemma43_list_tsp(
    sizes: Sequence[int] = (16, 64, 256, 1024),
    seeds: Sequence[int] = (0, 1, 2),
) -> ExperimentResult:
    """List NN tours: cost <= 3n and the Fibonacci-like run inequality."""
    res = ExperimentResult(
        exp_id="E6",
        title="Nearest-neighbour TSP on the list",
        paper_ref="Lemmas 4.3 and 4.4",
    )
    ok_cost = True
    ok_runs = True
    for n in sizes:
        tree = RootedTree.from_path(list(range(n)))
        scenarios = {
            "all": list(range(n)),
            "alternating": list(range(0, n, 2)),
            "ends+mid": sorted({0, n - 1, n // 2}),
        }
        rng = np.random.default_rng(7)
        for seed in seeds:
            k = int(rng.integers(1, n + 1))
            scenarios[f"random{seed}"] = sorted(
                rng.choice(n, size=k, replace=False).tolist()
            )
        for name, req in scenarios.items():
            # Worst case over starting points is part of Lemma 4.3's claim
            # ("starts from any node"); sample a few starts.
            for start in {0, n // 2, n - 1}:
                tour = nearest_neighbor_tour(tree, req, start=start)
                legs = lemma44_legs(tour.order, start=start)
                ok_cost &= tour.cost <= list_tsp_bound(n)
                ok_runs &= satisfies_lemma44(legs)
                if start == 0:
                    res.rows.append(
                        {
                            "n": n,
                            "scenario": name,
                            "|R|": len(req),
                            "nn_cost": tour.cost,
                            "bound_3n": list_tsp_bound(n),
                            "runs": len(legs),
                        }
                    )
    res.check("NN tour cost <= 3n for every instance and start", ok_cost)
    res.check("run legs satisfy x_i >= x_{i-1} + x_{i-2}", ok_runs)
    return res


# ---------------------------------------------------------------------------
# E7 — Theorem 4.7: NN tour on perfect binary / m-ary trees is O(n)
# ---------------------------------------------------------------------------


def run_e7_thm47_tree_tsp(
    depths: Sequence[int] = (3, 4, 5, 6, 7, 8),
    mary_depths: Sequence[int] = (2, 3, 4),
) -> ExperimentResult:
    """Perfect-tree NN tours stay within the paper's explicit O(n) envelope."""
    res = ExperimentResult(
        exp_id="E7",
        title="Nearest-neighbour TSP on perfect binary and m-ary trees",
        paper_ref="Theorem 4.7 / Theorem 4.12 (+Lemmas 4.8-4.10)",
    )
    ok = True
    sizes, costs = [], []
    for d in depths:
        g = perfect_mary_tree(2, d)
        tree = RootedTree.from_edges(g.n, g.edges(), root=0)
        for name, req in {
            "all": list(range(g.n)),
            "leaves": [v for v in range(g.n) if 2 * v + 1 >= g.n],
        }.items():
            tour = nearest_neighbor_tour(tree, req)
            bound = binary_tree_tsp_bound(g.n)
            ok &= tour.cost <= bound
            res.rows.append(
                {
                    "tree": f"binary(d={d})",
                    "n": g.n,
                    "scenario": name,
                    "nn_cost": tour.cost,
                    "bound": bound,
                }
            )
            if name == "all":
                sizes.append(g.n)
                costs.append(tour.cost)
    for d in mary_depths:
        g = perfect_mary_tree(3, d)
        tree = RootedTree.from_edges(g.n, g.edges(), root=0)
        tour = nearest_neighbor_tour(tree, list(range(g.n)))
        bound = mary_tree_tsp_bound(g.n, 3)
        ok &= tour.cost <= bound
        res.rows.append(
            {
                "tree": f"3-ary(d={d})",
                "n": g.n,
                "scenario": "all",
                "nn_cost": tour.cost,
                "bound": bound,
            }
        )
    res.check("NN cost <= explicit envelope on every instance", ok)
    slope = growth_exponent(sizes, costs)
    res.check(
        "binary-tree NN cost grows ~ n (not n log n)",
        0.8 <= slope <= 1.2,
        f"fitted exponent {slope:.2f}",
    )
    return res


# ---------------------------------------------------------------------------
# E8 — Corollary 4.2: constant-degree trees give O(n log n)
# ---------------------------------------------------------------------------


def run_e8_cor42_rosenkrantz(
    sizes: Sequence[int] = (15, 63, 255),
    seeds: Sequence[int] = (0, 1, 2, 3),
) -> ExperimentResult:
    """NN tours on arbitrary constant-degree trees stay under O(n log n)."""
    res = ExperimentResult(
        exp_id="E8",
        title="Rosenkrantz envelope on constant-degree trees",
        paper_ref="Corollary 4.2",
    )
    ok = True
    for n in sizes:
        for seed in seeds:
            tree = _random_rooted_tree(n, seed=seed, max_children=2)
            rng = np.random.default_rng(seed)
            k = int(rng.integers(1, n + 1))
            req = sorted(rng.choice(n, size=k, replace=False).tolist())
            tour = nearest_neighbor_tour(tree, req)
            bound = rosenkrantz_nn_bound(n, k)
            ok &= tour.cost <= bound
            if seed == 0:
                res.rows.append(
                    {
                        "n": n,
                        "|R|": k,
                        "nn_cost": tour.cost,
                        "rosenkrantz_bound": bound,
                    }
                )
    res.check("NN cost <= (ceil(log2 k)+1)(n-1) on every instance", ok)
    return res


# ---------------------------------------------------------------------------
# E9 — Theorem 4.5 / Lemma 4.6: Hamilton-path graphs
# ---------------------------------------------------------------------------


def run_e9_thm45_hamilton(
    complete_sizes: Sequence[int] = (8, 16, 32, 64),
    mesh_sides: Sequence[int] = (3, 4, 5, 6),
    hypercube_dims: Sequence[int] = (3, 4, 5, 6),
) -> ExperimentResult:
    """CQ = O(n) via the Hamilton-path spanning tree on K_n, meshes, hypercubes."""
    res = ExperimentResult(
        exp_id="E9",
        title="Arrow on Hamilton-path spanning trees: CQ = Theta(n) << CC",
        paper_ref="Theorem 4.5, Lemma 4.6",
    )
    sizes, arrows = [], []
    ok_linear_bound = True
    gap_grows = True
    prev_gap = 0.0
    graphs = (
        [complete_graph(n) for n in complete_sizes]
        + [mesh_graph([k, k]) for k in mesh_sides]
        + [hypercube_graph(d) for d in hypercube_dims]
    )
    for g in graphs:
        st = path_spanning_tree(g)
        requests = list(range(g.n))
        arrow = run_arrow(st, requests)
        lb = theorem35_lower_bound(g.n)
        counting = run_combining_counting(embedded_binary_tree(complete_graph(g.n)), requests)
        gap = counting.total_delay / max(1, arrow.total_delay)
        res.rows.append(
            {
                "graph": g.name,
                "n": g.n,
                "arrow_total": arrow.total_delay,
                "6n(Lem4.3+Thm4.1)": list_queuing_bound(g.n),
                "counting_LB(Thm3.5)": lb,
                "best_counting(combining)": counting.total_delay,
                "counting/arrow": round(gap, 2),
            }
        )
        ok_linear_bound &= arrow.total_delay <= list_queuing_bound(g.n)
        if g.name.startswith("complete"):
            sizes.append(g.n)
            arrows.append(arrow.total_delay)
    slope = growth_exponent(sizes, arrows)
    res.check(
        "arrow on the Hamilton path <= 6n on every graph",
        ok_linear_bound,
    )
    res.check(
        "arrow on K_n grows ~ n",
        0.7 <= slope <= 1.3,
        f"fitted exponent {slope:.2f}",
    )
    # The gap counting/arrow should grow with n on the complete graphs.
    gaps = [
        row["counting/arrow"]
        for row in res.rows
        if str(row["graph"]).startswith("complete")
    ]
    res.check(
        "counting/arrow gap grows with n on K_n",
        all(b > a for a, b in zip(gaps, gaps[1:])),
        f"gaps={gaps}",
    )
    return res


# ---------------------------------------------------------------------------
# E10 — Theorem 4.12: perfect m-ary spanning trees
# ---------------------------------------------------------------------------


def run_e10_thm412_mary(
    binary_sizes: Sequence[int] = (15, 31, 63, 127),
    ternary_depths: Sequence[int] = (2, 3, 4),
) -> ExperimentResult:
    """Arrow on perfect m-ary spanning trees is Theta(n)."""
    res = ExperimentResult(
        exp_id="E10",
        title="Arrow on perfect m-ary spanning trees",
        paper_ref="Theorem 4.12",
    )
    ok = True
    sizes, totals = [], []
    for n in binary_sizes:
        st = embedded_binary_tree(complete_graph(n))
        arrow = run_arrow(st, list(range(n)))
        bound = binary_tree_queuing_bound(n)
        ok &= arrow.total_delay <= bound
        sizes.append(n)
        totals.append(arrow.total_delay)
        res.rows.append(
            {
                "tree": f"binary(n={n})",
                "arrow_total": arrow.total_delay,
                "bound(2x Thm4.7)": bound,
                "counting_LB": theorem35_lower_bound(n),
            }
        )
    for d in ternary_depths:
        g = perfect_mary_tree(3, d)
        st = embedded_mary_tree(complete_graph(g.n), 3)
        arrow = run_arrow(st, list(range(g.n)))
        bound = mary_tree_queuing_bound(g.n, 3)
        ok &= arrow.total_delay <= bound
        res.rows.append(
            {
                "tree": f"3-ary(n={g.n})",
                "arrow_total": arrow.total_delay,
                "bound(2x Thm4.7)": bound,
                "counting_LB": theorem35_lower_bound(g.n),
            }
        )
    slope = growth_exponent(sizes, totals)
    res.check("arrow <= the m-ary envelope on every instance", ok)
    res.check(
        "arrow on the binary tree grows ~ n",
        0.7 <= slope <= 1.3,
        f"fitted exponent {slope:.2f}",
    )
    return res


# ---------------------------------------------------------------------------
# E11 — Theorem 4.13: high-diameter graphs
# ---------------------------------------------------------------------------


def run_e11_thm413_high_diameter(
    spines: Sequence[int] = (8, 16, 32, 64),
) -> ExperimentResult:
    """High-diameter graphs: CC = Omega(alpha^2) vs CQ = O(n log n)."""
    res = ExperimentResult(
        exp_id="E11",
        title="High-diameter graphs: caterpillar and lollipop",
        paper_ref="Theorem 4.13",
    )
    ok_lb = True
    ok_ub = True
    gaps = []
    for spine in spines:
        for g in (caterpillar_graph(spine, 1), lollipop_graph(max(3, spine // 4), spine)):
            alpha = diameter(g)
            lb = theorem36_lower_bound(alpha)
            counting = run_central_counting(g, list(range(g.n)), root=0)
            st = bfs_spanning_tree(g)
            arrow = run_arrow(st, list(range(g.n)))
            qub = constant_degree_queuing_bound(g.n)
            ok_lb &= counting.total_delay >= lb
            # BFS trees of these families have bounded degree; the arrow
            # run should sit under the Corollary 4.2 envelope.
            ok_ub &= arrow.total_delay <= qub
            gaps.append(counting.total_delay / max(1, arrow.total_delay))
            res.rows.append(
                {
                    "graph": g.name,
                    "n": g.n,
                    "diam": alpha,
                    "LB(Thm3.6)": lb,
                    "central_counting": counting.total_delay,
                    "arrow(bfs tree)": arrow.total_delay,
                    "O(nlogn) envelope": int(qub),
                }
            )
    res.check("counting >= diameter bound on every instance", ok_lb)
    res.check("arrow <= Corollary 4.2 envelope on every instance", ok_ub)
    res.check(
        "counting/arrow gap grows along the family",
        gaps[-2] > gaps[0] and gaps[-1] > gaps[1],
        f"gaps={[round(g, 1) for g in gaps]}",
    )
    return res


# ---------------------------------------------------------------------------
# E12 — Section 5: the star counterexample
# ---------------------------------------------------------------------------


def run_e12_star_counterexample(
    sizes: Sequence[int] = (8, 16, 32, 64),
) -> ExperimentResult:
    """On the star, counting is NOT harder: both cost Theta(n^2)."""
    res = ExperimentResult(
        exp_id="E12",
        title="Star graph: counting and queuing both Theta(n^2)",
        paper_ref="Section 5 (Conclusions)",
    )
    ratios = []
    sizes_l, cc, cq = [], [], []
    for n in sizes:
        g = star_graph(n)
        requests = list(range(n))
        counting = run_central_counting(g, requests, root=0)
        queuing = run_central_queuing(g, requests, root=0)
        # Arrow on the star's only spanning tree (the star itself), strict
        # capacity: the hub serialises everything.
        arrow = run_arrow(star_spanning_tree(g), requests, capacity=1)
        ratio = counting.total_delay / max(1, arrow.total_delay)
        ratios.append(ratio)
        sizes_l.append(n)
        cc.append(counting.total_delay)
        cq.append(arrow.total_delay)
        res.rows.append(
            {
                "n": n,
                "central_counting": counting.total_delay,
                "central_queuing": queuing.total_delay,
                "arrow(star tree)": arrow.total_delay,
                "CC/CQ": round(ratio, 2),
            }
        )
    slope_c = growth_exponent(sizes_l, cc)
    slope_q = growth_exponent(sizes_l, cq)
    res.check(
        "counting on the star grows ~ n^2",
        1.7 <= slope_c <= 2.3,
        f"fitted exponent {slope_c:.2f}",
    )
    res.check(
        "queuing on the star also grows ~ n^2",
        1.7 <= slope_q <= 2.3,
        f"fitted exponent {slope_q:.2f}",
    )
    res.check(
        "CC/CQ stays bounded (no separation on the star)",
        max(ratios) <= 4.0 and min(ratios) >= 0.25,
        f"ratios={[round(r, 2) for r in ratios]}",
    )
    res.notes = (
        "Contention at the hub dominates both problems, so the paper's "
        "separation disappears — exactly as Section 5 predicts."
    )
    return res


# ---------------------------------------------------------------------------
# E13 — Section 1: ordered multicast both ways
# ---------------------------------------------------------------------------


def run_e13_multicast(
    mesh_sides: Sequence[int] = (3, 4, 5),
    complete_sizes: Sequence[int] = (8, 16),
) -> ExperimentResult:
    """The motivating application: queuing-based multicast wins."""
    res = ExperimentResult(
        exp_id="E13",
        title="Totally ordered multicast: counting-based vs queuing-based",
        paper_ref="Section 1 (Herlihy et al. 2001)",
    )
    queuing_wins = True
    for g, st in [(mesh_graph([k, k]), None) for k in mesh_sides] + [
        (complete_graph(n), None) for n in complete_sizes
    ]:
        st = path_spanning_tree(g)
        senders = list(range(g.n))
        mc = run_counting_multicast(g, st, senders)
        mq = run_queuing_multicast(g, st, senders)
        queuing_wins &= (
            mq.total_coordination_delay <= mc.total_coordination_delay
        )
        res.rows.append(
            {
                "graph": g.name,
                "senders": len(senders),
                "coord_counting": mc.total_coordination_delay,
                "coord_queuing": mq.total_coordination_delay,
                "done_counting": mc.completion_time,
                "done_queuing": mq.completion_time,
            }
        )
    res.check(
        "queuing-based coordination never slower than counting-based",
        queuing_wins,
    )
    res.notes = (
        "Both flavours deliver identical sequences at every receiver "
        "(verified inside the runners)."
    )
    return res


# ---------------------------------------------------------------------------
# E14 — ablation: the arrow protocol's spanning-tree choice
# ---------------------------------------------------------------------------


def run_e14_ablation_tree_choice(n: int = 32, mesh_side: int = 6) -> ExperimentResult:
    """How much the spanning tree matters for the arrow protocol."""
    res = ExperimentResult(
        exp_id="E14",
        title="Ablation: spanning-tree choice for the arrow protocol",
        paper_ref="Design choice behind Theorems 4.5/4.12 vs Corollary 4.2",
    )
    g = complete_graph(n)
    requests = list(range(n))
    candidates = {
        "hamilton_path": path_spanning_tree(g),
        "binary(embedded)": embedded_binary_tree(g),
        "star(hub=0)": star_spanning_tree(g),
    }
    totals: dict[str, int] = {}
    for label, st in candidates.items():
        # Strict capacity for the star (its degree is not constant).
        cap = 1 if label.startswith("star") else None
        arrow = run_arrow(st, requests, capacity=cap)
        totals[label] = arrow.total_delay
        res.rows.append(
            {
                "graph": g.name,
                "tree": label,
                "tree_degree": st.max_degree(),
                "arrow_total": arrow.total_delay,
            }
        )
    # Contrast: a naive queuing algorithm (token sweep) on the best tree —
    # the separation is about the best algorithm, not any algorithm.
    from repro.counting import run_sweep_queuing

    sweep_q = run_sweep_queuing(g, requests)
    res.rows.append(
        {
            "graph": g.name,
            "tree": "hamilton_path (naive sweep queuing)",
            "tree_degree": 2,
            "arrow_total": sweep_q.total_delay,
        }
    )
    gm = mesh_graph([mesh_side, mesh_side])
    for label, st in {
        "hamilton_path": path_spanning_tree(gm),
        "bfs": bfs_spanning_tree(gm),
        "dfs": dfs_spanning_tree(gm),
    }.items():
        arrow = run_arrow(st, list(range(gm.n)))
        res.rows.append(
            {
                "graph": gm.name,
                "tree": label,
                "tree_degree": st.max_degree(),
                "arrow_total": arrow.total_delay,
            }
        )
    res.check(
        "constant-degree trees beat the star tree on K_n",
        totals["hamilton_path"] < totals["star(hub=0)"]
        and totals["binary(embedded)"] < totals["star(hub=0)"],
        f"totals={totals}",
    )
    res.check(
        "arrow beats naive sweep queuing on the same tree",
        totals["hamilton_path"] < sweep_q.total_delay,
        f"arrow={totals['hamilton_path']}, sweep={sweep_q.total_delay}",
    )
    return res


# ---------------------------------------------------------------------------
# E15 — ablation: the counting-algorithm portfolio head-to-head
# ---------------------------------------------------------------------------


def run_e15_ablation_counters(n: int = 32, mesh_side: int = 6) -> ExperimentResult:
    """All counting algorithms on three topologies at one size."""
    res = ExperimentResult(
        exp_id="E15",
        title="Ablation: counting algorithms head-to-head",
        paper_ref="Section 3's 'any counting algorithm' portfolio",
    )
    from repro.counting import run_periodic_counting, run_sweep_counting

    ok = True
    for g in (complete_graph(n), mesh_graph([mesh_side, mesh_side]), path_graph(n)):
        requests = list(range(g.n))
        lb = max(
            theorem35_lower_bound(g.n), theorem36_lower_bound(diameter(g))
        )
        runs = {
            "central": run_central_counting(g, requests),
            "combining(bfs)": run_combining_counting(bfs_spanning_tree(g), requests),
            "flood": run_flood_counting(g, requests),
            "cnet": run_counting_network(g, requests),
            "periodic": run_periodic_counting(g, requests),
            "sweep": run_sweep_counting(g, requests),
        }
        row = {"graph": g.name, "LB": lb}
        for name, r in runs.items():
            row[name] = r.total_delay
            ok &= r.total_delay >= lb
        res.rows.append(row)
    res.check("every algorithm >= the counting lower bound", ok)
    return res


# ---------------------------------------------------------------------------
# E16 — extension: long-lived arrow (Kuhn-Wattenhofer setting)
# ---------------------------------------------------------------------------


def run_e16_longlived(
    n: int = 64,
    horizons: Sequence[int] = (1, 16, 64, 256),
    seed: int = 0,
) -> ExperimentResult:
    """Staggered arrivals: response times shrink as load spreads out."""
    res = ExperimentResult(
        exp_id="E16",
        title="Long-lived arrow under staggered arrivals",
        paper_ref="extension — Kuhn & Wattenhofer 2004 (reference [8])",
    )
    st = path_spanning_tree(path_graph(n))
    one_shot = run_arrow(st, list(range(n)))
    ok_per_op = True
    ok_complete = True
    for horizon in horizons:
        times = poisson_issue_times(n, rate=1.0, horizon=horizon, seed=seed)
        ll = run_arrow_longlived(st, times)
        responses = ll.response_times()
        ok_complete &= len(responses) == len(times)
        # A queue() message follows a simple path on the tree, so each
        # response is at most the path length plus contention; 2n is a
        # generous per-operation envelope on the list.
        ok_per_op &= max(responses.values()) <= 2 * n
        res.rows.append(
            {
                "n": n,
                "horizon": horizon,
                "requesters": len(times),
                "total_response": ll.total_response_time,
                "max_response": max(responses.values()),
                "one_shot_total": one_shot.total_delay,
            }
        )
    res.check("every scheduled operation completed", ok_complete)
    res.check("per-operation response <= 2n on every schedule", ok_per_op)
    res.notes = (
        "Total response grows as arrivals spread out: isolated requests "
        "chase the tail across the whole tree instead of terminating at a "
        "concurrent neighbor — the dynamic-adversary effect Kuhn & "
        "Wattenhofer analyse."
    )
    return res


# ---------------------------------------------------------------------------
# E17 — extension: asynchronous links (Section 2.1's carry-over claim)
# ---------------------------------------------------------------------------


def run_e17_async_robustness(
    sizes: Sequence[int] = (8, 16, 32),
    delay_hi: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Random link delays: protocols stay correct and the separation stands."""
    from repro.sim import UniformDelay

    res = ExperimentResult(
        exp_id="E17",
        title="Asynchronous links: correctness and separation under delay",
        paper_ref="extension — Section 2.1's asynchronous-model remark",
    )
    model = UniformDelay(1, delay_hi, seed=seed)
    separation_holds = True
    scaling_sane = True
    for n in sizes:
        g = complete_graph(n)
        requests = list(range(n))
        arrow_sync = run_arrow(path_spanning_tree(g), requests)
        arrow_async = run_arrow(path_spanning_tree(g), requests, delay_model=model)
        count_sync = run_combining_counting(embedded_binary_tree(g), requests)
        count_async = run_combining_counting(
            embedded_binary_tree(g), requests, delay_model=model
        )
        res.rows.append(
            {
                "n": n,
                "arrow_sync": arrow_sync.total_delay,
                "arrow_async": arrow_async.total_delay,
                "counting_sync": count_sync.total_delay,
                "counting_async": count_async.total_delay,
            }
        )
        separation_holds &= count_async.total_delay > arrow_async.total_delay
        # totals should stretch by at most the max delay factor (plus
        # small interleaving effects).
        scaling_sane &= arrow_async.total_delay <= (delay_hi + 1) * max(
            1, arrow_sync.total_delay
        )
        scaling_sane &= count_async.total_delay <= (delay_hi + 1) * max(
            1, count_sync.total_delay
        )
    res.check(
        "counting still costlier than arrow under async delays",
        separation_holds,
    )
    res.check(
        f"async totals within {delay_hi + 1}x of synchronous",
        scaling_sane,
    )
    res.notes = (
        "All runs re-validated their outputs (exact counts / single "
        "predecessor chain) under the delay adversary."
    )
    return res


# ---------------------------------------------------------------------------
# E18 — counting-network duel: bitonic vs periodic
# ---------------------------------------------------------------------------


def run_e18_network_duel(
    sizes: Sequence[int] = (8, 16, 32),
) -> ExperimentResult:
    """Bitonic (depth log w (log w+1)/2) vs periodic (depth log^2 w)."""
    import math

    from repro.counting import (
        bitonic_network,
        network_depth,
        periodic_network,
        run_counting_network,
        run_periodic_counting,
    )

    res = ExperimentResult(
        exp_id="E18",
        title="Counting networks: bitonic vs periodic (AHS constructions)",
        paper_ref="reference [1] — Aspnes, Herlihy & Shavit 1994",
    )
    ok_lb = True
    bitonic_shallower = True
    for n in sizes:
        g = complete_graph(n)
        requests = list(range(n))
        bit = run_counting_network(g, requests)
        per = run_periodic_counting(g, requests)
        w = 1 << (n.bit_length() - 1)
        d_bit = network_depth(bitonic_network(w))
        d_per = network_depth(periodic_network(w))
        lb = theorem35_lower_bound(n)
        res.rows.append(
            {
                "n": n,
                "width": w,
                "bitonic_depth": d_bit,
                "periodic_depth": d_per,
                "bitonic_total": bit.total_delay,
                "periodic_total": per.total_delay,
                "LB(Thm3.5)": lb,
            }
        )
        ok_lb &= bit.total_delay >= lb and per.total_delay >= lb
        if w > 2:
            bitonic_shallower &= d_bit < d_per and bit.total_delay < per.total_delay
    res.check("both networks dominate the Thm 3.5 bound", ok_lb)
    res.check(
        "bitonic is shallower and faster than periodic (w > 2)",
        bitonic_shallower,
    )
    return res


# ---------------------------------------------------------------------------
# E19 — the open question: distributed addition vs counting vs queuing
# ---------------------------------------------------------------------------


def run_e19_addition(
    sizes: Sequence[int] = (15, 31, 63),
    seed: int = 0,
) -> ExperimentResult:
    """Fetch-and-add costs what counting costs; queuing stays cheaper."""
    from repro.adding import run_combining_addition

    res = ExperimentResult(
        exp_id="E19",
        title="Distributed addition (fetch-and-add) vs counting vs queuing",
        paper_ref="extension — Section 5 open question / reference [5]",
    )
    rng = np.random.default_rng(seed)
    same_profile = True
    oblivious = True
    arrow_cheaper = True
    for n in sizes:
        g = complete_graph(n)
        st = embedded_binary_tree(g)
        requests = list(range(n))
        counting = run_combining_counting(st, requests)
        unit = run_combining_addition(st, {v: 1 for v in requests})
        randinc = run_combining_addition(
            st, {v: int(rng.integers(-9, 10)) for v in requests}
        )
        arrow = run_arrow(path_spanning_tree(g), requests)
        res.rows.append(
            {
                "n": n,
                "counting": counting.total_delay,
                "add(unit)": unit.total_delay,
                "add(random)": randinc.total_delay,
                "arrow(queuing)": arrow.total_delay,
            }
        )
        same_profile &= unit.total_delay == counting.total_delay
        oblivious &= randinc.delays == unit.delays
        arrow_cheaper &= arrow.total_delay < unit.total_delay
    res.check(
        "unit-increment addition costs exactly what counting costs",
        same_profile,
    )
    res.check("addition delays are increment-oblivious", oblivious)
    res.check("queuing (arrow) stays cheaper than addition", arrow_cheaper)
    res.notes = (
        "With unit increments fetch-and-add solves counting, so the "
        "Section 3 lower bounds transfer to addition; the arrow gap is "
        "unchanged — evidence for the paper's conjecture that queuing is "
        "the easiest of the total-order problems."
    )
    return res


# ---------------------------------------------------------------------------
# E20 — ablation: directory (graph shortcuts) vs token mutex (tree walks)
# ---------------------------------------------------------------------------


def run_e20_directory(
    sizes: Sequence[int] = (16, 32, 64),
    stride: int = 4,
) -> ExperimentResult:
    """Object moves on G beat token walks on T when G has shortcuts."""
    from repro.directory import run_object_directory

    res = ExperimentResult(
        exp_id="E20",
        title="Arrow directory vs token mutex: shortcutting the handoff",
        paper_ref="extension — Demmer & Herlihy 1998 (reference [4])",
    )
    shortcut_wins = True
    tree_equal = True
    for n in sizes:
        g = complete_graph(n)
        st = path_spanning_tree(g)
        req = list(range(0, n, stride))
        d = run_object_directory(g, st, req, use_rounds=1)
        m = run_token_mutex(st, req, cs_rounds=1)
        shortcut_wins &= d.total_waiting < m.total_waiting
        res.rows.append(
            {
                "graph": g.name,
                "|R|": len(req),
                "directory": d.total_waiting,
                "token_mutex": m.total_waiting,
            }
        )
        gp = path_graph(n)
        stp = path_spanning_tree(gp)
        dp = run_object_directory(gp, stp, req, use_rounds=1)
        mp = run_token_mutex(stp, req, cs_rounds=1)
        tree_equal &= dp.total_waiting == mp.total_waiting
        res.rows.append(
            {
                "graph": gp.name,
                "|R|": len(req),
                "directory": dp.total_waiting,
                "token_mutex": mp.total_waiting,
            }
        )
    res.check("on K_n the directory's direct moves win", shortcut_wins)
    res.check("on a tree graph the two coincide (no shortcuts)", tree_equal)
    return res


# ---------------------------------------------------------------------------
# E21 — extension: fault tolerance under message loss
# ---------------------------------------------------------------------------


def run_e21_fault_tolerance(
    sizes: Sequence[int] = (8, 16, 32),
    drop_rates: Sequence[float] = (0.0, 0.1, 0.2),
    seed: int = 7,
) -> ExperimentResult:
    """Reliable retries preserve both answers under loss at bounded cost.

    The paper's model assumes perfectly reliable links.  This extension
    re-runs the two headline protocols — arrow queuing on the list and
    central counting on the star — under seeded message loss with the
    ack/retry wrapper (see ``docs/FAULTS.md``) and checks that (a) the
    verified outputs survive any eventually-delivering loss rate, (b) a
    zero-fault plan reproduces the fault-free execution exactly, and
    (c) the round-count overhead stays inside the retry envelope, so the
    cost of tolerating loss is a constant factor, not an asymptotic one.
    """
    from repro.faults import FaultPlan, run_arrow_ft, run_central_counting_ft
    from repro.sim import EventTrace

    res = ExperimentResult(
        exp_id="E21",
        title="Fault tolerance: queuing and counting under message loss",
        paper_ref="extension — Section 2.1 model with lossy links",
    )
    all_complete = True
    noop_identical = True
    overhead_bounded = True
    losses_injected = True
    for n in sizes:
        star = star_graph(n)
        sp = path_spanning_tree(path_graph(n))
        base_count = run_central_counting(star, range(n))
        base_arrow = run_arrow(sp, range(n))
        for rate in drop_rates:
            plan = FaultPlan(seed=seed, drop_rate=rate)
            if plan.is_empty():
                t_plain, t_empty = EventTrace(), EventTrace()
                run_central_counting(star, range(n), trace=t_plain)
                run_central_counting(star, range(n), trace=t_empty, faults=plan)
                noop_identical &= t_plain.events == t_empty.events
                ft_count, ft_arrow = base_count, base_arrow
            else:
                ft_count = run_central_counting_ft(star, range(n), plan)
                ft_arrow = run_arrow_ft(sp, range(n), plan)
                losses_injected &= (
                    ft_count.stats.messages_dropped > 0
                    or ft_arrow.stats.messages_dropped > 0
                )
            # run_*_ft verify their outputs before returning; reaching
            # here at all means counting and queuing both stayed correct.
            all_complete &= sorted(ft_count.counts.values()) == list(
                range(1, n + 1)
            )
            all_complete &= sorted(ft_arrow.order()) == list(range(n))
            overhead_bounded &= (
                ft_count.stats.rounds <= 90 * base_count.stats.rounds + 200
            )
            overhead_bounded &= (
                ft_arrow.stats.rounds <= 90 * base_arrow.stats.rounds + 200
            )
            res.rows.append(
                {
                    "n": n,
                    "drop": rate,
                    "count_rounds": ft_count.stats.rounds,
                    "arrow_rounds": ft_arrow.stats.rounds,
                    "dropped": ft_count.stats.messages_dropped
                    + ft_arrow.stats.messages_dropped,
                }
            )
    res.check(
        "outputs verify under every eventually-delivering loss rate",
        all_complete,
    )
    res.check("a zero-fault plan reproduces the fault-free trace", noop_identical)
    res.check("rounds stay inside the retry envelope (90x + 200)", overhead_bounded)
    res.check("nonzero rates actually injected losses", losses_injected)
    res.notes = (
        "Loss does not change who wins: both protocols pay the same "
        "constant-factor retry overhead, so the counting-vs-queuing "
        "separation persists on lossy links."
    )
    return res


# ---------------------------------------------------------------------------
# E22 — extension: the resilience layer is transparent and catches real hangs
# ---------------------------------------------------------------------------


def run_e22_resilience(
    sizes: Sequence[int] = (8, 16),
    chaos_seeds: int = 3,
) -> ExperimentResult:
    """Monitors are free, checkpoints replay exactly, chaos finds nothing.

    Four claims about the resilience layer (see ``docs/RESILIENCE.md``):
    (a) attaching invariant monitors and the watchdog to healthy runs
    leaves every event trace byte-identical — observation does not
    perturb the execution; (b) a mid-run checkpoint restores and resumes
    to the byte-identical remainder of the original trace, so any
    violation can be replayed from the last snapshot instead of from
    round 0; (c) a chaos sweep of eventually-delivering fault plans over
    the fault-tolerant protocols finds no failures — the retry layer
    really does mask every finite outage the sweep can draw; and (d) a
    permanent crash is *diagnosed* (the watchdog names the dead node)
    rather than burning the round budget to a bare limit error.
    """
    from repro.faults import FaultPlan, NodeCrash
    from repro.resilience import (
        ArrowInvariant,
        ChaosCell,
        CountingInvariant,
        MonitorSet,
        PeriodicCheckpointer,
        Watchdog,
        chaos_search,
    )
    from repro.sim import EventTrace
    from repro.sim.errors import StallDetected

    res = ExperimentResult(
        exp_id="E22",
        title="Resilience: transparent monitors, exact replay, clean chaos",
        paper_ref="extension — engineering the Section 2.1 model",
    )
    traces_identical = True
    replay_identical = True
    for n in sizes:
        ring = mesh_graph([2, n // 2]) if n % 2 == 0 else path_graph(n)
        sp = path_spanning_tree(path_graph(n))

        t_plain, t_mon = EventTrace(), EventTrace()
        run_flood_counting(ring, range(n), trace=t_plain)
        mon = MonitorSet(
            invariants=(CountingInvariant(expected=n),),
            watchdog=Watchdog(expected_completions=n),
        )
        run_flood_counting(ring, range(n), trace=t_mon, monitors=mon)
        traces_identical &= t_plain.events == t_mon.events

        ta_plain, ta_mon = EventTrace(), EventTrace()
        run_arrow(sp, range(n), trace=ta_plain)
        mon_a = MonitorSet(
            invariants=(ArrowInvariant(),),
            watchdog=Watchdog(expected_completions=n),
        )
        run_arrow(sp, range(n), trace=ta_mon, monitors=mon_a)
        traces_identical &= ta_plain.events == ta_mon.events

        every = max(2, len(t_plain.events) // 200)
        cpr = PeriodicCheckpointer(every=every, keep=4)
        t_cp = EventTrace()
        run_flood_counting(ring, range(n), trace=t_cp,
                           monitors=MonitorSet(checkpointer=cpr))
        restored = cpr.latest().restore()
        restored.resume()
        replay_identical &= restored.trace.events == t_plain.events
        res.rows.append(
            {
                "n": n,
                "flood_events": len(t_plain.events),
                "arrow_events": len(ta_plain.events),
                "checkpoints": len(cpr.checkpoints),
                "resumed_from": cpr.latest().round,
            }
        )

    cells = [
        ChaosCell("flood_ft", "ring", sizes[0]),
        ChaosCell("central_ft", "star", sizes[0]),
        ChaosCell("arrow_ft", "path", sizes[0]),
    ]
    report = chaos_search(cells, range(chaos_seeds), max_rounds=20_000)

    diagnosed = False
    plan = FaultPlan(seed=3, crashes=(NodeCrash(node=1, start=0, end=None),))
    try:
        run_central_counting(
            path_graph(sizes[0]), range(sizes[0]), faults=plan,
            monitors=MonitorSet(
                watchdog=Watchdog(stall_window=100,
                                  expected_completions=sizes[0])
            ),
        )
    except StallDetected as exc:
        diagnosed = 1 in exc.pending_nodes
    res.check("monitored healthy runs leave traces byte-identical",
              traces_identical)
    res.check("checkpoint restore + resume replays the exact remainder",
              replay_identical)
    res.check(
        f"chaos sweep ({report.runs} eventually-delivering plans) is clean",
        report.clean,
    )
    res.check("watchdog names the permanently crashed node", diagnosed)
    res.notes = (
        "The resilience layer observes without perturbing: the model "
        "executions it certifies are the same ones every other "
        "experiment measures."
    )
    return res


#: Registry used by the bench suite and the EXPERIMENTS.md generator.
ALL_EXPERIMENTS = {
    "E1": run_e1_fig1_semantics,
    "E2": run_e2_thm35_general_lower_bound,
    "E3": run_e3_recurrences,
    "E4": run_e4_thm36_diameter_lower_bound,
    "E5": run_e5_thm41_arrow_vs_tsp,
    "E6": run_e6_lemma43_list_tsp,
    "E7": run_e7_thm47_tree_tsp,
    "E8": run_e8_cor42_rosenkrantz,
    "E9": run_e9_thm45_hamilton,
    "E10": run_e10_thm412_mary,
    "E11": run_e11_thm413_high_diameter,
    "E12": run_e12_star_counterexample,
    "E13": run_e13_multicast,
    "E14": run_e14_ablation_tree_choice,
    "E15": run_e15_ablation_counters,
    "E16": run_e16_longlived,
    "E17": run_e17_async_robustness,
    "E18": run_e18_network_duel,
    "E19": run_e19_addition,
    "E20": run_e20_directory,
    "E21": run_e21_fault_tolerance,
    "E22": run_e22_resilience,
}


def bench_scale() -> dict[str, Callable[[], ExperimentResult]]:
    """Benchmark-scale parameterisations (suite defaults are test-scale).

    The single source of truth for what ``--scale bench`` means — the CLI
    and ``benchmarks/generate_experiments_md.py`` both use it.  Entries
    are zero-argument callables; experiments without an entry run at
    their defaults even at bench scale.
    """
    return {
        "E2": lambda: run_e2_thm35_general_lower_bound(sizes=(8, 16, 32, 64, 128)),
        "E4": lambda: run_e4_thm36_diameter_lower_bound(
            list_sizes=(16, 32, 64, 128, 256), mesh_sides=(3, 4, 6, 8)
        ),
        "E5": lambda: run_e5_thm41_arrow_vs_tsp(
            sizes=(8, 16, 32, 64, 96), seeds=(0, 1, 2, 3, 4, 5)
        ),
        "E6": lambda: run_e6_lemma43_list_tsp(sizes=(16, 64, 256, 1024, 4096)),
        "E7": lambda: run_e7_thm47_tree_tsp(
            depths=(3, 4, 5, 6, 7, 8, 9, 10), mary_depths=(2, 3, 4, 5)
        ),
        "E9": lambda: run_e9_thm45_hamilton(
            complete_sizes=(8, 16, 32, 64, 128),
            mesh_sides=(3, 4, 6, 8),
            hypercube_dims=(3, 4, 5, 6, 7),
        ),
        "E10": lambda: run_e10_thm412_mary(
            binary_sizes=(15, 31, 63, 127, 255), ternary_depths=(2, 3, 4)
        ),
        "E12": lambda: run_e12_star_counterexample(sizes=(8, 16, 32, 64, 128)),
        "E16": lambda: run_e16_longlived(n=128, horizons=(1, 16, 64, 256, 1024)),
        "E17": lambda: run_e17_async_robustness(sizes=(8, 16, 32, 64)),
        "E18": lambda: run_e18_network_duel(sizes=(8, 16, 32, 64)),
        "E19": lambda: run_e19_addition(sizes=(15, 31, 63, 127)),
        "E20": lambda: run_e20_directory(sizes=(16, 32, 64, 128)),
        "E21": lambda: run_e21_fault_tolerance(
            sizes=(8, 16, 32, 64), drop_rates=(0.0, 0.05, 0.1, 0.2)
        ),
        "E22": lambda: run_e22_resilience(sizes=(8, 16, 32), chaos_seeds=6),
    }
