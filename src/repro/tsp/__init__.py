"""Nearest-neighbour travelling-salesperson machinery on tree metrics.

Theorem 4.1 (Herlihy, Tirthapura, Wattenhofer) bounds the arrow
protocol's one-shot cost by twice the cost of a *nearest-neighbour TSP*
on the spanning tree: starting from the root, repeatedly travel to the
closest unvisited requester, distances measured along the tree.  All of
Section 4's upper bounds are statements about this tour:

* Lemma 4.3: on a list the tour costs at most ``3n``;
* Theorem 4.7: on a perfect binary (m-ary) tree it costs ``O(n)``;
* Corollary 4.2: on any tree it costs ``O(n log n)`` (Rosenkrantz).

This package computes the tour exactly (deterministic tie-breaking),
decomposes list tours into the "runs" of Lemma 4.4, evaluates every
closed-form bound, and provides exact/2-approximate optima for
cross-checks.
"""

from repro.tsp.nearest_neighbor import NNTour, nearest_neighbor_tour, tour_cost
from repro.tsp.runs import Run, run_decomposition, lemma44_legs
from repro.tsp.bounds import (
    list_tsp_bound,
    binary_tree_tsp_bound,
    mary_tree_tsp_bound,
    rosenkrantz_nn_bound,
    steiner_subtree_edges,
    tsp_path_lower_bound,
)
from repro.tsp.optimal import held_karp_optimal, doubled_tree_tour

__all__ = [
    "NNTour",
    "nearest_neighbor_tour",
    "tour_cost",
    "Run",
    "run_decomposition",
    "lemma44_legs",
    "list_tsp_bound",
    "binary_tree_tsp_bound",
    "mary_tree_tsp_bound",
    "rosenkrantz_nn_bound",
    "steiner_subtree_edges",
    "tsp_path_lower_bound",
    "held_karp_optimal",
    "doubled_tree_tour",
]
