"""Run decomposition of a tour on the list (Lemmas 4.3 and 4.4).

The proof of Lemma 4.3 writes the nearest-neighbour tour on a list as a
concatenation of *runs* — maximal subsequences that move monotonically
left or right — and shows that the run-to-run leg lengths satisfy the
Fibonacci-like growth ``x_i >= x_{i-1} + x_{i-2}``, which caps the total
cost at ``3n``.  This module materialises that decomposition so tests and
benchmarks can check the inequality on real tours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Run:
    """One maximal monotone segment of a tour on the list.

    Attributes:
        vertices: the visited vertices of the run, in visiting order.
        direction: +1 if the run moves right (increasing positions), -1 if
            left, 0 for a single-vertex run.
    """

    vertices: tuple[int, ...]

    @property
    def direction(self) -> int:
        """+1 right, -1 left, 0 for a singleton run."""
        if len(self.vertices) < 2:
            return 0
        return 1 if self.vertices[1] > self.vertices[0] else -1

    @property
    def first(self) -> int:
        """First vertex of the run (``u_j`` in the paper's proof)."""
        return self.vertices[0]

    @property
    def last(self) -> int:
        """Last vertex of the run (``v_j`` in the paper's proof)."""
        return self.vertices[-1]


def run_decomposition(order: Sequence[int]) -> list[Run]:
    """Split a list-tour visiting order into maximal monotone runs.

    The vertices are interpreted as positions on the list (vertex ``i``
    sits at position ``i``), matching the labelling of
    :func:`repro.topology.path_graph`.
    """
    if not order:
        return []
    runs: list[Run] = []
    cur: list[int] = [order[0]]
    direction = 0
    for v in order[1:]:
        step = 1 if v > cur[-1] else -1
        if direction == 0 or step == direction:
            cur.append(v)
            direction = step
        else:
            runs.append(Run(tuple(cur)))
            cur = [v]
            direction = 0
    runs.append(Run(tuple(cur)))
    return runs


def lemma44_legs(order: Sequence[int], start: int) -> list[int]:
    """The leg lengths ``x_1 .. x_m`` of the proof of Lemma 4.3.

    ``x_1 = d(start, v_1)`` and ``x_i = d(v_{i-1}, v_i)`` where ``v_i`` is
    the *last* vertex of run ``i``; distances on the list are absolute
    position differences.  Lemma 4.4 asserts ``x_i >= x_{i-1} + x_{i-2}``
    for ``i >= 3`` whenever the tour is a nearest-neighbour tour.
    """
    runs = run_decomposition(order)
    legs: list[int] = []
    prev_last = start
    for run in runs:
        legs.append(abs(run.last - prev_last))
        prev_last = run.last
    return legs


def satisfies_lemma44(legs: Sequence[int]) -> bool:
    """Whether ``x_i >= x_{i-1} + x_{i-2}`` holds for all ``i >= 3`` (1-based)."""
    return all(legs[i] >= legs[i - 1] + legs[i - 2] for i in range(2, len(legs)))
