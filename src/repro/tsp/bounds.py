"""Closed-form bounds on nearest-neighbour tour costs (Section 4).

Each function evaluates exactly the expression proved in the paper, so
benchmarks can assert ``measured <= bound`` for every instance:

* :func:`list_tsp_bound` — Lemma 4.3's ``3n``;
* :func:`binary_tree_tsp_bound` — the ``2d(d+1) + 8n`` envelope from the
  proof of Theorem 4.7;
* :func:`mary_tree_tsp_bound` — the m-ary generalisation (Theorem 4.12);
* :func:`rosenkrantz_nn_bound` — Corollary 4.2's ``O(n log n)`` envelope
  via the Rosenkrantz–Stearns–Lewis ``log k`` approximation ratio;
* :func:`tsp_path_lower_bound` — a per-instance lower bound on *any* tour
  visiting R (for sanity-checking that NN is not absurdly wasteful).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.tree import RootedTree


def list_tsp_bound(n: int) -> int:
    """Lemma 4.3: a nearest-neighbour tour on the list of ``n`` vertices costs <= 3n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 3 * n


def binary_tree_tsp_bound(n: int) -> int:
    """Theorem 4.7's explicit envelope for the perfect binary tree.

    The proof sums ``cost(l) <= 4n * 2^l / 2^d + 2d`` over the levels
    ``l = 0..d`` with ``d = floor(log2 n)``, giving
    ``2d(d+1) + 8n = Theta(n)``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    d = n.bit_length() - 1  # floor(log2 n)
    return 2 * d * (d + 1) + 8 * n


def mary_tree_tsp_bound(n: int, m: int) -> int:
    """The m-ary analogue of Theorem 4.7's envelope (used for Theorem 4.12).

    For constant ``m`` the same level-by-level argument gives
    ``cost <= 2d(d+1) + c_m * n`` with ``c_m = 4m/(m-1)``; we evaluate the
    ceiling of that constant.  For ``m = 2`` this coincides with
    :func:`binary_tree_tsp_bound`.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    d = max(0, math.ceil(math.log(n * (m - 1) + 1, m)) - 1)
    c_m = math.ceil(4 * m / (m - 1))
    return 2 * d * (d + 1) + c_m * n


def rosenkrantz_nn_bound(n: int, k: int) -> float:
    """Corollary 4.2's envelope: NN tour on a tree visiting k requesters.

    Rosenkrantz, Stearns and Lewis (1977) show the nearest-neighbour
    heuristic is within ``(ceil(log2 k) + 1) / 2`` of the optimum on any
    metric.  On a tree with ``n`` vertices the optimal tour costs at most
    ``2(n - 1)`` (Euler tour), hence NN <= ``(ceil(log2 k)+1)(n-1)`` —
    the ``O(n log n)`` of Corollary 4.2.
    """
    if k < 1:
        return 0.0
    return (math.ceil(math.log2(k)) + 1 if k > 1 else 1) * (n - 1)


def steiner_subtree_edges(tree: RootedTree, requests: Iterable[int], start: int | None = None) -> int:
    """Number of edges of the minimal subtree spanning ``requests`` and ``start``.

    This is the Steiner tree of R on the tree metric; every tour visiting
    R from ``start`` must traverse each of its edges at least once.
    """
    if start is None:
        start = tree.root
    terminals = set(requests) | {start}
    # Mark all vertices on paths from terminals up to the root, then count
    # edges of the minimal connecting subtree via LCA-closure: the union
    # of root-paths of terminals, trimmed above the top-most branching.
    marked = set()
    for t in terminals:
        v = t
        while v not in marked:
            marked.add(v)
            if v == tree.root:
                break
            v = tree.parent[v]
    # Trim the chain above the highest vertex that is a terminal or a
    # branching point of the marked subtree.
    children_count = {v: 0 for v in marked}
    for v in marked:
        if v != tree.root and tree.parent[v] in children_count:
            children_count[tree.parent[v]] += 1
    top = tree.root
    while top not in terminals and children_count.get(top, 0) == 1:
        top = next(c for c in tree.children[top] if c in marked)
    # Count edges of the subtree rooted at `top` induced by `marked`.
    edges = 0
    stack = [top]
    while stack:
        v = stack.pop()
        for c in tree.children[v]:
            if c in marked:
                edges += 1
                stack.append(c)
    return edges


def tsp_path_lower_bound(tree: RootedTree, requests: Iterable[int], start: int | None = None) -> int:
    """A lower bound on the cost of *any* tour visiting ``requests``.

    An open tour over a Steiner subtree with ``E`` edges must traverse
    every edge and can avoid re-traversing only the edges on one
    root-to-end path, so it costs at least ``2E - ecc`` where ``ecc`` is
    the largest distance from ``start`` to a requester.  (Also at least
    ``ecc`` itself.)
    """
    if start is None:
        start = tree.root
    req = list(set(requests))
    if not req:
        return 0
    e = steiner_subtree_edges(tree, req, start)
    ecc = max(tree.distance(start, v) for v in req)
    return max(ecc, 2 * e - ecc)
