"""Exact and 2-approximate tours for cross-checking the NN heuristic.

On a tree metric the optimal open tour has a closed form
(``2E - ecc``, see :func:`repro.tsp.bounds.tsp_path_lower_bound`), so
:func:`held_karp_optimal` is mainly a correctness oracle: tests assert the
DP optimum equals the closed form, and that NN is between the optimum and
its Rosenkrantz envelope.
"""

from __future__ import annotations

from typing import Iterable

from repro.tree import RootedTree


def held_karp_optimal(tree: RootedTree, requests: Iterable[int], start: int | None = None) -> int:
    """Exact minimum open-tour cost visiting ``requests`` from ``start``.

    Classic Held–Karp subset DP over the request set; exponential in
    ``|R|`` and guarded at 16 requesters.

    Raises:
        ValueError: if more than 16 distinct requesters are given.
    """
    if start is None:
        start = tree.root
    req = sorted(set(requests))
    k = len(req)
    if k == 0:
        return 0
    if k > 16:
        raise ValueError(f"Held-Karp limited to 16 requesters, got {k}")

    idx = {v: i for i, v in enumerate(req)}
    d_start = [tree.distance(start, v) for v in req]
    d = [[tree.distance(u, v) for v in req] for u in req]

    full = 1 << k
    INF = float("inf")
    # dp[mask][i] = min cost to visit exactly `mask` ending at req[i]
    dp = [[INF] * k for _ in range(full)]
    for i in range(k):
        dp[1 << i][i] = d_start[i]
    for mask in range(full):
        row = dp[mask]
        for i in range(k):
            ci = row[i]
            if ci == INF or not (mask >> i) & 1:
                continue
            for j in range(k):
                if (mask >> j) & 1:
                    continue
                nm = mask | (1 << j)
                cand = ci + d[i][j]
                if cand < dp[nm][j]:
                    dp[nm][j] = cand
    return int(min(dp[full - 1]))


def steiner_vertex_set(tree: RootedTree, terminals: set[int]) -> set[int]:
    """Vertices of the minimal subtree connecting ``terminals``.

    Built as the union of the terminals' root-paths, then iteratively
    pruned of non-terminal leaves (including any bare chain hanging above
    the terminals toward the root).
    """
    marked: set[int] = set()
    for t in terminals:
        v = t
        while v not in marked:
            marked.add(v)
            if v == tree.root:
                break
            v = tree.parent[v]
    # Degree within the marked-induced subtree.
    deg = {v: 0 for v in marked}
    for v in marked:
        p = tree.parent[v]
        if v != tree.root and p in marked:
            deg[v] += 1
            deg[p] += 1
    frontier = [v for v in marked if deg[v] <= 1 and v not in terminals]
    while frontier:
        v = frontier.pop()
        if v not in marked or v in terminals or deg[v] > 1:
            continue
        marked.discard(v)
        p = tree.parent[v]
        neighbors = [u for u in (p, *tree.children[v]) if u in marked and u != v]
        for u in neighbors:
            deg[u] -= 1
            if deg[u] <= 1 and u not in terminals:
                frontier.append(u)
    return marked


def doubled_tree_tour(tree: RootedTree, requests: Iterable[int], start: int | None = None) -> tuple[list[int], int]:
    """The classical 2-approximation: visit R in depth-first (preorder) order.

    Returns ``(order, cost)``.  The walk is a DFS of the Steiner subtree
    of ``R + {start}`` starting at ``start``; shortcutting the doubled
    walk to the preorder of terminals costs at most twice the Steiner
    subtree size, hence at most twice optimal — the benchmark baseline
    that NN tours are compared against.
    """
    if start is None:
        start = tree.root
    terminals = set(requests)
    if not terminals:
        return [], 0
    allowed = steiner_vertex_set(tree, terminals | {start})

    order: list[int] = []
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        if v in terminals:
            order.append(v)
        nbrs = [u for u in (tree.parent[v], *tree.children[v]) if u != v]
        for u in sorted(nbrs, reverse=True):
            if u in allowed and u not in seen:
                seen.add(u)
                stack.append(u)

    from repro.tsp.nearest_neighbor import tour_cost

    return order, tour_cost(tree, order, start=start)
