"""The nearest-neighbour TSP tour on a tree metric.

The tour is the object Theorem 4.1 compares the arrow protocol against:
start at the root, repeatedly move to the *closest* unvisited requester
(tree distance), until all requesters are visited.  Ties are broken by
smallest vertex id so the tour — like everything in this library — is
deterministic.

The implementation finds each next stop with an expanding breadth-first
search from the current position, so the work per leg is proportional to
the ball of radius (leg length) rather than to ``|R|``; over the whole
tour this is near-linear on the paper's structured trees.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.tree import RootedTree


@dataclass(frozen=True)
class NNTour:
    """The result of a nearest-neighbour tour.

    Attributes:
        start: starting vertex (the "root" in the paper's terminology).
        order: requesters in visiting order (does not include ``start``
            unless it is itself a requester, in which case it is first
            with a zero-length leg).
        legs: ``legs[i]`` is the tree distance travelled to reach
            ``order[i]`` from the previous position.
        cost: sum of legs — the quantity all of Section 4 bounds.
    """

    start: int
    order: tuple[int, ...]
    legs: tuple[int, ...]

    @property
    def cost(self) -> int:
        """Total tree distance travelled."""
        return sum(self.legs)

    def __len__(self) -> int:
        return len(self.order)


def _tree_adjacency(tree: RootedTree) -> list[list[int]]:
    adj: list[list[int]] = [[] for _ in range(tree.n)]
    for p, c in tree.edges():
        adj[p].append(c)
        adj[c].append(p)
    for lst in adj:
        lst.sort()
    return adj


def nearest_neighbor_tour(
    tree: RootedTree,
    requests: Iterable[int],
    start: int | None = None,
) -> NNTour:
    """Compute the deterministic nearest-neighbour tour.

    Args:
        tree: the spanning tree carrying the metric.
        requests: the requesting vertices R (duplicates ignored).
        start: starting vertex; defaults to the tree root, matching the
            paper's definition of the tour.

    Returns:
        The :class:`NNTour`; its ``cost`` is the NN-TSP cost of
        Theorem 4.1.
    """
    if start is None:
        start = tree.root
    remaining = set(requests)
    adj = _tree_adjacency(tree)
    n = tree.n

    order: list[int] = []
    legs: list[int] = []
    current = start
    if current in remaining:
        remaining.discard(current)
        order.append(current)
        legs.append(0)

    # Expanding BFS with version-stamped visit marks to avoid reallocating
    # the frontier bookkeeping for every leg.
    stamp = [0] * n
    version = 0
    dist = [0] * n

    while remaining:
        version += 1
        stamp[current] = version
        dist[current] = 0
        frontier = deque([current])
        found: list[int] = []
        found_d = -1
        while frontier:
            u = frontier.popleft()
            if found_d >= 0 and dist[u] >= found_d:
                break  # everything further is at least as far as the hit
            for v in adj[u]:
                if stamp[v] == version:
                    continue
                stamp[v] = version
                dist[v] = dist[u] + 1
                if v in remaining:
                    if found_d < 0:
                        found_d = dist[v]
                    if dist[v] == found_d:
                        found.append(v)
                    continue  # a hit need not be expanded this leg
                frontier.append(v)
        # BFS generates vertices in nondecreasing distance and the loop
        # only stops once a vertex at distance found_d is *expanded*, so
        # every requester at distance found_d is already in `found`.
        nxt = min(found)
        order.append(nxt)
        legs.append(found_d)
        remaining.discard(nxt)
        current = nxt

    return NNTour(start=start, order=tuple(order), legs=tuple(legs))


def tour_cost(tree: RootedTree, order: Sequence[int], start: int | None = None) -> int:
    """Cost of visiting ``order`` from ``start`` along tree distances."""
    if start is None:
        start = tree.root
    cost = 0
    cur = start
    for v in order:
        cost += tree.distance(cur, v)
        cur = v
    return cost
