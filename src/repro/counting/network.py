"""Bitonic counting networks (Aspnes, Herlihy & Shavit 1994) on a graph.

The paper names counting networks as the most prominent distributed
counting solution, so the portfolio includes one: the bitonic network
``Bitonic[w]``, built by the AHS recursion —

* ``Bitonic[2k]`` = two ``Bitonic[k]`` on the input halves followed by a
  ``Merger[2k]``;
* ``Merger[2k]`` routes the *even* wires of its first input half together
  with the *odd* wires of its second half into one ``Merger[k]``, the
  remaining wires into another, and joins corresponding outputs with a
  final layer of balancers.

Each balancer is a toggle: incoming tokens alternately exit on its top
and bottom output.  Output wire ``j`` (0-indexed) hands out the values
``j+1, j+1+w, j+1+2w, ...``; the step property of counting networks
guarantees the union over all wires is exactly ``1..x`` for ``x`` tokens.

For the distributed experiments the balancers are *embedded* on the
communication graph (balancer ``b`` lives on node ``b mod n``) and tokens
travel between hosts as routed messages subject to the model's one
message per round restriction; a requester's delay is the round its
assigned value arrives back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.problem import CountingResult
from repro.core.verify import verify_counting
from repro.sim import (
    DelayModel,
    EventTrace,
    Message,
    Node,
    NodeContext,
    SynchronousNetwork,
)
from repro.topology.base import Graph
from repro.topology.properties import bfs_distances

# A token's next destination: ("bal", balancer id) or ("wire", output index).
Entity = tuple[str, int]


@dataclass
class Balancer:
    """One toggle balancer of the network.

    Attributes:
        bal_id: creation index (also determines its host node).
        out: the two downstream entities; ``out[0]`` is taken first.
        toggle: next output to use (flips on every token).
    """

    bal_id: int
    out: list[Entity | None] = field(default_factory=lambda: [None, None])
    toggle: int = 0

    def step(self) -> Entity:
        """Pass one token: returns the downstream entity, flips the toggle."""
        target = self.out[self.toggle]
        assert target is not None, "balancer wired incompletely"
        self.toggle ^= 1
        return target


@dataclass(frozen=True)
class BitonicNetwork:
    """The assembled network.

    Attributes:
        width: number of input/output wires (a power of two).
        balancers: all balancers, indexed by ``bal_id``.
        entries: for each input wire, the first entity a token visits.
    """

    width: int
    balancers: tuple[Balancer, ...]
    entries: tuple[Entity, ...]

    def fresh(self) -> "BitonicNetwork":
        """A copy with all toggles reset (balancer wiring shared structure is
        rebuilt so independent runs do not interfere)."""
        return bitonic_network(self.width)


def bitonic_network(width: int) -> BitonicNetwork:
    """Construct ``Bitonic[width]`` (width must be a power of two >= 1)."""
    if width < 1 or width & (width - 1):
        raise ValueError(f"width must be a power of two, got {width}")
    balancers: list[Balancer] = []

    def new_balancer() -> Balancer:
        b = Balancer(bal_id=len(balancers))
        balancers.append(b)
        return b

    # Sub-networks are built input-to-output with deferred wiring: a
    # sub-network is (entry entities, exit ports).  An exit port is
    # ("balside", balancer, side) — connected later — or ("open",) for a
    # width-1 bare wire whose entry *is* whatever the exit connects to.
    Exit = tuple

    def merger(k2: int) -> tuple[list[Entity], list[Exit]]:
        """AHS ``Merger[k2]`` (k2 >= 2, power of two).

        Returns (input entities, exit ports): tokens for input wire ``i``
        are sent to ``entities[i]``.
        """
        if k2 == 2:
            b = new_balancer()
            ent: Entity = ("bal", b.bal_id)
            return [ent, ent], [("balside", b, 0), ("balside", b, 1)]
        k = k2 // 2
        # Even wires of the first half + odd wires of the second half feed
        # one sub-merger; the complementary wires feed the other.
        even_ids = [i for i in range(k) if i % 2 == 0] + [
            k + j for j in range(k) if j % 2 == 1
        ]
        odd_ids = [i for i in range(k) if i % 2 == 1] + [
            k + j for j in range(k) if j % 2 == 0
        ]
        ev_in, ev_exits = merger(k)
        od_in, od_exits = merger(k)
        resolved: list[Entity] = [("bal", -1)] * k2
        for pos, i in enumerate(even_ids):
            resolved[i] = ev_in[pos]
        for pos, i in enumerate(odd_ids):
            resolved[i] = od_in[pos]
        # Final layer: join output t of the two sub-mergers.
        exits: list[Exit] = []
        for t in range(k):
            b = new_balancer()
            ent = ("bal", b.bal_id)
            for ex in (ev_exits[t], od_exits[t]):
                _, bal, side = ex
                bal.out[side] = ent
            exits.append(("balside", b, 0))
            exits.append(("balside", b, 1))
        return resolved, exits

    def join(sub_entry: Entity | None, sub_exit: Exit, down: Entity) -> Entity:
        """Connect a sub-network exit wire to the downstream entity."""
        if sub_exit[0] == "open":
            return down  # width-1 subnetwork: entry == downstream entity
        _, bal, side = sub_exit
        bal.out[side] = down
        assert sub_entry is not None
        return sub_entry

    def bitonic(w: int) -> tuple[list[Entity | None], list[Exit]]:
        if w == 1:
            return [None], [("open",)]
        half = w // 2
        top_in, top_ex = bitonic(half)
        bot_in, bot_ex = bitonic(half)
        m_in, m_ex = merger(w)
        ins: list[Entity | None] = [None] * w
        for i in range(half):
            ins[i] = join(top_in[i], top_ex[i], m_in[i])
            ins[half + i] = join(bot_in[i], bot_ex[i], m_in[half + i])
        return ins, m_ex

    ins, exits = bitonic(width)
    entries: list[Entity] = []
    for i in range(width):
        if ins[i] is None:
            # Only possible for width == 1 (a bare wire network).
            assert exits[i][0] == "open"
            entries.append(("wire", i))
        else:
            entries.append(ins[i])
    # Connect the final exits to output wires.
    for j, ex in enumerate(exits):
        if ex[0] == "open":
            continue
        _, bal, side = ex
        bal.out[side] = ("wire", j)
    return BitonicNetwork(
        width=width, balancers=tuple(balancers), entries=tuple(entries)
    )


def network_depth(net: BitonicNetwork) -> int:
    """Longest balancer chain any token can traverse (DAG longest path)."""
    memo: dict[int, int] = {}

    def depth_from(entity: Entity) -> int:
        kind, idx = entity
        if kind == "wire":
            return 0
        if idx in memo:
            return memo[idx]
        b = net.balancers[idx]
        memo[idx] = -1  # cycle guard
        d = 1 + max(depth_from(b.out[0]), depth_from(b.out[1]))
        memo[idx] = d
        return d

    return max((depth_from(e) for e in net.entries), default=0)


def traverse_sequentially(net: BitonicNetwork, tokens_per_wire: list[int]) -> list[int]:
    """Pure (non-distributed) traversal: push tokens one at a time.

    Returns the values handed out, in hand-out order.  Used by tests to
    validate the construction (step property / exact ``1..x`` outputs)
    independently of the simulator.
    """
    if len(tokens_per_wire) != net.width:
        raise ValueError("tokens_per_wire must have one entry per input wire")
    out_counts = [0] * net.width
    values: list[int] = []
    for wire, cnt in enumerate(tokens_per_wire):
        for _ in range(cnt):
            entity = net.entries[wire]
            while entity[0] == "bal":
                entity = net.balancers[entity[1]].step()
            j = entity[1]
            values.append(j + 1 + net.width * out_counts[j])
            out_counts[j] += 1
    return values


def traverse_interleaved(
    net: BitonicNetwork, tokens_per_wire: list[int], seed: int = 0
) -> list[int]:
    """Concurrent traversal: tokens advance one balancer-step at a time in
    a seeded random interleaving.

    Counting networks must hand out exactly ``1..x`` under *every*
    interleaving, not just sequential traversals; property tests drive
    this with many seeds to exercise that guarantee.
    """
    import random as _random

    if len(tokens_per_wire) != net.width:
        raise ValueError("tokens_per_wire must have one entry per input wire")
    rng = _random.Random(seed)
    tokens: list[Entity] = []
    for wire, cnt in enumerate(tokens_per_wire):
        tokens.extend([net.entries[wire]] * cnt)
    out_counts = [0] * net.width
    values: list[int] = []
    active = list(range(len(tokens)))
    while active:
        i = active[rng.randrange(len(active))]
        entity = tokens[i]
        if entity[0] == "bal":
            tokens[i] = net.balancers[entity[1]].step()
        else:
            j = entity[1]
            values.append(j + 1 + net.width * out_counts[j])
            out_counts[j] += 1
            active.remove(i)
    return values


def output_counts_have_step_property(out_counts: list[int]) -> bool:
    """The defining property of counting networks: wire loads differ by <= 1
    and are non-increasing in wire index."""
    return all(
        out_counts[i] - out_counts[j] in (0, 1)
        for i in range(len(out_counts))
        for j in range(i + 1, len(out_counts))
    )


# --------------------------------------------------------------------------
# Distributed execution on a communication graph
# --------------------------------------------------------------------------


class _CNetNode(Node):
    """A node hosting a share of the network's balancers and output wires.

    Messages (kind ``cnet``): payload ``(origin, entity)`` where entity is
    ``("bal", id)``, ``("wire", j)``, or ``("val", value)`` for the reply
    leg back to ``origin``.
    """

    __slots__ = ("requesting", "shared")

    def __init__(self, node_id: int, requesting: bool, shared: "_SharedState") -> None:
        super().__init__(node_id)
        self.requesting = requesting
        self.shared = shared

    def _host(self, entity: tuple) -> int:
        if entity[0] == "val":
            raise AssertionError("reply host is the origin")
        return entity[1] % self.shared.n

    def _forward(self, origin: int, entity: tuple, dest: int, ctx: NodeContext) -> None:
        nxt = self.shared.next_hop_toward(dest, self.node_id)
        ctx.send(nxt, "cnet", payload=(origin, entity))

    def _process_local(self, origin: int, entity: tuple, ctx: NodeContext) -> None:
        """Advance a token through everything hosted on this node."""
        shared = self.shared
        while True:
            kind = entity[0]
            if kind == "bal":
                entity = shared.net.balancers[entity[1]].step()
                dest = self._host(entity)
                if dest != self.node_id:
                    self._forward(origin, entity, dest, ctx)
                    return
            elif kind == "wire":
                j = entity[1]
                value = j + 1 + shared.net.width * shared.out_counts[j]
                shared.out_counts[j] += 1
                if origin == self.node_id:
                    ctx.complete(origin, result=value)
                    return
                entity = ("val", value)
                self._forward(origin, entity, origin, ctx)
                return
            else:  # "val" — we are not the origin; keep forwarding
                self._forward(origin, entity, origin, ctx)
                return

    def on_start(self, ctx: NodeContext) -> None:
        if not self.requesting:
            return
        entity = self.shared.net.entries[self.node_id % self.shared.net.width]
        dest = self._host(entity)
        if dest == self.node_id:
            self._process_local(self.node_id, entity, ctx)
        else:
            self._forward(self.node_id, entity, dest, ctx)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind != "cnet":  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")
        origin, entity = msg.payload
        if entity[0] == "val":
            if origin == self.node_id:
                ctx.complete(origin, result=entity[1])
            else:
                self._forward(origin, entity, origin, ctx)
            return
        if self._host(entity) == self.node_id:
            self._process_local(origin, entity, ctx)
        else:
            self._forward(origin, entity, self._host(entity), ctx)


class _SharedState:
    """Read-only routing tables plus the (mutable) embedded network state.

    Precomputed during the free initialization step; the balancer toggles
    and output counters are the distributed state, each touched only by
    its host node.
    """

    def __init__(self, graph: Graph, net: BitonicNetwork) -> None:
        self.net = net
        self.n = graph.n
        self.graph = graph
        self.out_counts = [0] * net.width
        self._toward: dict[int, list[int]] = {}

    def next_hop_toward(self, dest: int, here: int) -> int:
        par = self._toward.get(dest)
        if par is None:
            par = self._bfs_parents(dest)
            self._toward[dest] = par
        return par[here]

    def _bfs_parents(self, dest: int) -> list[int]:
        dist = bfs_distances(self.graph, dest)
        par = list(range(self.n))
        for v in self.graph.vertices():
            if v == dest:
                continue
            for u in self.graph.adj[v]:
                if dist[u] == dist[v] - 1:
                    par[v] = u
                    break
        return par


def run_counting_network(
    graph: Graph,
    requests: Iterable[int],
    *,
    width: int | None = None,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
) -> CountingResult:
    """Run bitonic-counting-network counting on a graph; output verified.

    Args:
        graph: communication graph (balancer ``b`` is hosted on node
            ``b mod n``; requester ``v`` enters on wire ``v mod width``).
        requests: requesting vertices.
        width: network width (power of two; default: largest power of two
            ``<= n``).
        max_rounds: engine safety limit.
    """
    n = graph.n
    if width is None:
        width = 1 << max(0, n.bit_length() - 1)
    net_struct = bitonic_network(width)
    shared = _SharedState(graph, net_struct)
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nodes = {
        v: _CNetNode(v, requesting=(v in req_set), shared=shared)
        for v in graph.vertices()
    }
    net = SynchronousNetwork(
        graph,
        nodes,
        send_capacity=1,
        recv_capacity=1,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
    )
    net.run(max_rounds=max_rounds)
    counts = {v: int(c) for v, c in net.delays.result_by_op().items()}
    verify_counting(req, counts)
    return CountingResult(
        algorithm=f"cnet(w={width})",
        requests=req,
        counts=counts,
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )
