"""Sweep-token counting: a token walks a Hamilton path handing out ranks.

The simplest conceivable counting algorithm: a token starts at one end of
a Hamilton path of the graph carrying a counter; every requester it
passes takes the next value.  Its *maximum* delay is an optimal-looking
O(n) — but its **total** delay is Theta(n^2), a clean illustration of why
the paper's total-delay metric is the right lens: the sweep serialises
everything, and the per-operation bounds of Section 3 are satisfied with
an enormous slack that the combining tree and counting networks avoid.

Like every algorithm here, the walk order is fixed at initialization
(request-oblivious); the token visits *all* nodes because it cannot know
who requested.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.problem import CountingResult
from repro.core.verify import verify_counting
from repro.sim import EventTrace, Message, Node, NodeContext, SynchronousNetwork
from repro.topology.base import Graph
from repro.topology.hamilton import hamilton_path_of, is_hamilton_path


class _SweepNode(Node):
    """Takes a value from the passing token (if requesting) and forwards it.

    Messages:
        ``token``: payload = the next rank to hand out (counting mode) or
            the identifier of the last queued operation (queuing mode).
    """

    __slots__ = ("requesting", "next_on_path", "mode", "completed")

    def __init__(
        self,
        node_id: int,
        requesting: bool,
        next_on_path: int | None,
        mode: str = "count",
    ):
        super().__init__(node_id)
        self.requesting = requesting
        self.next_on_path = next_on_path
        self.mode = mode
        self.completed = False

    def _pass(self, carried, ctx: NodeContext) -> None:
        if self.requesting and not self.completed:
            self.completed = True
            if self.mode == "count":
                ctx.complete(self.node_id, result=carried)
                carried += 1
            else:
                ctx.complete(("op", self.node_id), result=carried)
                carried = ("op", self.node_id)
        if self.next_on_path is not None:
            ctx.send(self.next_on_path, "token", payload=carried)

    def on_start(self, ctx: NodeContext) -> None:
        pass  # only the path head acts, via the runner's kick-off below

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind != "token":  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")
        self._pass(msg.payload, ctx)


class _SweepHead(_SweepNode):
    """The path head starts the sweep in round 0."""

    def on_start(self, ctx: NodeContext) -> None:
        if self.mode == "count":
            self._pass(1, ctx)
        else:
            self._pass(("init", self.node_id), ctx)


def run_sweep_counting(
    graph: Graph,
    requests: Iterable[int],
    *,
    order: Sequence[int] | None = None,
    delay_model=None,
    max_rounds: int = 50_000_000,
    trace: EventTrace | None = None,
    strict: bool = False,
) -> CountingResult:
    """Run sweep-token counting along a Hamilton path; output verified.

    Args:
        graph: communication graph (must have a Hamilton path, or pass an
            explicit ``order``).
        requests: requesting vertices.
        order: an explicit Hamilton path to sweep along.
        delay_model: optional link-delay model.
        max_rounds: engine safety limit.
        trace: optional :class:`EventTrace` recording engine events.
        strict: enable the engine's strict per-round budget assertions.
    """
    if order is None:
        order = hamilton_path_of(graph)
    if not is_hamilton_path(graph, order):
        raise ValueError("order is not a Hamilton path of the graph")
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nxt: dict[int, int | None] = {
        order[i]: (order[i + 1] if i + 1 < len(order) else None)
        for i in range(len(order))
    }
    nodes: dict[int, Node] = {}
    for v in graph.vertices():
        cls = _SweepHead if v == order[0] else _SweepNode
        nodes[v] = cls(v, requesting=(v in req_set), next_on_path=nxt[v])
    net = SynchronousNetwork(
        graph, nodes, send_capacity=1, recv_capacity=1,
        delay_model=delay_model, trace=trace, strict=strict,
    )
    net.run(max_rounds=max_rounds)
    counts = {v: int(c) for v, c in net.delays.result_by_op().items()}
    verify_counting(req, counts)
    return CountingResult(
        algorithm="sweep",
        requests=req,
        counts=counts,
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )


def run_sweep_queuing(
    graph: Graph,
    requests: Iterable[int],
    *,
    order: Sequence[int] | None = None,
    delay_model=None,
    max_rounds: int = 50_000_000,
    trace: EventTrace | None = None,
    strict: bool = False,
):
    """Sweep-token *queuing*: the token carries the last queued op's id.

    A deliberately naive queuing algorithm: like the sweep counter it has
    total delay ``Theta(n^2)`` even though queuing admits O(n) via the
    arrow protocol — demonstrating that the paper's separation is a
    statement about the *best* algorithm for each problem, not about any
    particular one.

    Returns a :class:`repro.core.problem.QueuingResult` (verified).
    """
    from repro.core.problem import QueuingResult
    from repro.core.verify import verify_queuing

    if order is None:
        order = hamilton_path_of(graph)
    if not is_hamilton_path(graph, order):
        raise ValueError("order is not a Hamilton path of the graph")
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nxt: dict[int, int | None] = {
        order[i]: (order[i + 1] if i + 1 < len(order) else None)
        for i in range(len(order))
    }
    nodes: dict[int, Node] = {}
    for v in graph.vertices():
        cls = _SweepHead if v == order[0] else _SweepNode
        nodes[v] = cls(v, requesting=(v in req_set), next_on_path=nxt[v], mode="queue")
    net = SynchronousNetwork(
        graph, nodes, send_capacity=1, recv_capacity=1,
        delay_model=delay_model, trace=trace, strict=strict,
    )
    net.run(max_rounds=max_rounds)
    predecessors = net.delays.result_by_op()
    verify_queuing(req, predecessors, tail=order[0])
    return QueuingResult(
        algorithm="sweep",
        requests=req,
        predecessors=predecessors,
        delays=net.delays.delay_by_op(),
        tail=order[0],
        stats=net.stats,
    )
