"""Central-counter counting (and queuing) with shortest-path routing.

Every requester routes an increment request hop-by-hop toward a
designated root; the root assigns ranks in arrival order and routes a
reply back.  Under the model's one-message-per-round restriction the root
serialises: on the star this is exactly the ``Theta(n^2)`` behaviour the
paper's conclusion discusses, and on the list it realises Theorem 3.6's
``Omega(n^2)``.

Routing tables (next hop toward the root, and the explicit return path in
each request) are precomputed — initialization is free per Section 2.2.
The same machinery with the root answering "who came before you" instead
of a rank gives the central *queuing* baseline used in the star-graph
experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.core.problem import CountingResult, QueuingResult
from repro.core.verify import verify_counting, verify_queuing
from repro.sim import (
    DelayModel,
    EventTrace,
    Message,
    Node,
    NodeContext,
    SynchronousNetwork,
)
from repro.topology.base import Graph
from repro.topology.properties import bfs_distances

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan


class _CentralNode(Node):
    """A node of the central-counter protocol.

    Messages:
        ``req``: payload = origin vertex; forwarded along ``next_hop``
            toward the root.
        ``reply``: payload = (origin, remaining_path, value); source-routed
            back to the origin.
    """

    __slots__ = (
        "next_hop",
        "requesting",
        "is_root",
        "counter",
        "last_op",
        "mode",
        "_down_paths",
    )

    def __init__(
        self, node_id: int, next_hop: int, requesting: bool, is_root: bool, mode: str
    ) -> None:
        super().__init__(node_id)
        self.next_hop = next_hop
        self.requesting = requesting
        self.is_root = is_root
        self.counter = 0
        self.last_op: Hashable = ("init", node_id)
        self.mode = mode
        #: root only: origin -> path root->...->origin (excluding the root).
        self._down_paths: dict[int, list[int]] = {}

    def _serve(self, origin: int, path: list[int], ctx: NodeContext) -> None:
        """Root-side: assign the next value and send (or record) the reply."""
        self.counter += 1
        if self.mode == "count":
            value: Hashable = self.counter
        else:
            value = self.last_op
            self.last_op = ("op", origin)
        if origin == self.node_id:
            ctx.complete(origin, result=value)
        else:
            ctx.send(path[0], "reply", payload=(origin, path[1:], value))

    def on_start(self, ctx: NodeContext) -> None:
        if not self.requesting:
            return
        if self.is_root:
            self._serve(self.node_id, [], ctx)
        else:
            ctx.send(self.next_hop, "req", payload=self.node_id)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind == "req":
            origin = msg.payload
            if self.is_root:
                # Return path: reverse of the request's route.  The route
                # is recoverable because requests follow next_hop pointers;
                # the engine-level trick of carrying the path would also
                # work, but the reverse route is simply the BFS-tree path
                # from the root to the origin, precomputed below.
                self._serve(origin, self._down_path(origin), ctx)
            else:
                ctx.send(self.next_hop, "req", payload=origin)
        elif msg.kind == "reply":
            origin, path, value = msg.payload
            if origin == self.node_id:
                ctx.complete(origin, result=value)
            else:
                ctx.send(path[0], "reply", payload=(origin, path[1:], value))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")

    def _down_path(self, origin: int) -> list[int]:
        return self._down_paths[origin]


def _routing(graph: Graph, root: int) -> tuple[list[int], dict[int, list[int]]]:
    """Next hops toward ``root`` and full root->origin paths, via BFS."""
    dist = bfs_distances(graph, root)
    if (dist < 0).any():
        raise ValueError("graph is disconnected")
    next_hop = list(range(graph.n))
    for v in graph.vertices():
        if v == root:
            continue
        for u in graph.adj[v]:
            if dist[u] == dist[v] - 1:
                next_hop[v] = u
                break
    down_paths: dict[int, list[int]] = {}
    for v in graph.vertices():
        path = []
        x = v
        while x != root:
            path.append(x)
            x = next_hop[x]
        down_paths[v] = path[::-1]
    return next_hop, down_paths


def _run_central(
    graph: Graph,
    requests: Iterable[int],
    root: int,
    mode: str,
    max_rounds: int,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
    node_wrapper: Callable[[Node], Node] | None = None,
    faults: "FaultPlan | None" = None,
    monitors: Any | None = None,
) -> tuple[dict[int, Hashable], dict[int, int], SynchronousNetwork]:
    req = sorted(set(requests))
    next_hop, down_paths = _routing(graph, root)
    req_set = set(req)
    nodes = {
        v: _CentralNode(
            v,
            next_hop=next_hop[v],
            requesting=(v in req_set),
            is_root=(v == root),
            mode=mode,
        )
        for v in graph.vertices()
    }
    nodes[root]._down_paths = down_paths
    sim_nodes: dict[int, Node] = (
        {v: node_wrapper(n) for v, n in nodes.items()} if node_wrapper else nodes
    )
    net = SynchronousNetwork(
        graph,
        sim_nodes,
        send_capacity=1,
        recv_capacity=1,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
        faults=faults,
        monitors=monitors,
    )
    net.run(max_rounds=max_rounds)
    return net.delays.result_by_op(), net.delays.delay_by_op(), net


def run_central_counting(
    graph: Graph,
    requests: Iterable[int],
    *,
    root: int = 0,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
    node_wrapper: Callable[[Node], Node] | None = None,
    faults: "FaultPlan | None" = None,
    monitors: Any | None = None,
) -> CountingResult:
    """Run central-counter counting; output verified before returning.

    Args:
        graph: communication graph.
        requests: requesting vertices.
        root: the vertex holding the counter.
        max_rounds: engine safety limit.
        delay_model: optional link-delay model.
        trace: optional :class:`EventTrace` recording engine events.
        metrics: optional :class:`repro.obs.MetricsRegistry` the engine
            publishes into.
        profiler: optional :class:`repro.obs.PhaseProfiler` timing the
            engine phases.
        strict: enable the engine's strict per-round budget assertions.
        node_wrapper: optional adapter applied to every protocol node
            (e.g. :func:`repro.faults.wrap_reliable`).
        faults: optional :class:`repro.faults.FaultPlan` injected into
            the engine.
        monitors: optional :class:`repro.resilience.MonitorSet` running
            end-of-round invariant checks against the live network.
    """
    req = tuple(sorted(set(requests)))
    results, delays, net = _run_central(
        graph, req, root, "count", max_rounds, delay_model, trace, metrics,
        profiler, strict, node_wrapper, faults, monitors,
    )
    counts = {v: int(c) for v, c in results.items()}
    verify_counting(req, counts)
    return CountingResult(
        algorithm=f"central(root={root})",
        requests=req,
        counts=counts,
        delays=delays,
        stats=net.stats,
    )


def run_central_queuing(
    graph: Graph,
    requests: Iterable[int],
    *,
    root: int = 0,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
    monitors: Any | None = None,
) -> QueuingResult:
    """Run central-server queuing (root returns each request's predecessor).

    Identical message pattern to :func:`run_central_counting` — the pair
    demonstrates the star-graph conclusion that with a serialising hub,
    counting and queuing cost the same.
    """
    req = tuple(sorted(set(requests)))
    results, raw_delays, net = _run_central(
        graph, req, root, "queue", max_rounds, delay_model, trace, metrics,
        profiler, strict, monitors=monitors,
    )
    predecessors = {("op", v): pred for v, pred in results.items()}
    # Delays keyed by op id to match QueuingResult's convention.
    delays = {("op", v): d for v, d in raw_delays.items()}
    # The initial dummy op lives at the root for the central server.
    verify_queuing(req, predecessors, tail=root)
    return QueuingResult(
        algorithm=f"central(root={root})",
        requests=req,
        predecessors=predecessors,
        delays=delays,
        tail=root,
        stats=net.stats,
    )
