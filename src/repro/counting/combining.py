"""Combining-tree counting.

The classic software-combining counter, specialised to the one-shot
scenario:

1. **Aggregate up** — every leaf of the spanning tree reports how many
   requests its subtree holds (0 or 1); an internal node waits for all of
   its children's reports, adds its own bit, and reports the sum to its
   parent.  Non-requesters participate: the request set is unknown to the
   algorithm (Section 2.2), so silence cannot be distinguished from "no
   requests" without the synchronous-silence tricks the lower-bound proof
   worries about — the implementation plays honestly and always sends.
2. **Distribute down** — the root assigns its subtree the rank interval
   ``[1 .. total]``; each node takes the first rank for its own request
   (if any) and splits the remainder among its children in sorted order,
   one interval message per child (serialised by the send capacity).

A requester's delay is the round its rank arrives.  On a balanced
constant-degree tree the total delay is ``O(n log n)``; on a path it
degrades to ``Theta(n^2)``, matching Theorem 3.6's lower bound shape.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.problem import CountingResult
from repro.core.verify import verify_counting
from repro.sim import (
    DelayModel,
    EventTrace,
    Message,
    Node,
    NodeContext,
    SynchronousNetwork,
)
from repro.topology.spanning import SpanningTree


class _CombiningNode(Node):
    """One node of the combining tree.

    Messages:
        ``up``: payload = subtree request count, child -> parent.
        ``down``: payload = (base,), parent -> child: the child's subtree
            ranks are ``base+1 .. base+subtree_count``.
    """

    __slots__ = (
        "parent",
        "children",
        "requesting",
        "pending",
        "child_counts",
        "subtotal",
        "completed",
    )

    def __init__(
        self, node_id: int, parent: int, children: tuple[int, ...], requesting: bool
    ) -> None:
        super().__init__(node_id)
        self.parent = parent
        self.children = children
        self.requesting = requesting
        self.pending = len(children)
        self.child_counts: dict[int, int] = {}
        self.subtotal = 1 if requesting else 0
        self.completed = False

    def _report_or_finish(self, ctx: NodeContext) -> None:
        """Send the aggregate up, or start distribution if this is the root."""
        if self.parent != self.node_id:
            ctx.send(self.parent, "up", payload=self.subtotal)
        else:
            self._distribute(0, ctx)

    def _distribute(self, base: int, ctx: NodeContext) -> None:
        """Assign ranks ``base+1..base+subtotal`` to this subtree."""
        nxt = base
        if self.requesting and not self.completed:
            self.completed = True
            nxt += 1
            ctx.complete(self.node_id, result=nxt)
        for c in self.children:
            cnt = self.child_counts[c]
            if cnt > 0:
                ctx.send(c, "down", payload=nxt)
            nxt += cnt

    def on_start(self, ctx: NodeContext) -> None:
        if self.pending == 0:
            self._report_or_finish(ctx)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind == "up":
            self.child_counts[msg.src] = msg.payload
            self.subtotal += msg.payload
            self.pending -= 1
            if self.pending == 0:
                self._report_or_finish(ctx)
        elif msg.kind == "down":
            self._distribute(msg.payload, ctx)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")


def run_combining_counting(
    spanning: SpanningTree,
    requests: Iterable[int],
    *,
    capacity: int = 1,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
    monitors: Any | None = None,
) -> CountingResult:
    """Run combining-tree counting on a spanning tree; output verified.

    Args:
        spanning: the spanning tree to combine along (messages use tree
            edges only).
        requests: requesting vertices.
        capacity: per-round message budget (1 = the paper's strict model;
            the tree degree = expanded steps).
        max_rounds: engine safety limit.
    """
    tree = spanning.tree
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nodes = {
        v: _CombiningNode(
            v,
            parent=tree.parent[v],
            children=tree.children[v],
            requesting=(v in req_set),
        )
        for v in range(tree.n)
    }
    net = SynchronousNetwork(
        spanning.as_graph(),
        nodes,
        send_capacity=capacity,
        recv_capacity=capacity,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
        monitors=monitors,
    )
    net.run(max_rounds=max_rounds)
    counts = {v: int(c) for v, c in net.delays.result_by_op().items()}
    verify_counting(req, counts)
    return CountingResult(
        algorithm=f"combining[{spanning.label}]",
        requests=req,
        counts=counts,
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )
