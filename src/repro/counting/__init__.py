"""Distributed counting algorithms (the upper-bound side of Section 3).

The paper lower-bounds *every* counting algorithm; this package
implements a portfolio of real ones so the experiments can check that
each measured cost dominates the analytic lower bounds and see how close
achievable counting gets to them:

* :mod:`repro.counting.central` — a central counter with shortest-path
  routing: simple, and exactly the contention behaviour that makes the
  star and the list cost Theta(n^2);
* :mod:`repro.counting.combining` — a combining tree (aggregate requests
  up, split rank intervals down): the classic low-contention software
  counter, O(n log n) total delay on balanced trees;
* :mod:`repro.counting.flood` — full-information gossip: every node
  learns every input bit and ranks itself locally; the information-
  theoretic strawman the model's one-message restriction punishes;
* :mod:`repro.counting.network` — a bitonic counting network (Aspnes,
  Herlihy, Shavit 1994 — the paper's reference [1]) embedded on the
  communication graph.

All runners return a :class:`repro.core.problem.CountingResult` and are
validated with :func:`repro.core.verify.verify_counting`.
"""

from repro.counting.central import run_central_counting, run_central_queuing
from repro.counting.combining import run_combining_counting
from repro.counting.flood import run_flood_counting
from repro.counting.network import (
    bitonic_network,
    network_depth,
    run_counting_network,
    traverse_interleaved,
    traverse_sequentially,
)
from repro.counting.periodic import periodic_network, run_periodic_counting
from repro.counting.sweep import run_sweep_counting, run_sweep_queuing

__all__ = [
    "run_central_counting",
    "run_central_queuing",
    "run_combining_counting",
    "run_flood_counting",
    "bitonic_network",
    "network_depth",
    "run_counting_network",
    "traverse_interleaved",
    "traverse_sequentially",
    "periodic_network",
    "run_periodic_counting",
    "run_sweep_counting",
    "run_sweep_queuing",
]
