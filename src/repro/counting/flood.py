"""Full-information gossip counting ("flood-and-rank").

Every node's input bit is flooded to everyone; a requester ranks itself
by id among the requesters it has heard of.  Because ranks are assigned
in id order, requester ``v`` can complete as soon as it knows the input
bit of every vertex ``u < v`` — an information profile that mirrors the
lower-bound argument of Section 3: a node announcing a high rank must
have learned about many others first.

The protocol is the honest version of the "trivial all-to-all algorithm"
the paper's model restriction is designed to punish: with at most one
message sent and received per node per round, distributing all the bits
takes real time, and the measured delays show it.

Mechanics: a node sends (at most one per round, via engine wakeups) its
current knowledge to the next neighbor — in cyclic order — whose last
update from us predates our current knowledge.  New knowledge reactivates
a dormant node.  Quiescence is reached when all nodes know all bits and
have propagated them.

Gossip messages carry *deltas*, not snapshots: because links are FIFO, by
the time neighbor ``u`` receives our k-th gossip message it has already
received the first k-1, so it knows the first ``sent_size[u]`` entries of
our knowledge (in our insertion order) and only the suffix needs to go on
the wire.  The message *schedule* is unchanged — who sends to whom in
which round depends only on knowledge sizes, which deltas preserve — so
traces and stats are identical to the snapshot version, while the work
per message drops from O(n) to O(new bits).  Knowledge union is
commutative and idempotent, so duplicated or reordered deliveries (the
fault-tolerant wrapper's retry path) remain correct.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.problem import CountingResult
from repro.core.verify import verify_counting
from repro.sim import (
    DelayModel,
    EventTrace,
    Message,
    Node,
    NodeContext,
    SynchronousNetwork,
)
from repro.topology.base import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan


class _FloodNode(Node):
    """One gossiping node.

    Messages:
        ``gossip``: payload = list of ``(vertex, bit)`` pairs — the suffix
            of the sender's knowledge (in its insertion order) that this
            neighbor has not been sent yet.  FIFO links guarantee the
            receiver already holds the sender's earlier prefix.
    """

    __slots__ = (
        "requesting", "bits", "order", "sent_size", "rr", "wake_pending",
        "done", "nbrs", "below_known",
    )

    def __init__(self, node_id: int, requesting: bool) -> None:
        super().__init__(node_id)
        self.requesting = requesting
        self.bits: dict[int, bool] = {node_id: requesting}
        #: knowledge in insertion order; ``sent_size[u]`` indexes into it.
        self.order: list[tuple[int, bool]] = [(node_id, requesting)]
        self.sent_size: dict[int, int] = {}
        self.rr = 0
        self.wake_pending = False
        self.done = False
        #: neighbor tuple, cached from the context in ``on_start``.
        self.nbrs: tuple[int, ...] = ()
        #: how many vertices ``u < node_id`` we know the bit of; completion
        #: needs all of them, so this replaces a rescan per new bit.
        self.below_known = 0

    # -- helpers ---------------------------------------------------------

    def _needy_neighbor(self, ctx: NodeContext) -> int | None:
        nbrs = self.nbrs
        k = len(nbrs)
        size = len(self.bits)
        sent = self.sent_size
        for off in range(k):
            u = nbrs[(self.rr + off) % k]
            if sent.get(u, 0) < size:
                self.rr = (self.rr + off + 1) % k
                return u
        return None

    def _maybe_complete(self, ctx: NodeContext) -> None:
        if self.done or not self.requesting:
            return
        # Rank-by-id: we need the bit of every smaller-id vertex.
        if self.below_known == self.node_id:
            rank = 1 + sum(1 for u in range(self.node_id) if self.bits[u])
            self.done = True
            ctx.complete(self.node_id, result=rank)

    def _gossip_step(self, ctx: NodeContext) -> None:
        u = self._needy_neighbor(ctx)
        if u is not None:
            sent = self.sent_size.get(u, 0)
            self.sent_size[u] = len(self.bits)
            ctx.send(u, "gossip", payload=self.order[sent:])
        if self._needy_neighbor_exists(ctx):
            if not self.wake_pending:
                self.wake_pending = True
                ctx.schedule_wakeup(ctx.now + 1)

    def _needy_neighbor_exists(self, ctx: NodeContext) -> bool:
        size = len(self.bits)
        sent = self.sent_size
        for u in self.nbrs:
            if sent.get(u, 0) < size:
                return True
        return False

    # -- engine hooks ------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        self.nbrs = ctx.neighbors
        self._maybe_complete(ctx)
        self._gossip_step(ctx)

    def on_wake(self, ctx: NodeContext) -> None:
        self.wake_pending = False
        self._gossip_step(ctx)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind != "gossip":  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")
        bits = self.bits
        before = len(bits)
        order = self.order
        my_id = self.node_id
        below = self.below_known
        for u, b in msg.payload:
            if u not in bits:
                bits[u] = b
                order.append((u, b))
                if u < my_id:
                    below += 1
        self.below_known = below
        if len(bits) > before:
            self._maybe_complete(ctx)
            if not self.wake_pending and self._needy_neighbor_exists(ctx):
                self.wake_pending = True
                ctx.schedule_wakeup(ctx.now + 1)


def run_flood_counting(
    graph: Graph,
    requests: Iterable[int],
    *,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
    node_wrapper: Callable[[Node], Node] | None = None,
    faults: "FaultPlan | None" = None,
    monitors: Any | None = None,
) -> CountingResult:
    """Run flood-and-rank counting on any connected graph; output verified."""
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nodes = {v: _FloodNode(v, requesting=(v in req_set)) for v in graph.vertices()}
    sim_nodes: dict[int, Node] = (
        {v: node_wrapper(n) for v, n in nodes.items()} if node_wrapper else nodes
    )
    net = SynchronousNetwork(
        graph,
        sim_nodes,
        send_capacity=1,
        recv_capacity=1,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
        faults=faults,
        monitors=monitors,
    )
    net.run(max_rounds=max_rounds)
    counts = {v: int(c) for v, c in net.delays.result_by_op().items()}
    verify_counting(req, counts)
    return CountingResult(
        algorithm="flood",
        requests=req,
        counts=counts,
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )
