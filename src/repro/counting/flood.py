"""Full-information gossip counting ("flood-and-rank").

Every node's input bit is flooded to everyone; a requester ranks itself
by id among the requesters it has heard of.  Because ranks are assigned
in id order, requester ``v`` can complete as soon as it knows the input
bit of every vertex ``u < v`` — an information profile that mirrors the
lower-bound argument of Section 3: a node announcing a high rank must
have learned about many others first.

The protocol is the honest version of the "trivial all-to-all algorithm"
the paper's model restriction is designed to punish: with at most one
message sent and received per node per round, distributing all the bits
takes real time, and the measured delays show it.

Mechanics: a node sends (at most one per round, via engine wakeups) its
current knowledge snapshot to the next neighbor — in cyclic order — whose
last update from us predates our current knowledge.  New knowledge
reactivates a dormant node.  Quiescence is reached when all nodes know
all bits and have propagated them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.problem import CountingResult
from repro.core.verify import verify_counting
from repro.sim import (
    DelayModel,
    EventTrace,
    Message,
    Node,
    NodeContext,
    SynchronousNetwork,
)
from repro.topology.base import Graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan


class _FloodNode(Node):
    """One gossiping node.

    Messages:
        ``gossip``: payload = dict vertex -> input bit (a snapshot of the
            sender's knowledge at send time).
    """

    __slots__ = ("requesting", "bits", "sent_size", "rr", "wake_pending", "done")

    def __init__(self, node_id: int, requesting: bool) -> None:
        super().__init__(node_id)
        self.requesting = requesting
        self.bits: dict[int, bool] = {node_id: requesting}
        self.sent_size: dict[int, int] = {}
        self.rr = 0
        self.wake_pending = False
        self.done = False

    # -- helpers ---------------------------------------------------------

    def _needy_neighbor(self, ctx: NodeContext) -> int | None:
        nbrs = ctx.neighbors
        k = len(nbrs)
        size = len(self.bits)
        for off in range(k):
            u = nbrs[(self.rr + off) % k]
            if self.sent_size.get(u, 0) < size:
                self.rr = (self.rr + off + 1) % k
                return u
        return None

    def _maybe_complete(self, ctx: NodeContext) -> None:
        if self.done or not self.requesting:
            return
        # Rank-by-id: we need the bit of every smaller-id vertex.
        if all(u in self.bits for u in range(self.node_id)):
            rank = 1 + sum(1 for u in range(self.node_id) if self.bits[u])
            self.done = True
            ctx.complete(self.node_id, result=rank)

    def _gossip_step(self, ctx: NodeContext) -> None:
        u = self._needy_neighbor(ctx)
        if u is not None:
            self.sent_size[u] = len(self.bits)
            ctx.send(u, "gossip", payload=dict(self.bits))
        if self._needy_neighbor_exists(ctx):
            if not self.wake_pending:
                self.wake_pending = True
                ctx.schedule_wakeup(ctx.now + 1)

    def _needy_neighbor_exists(self, ctx: NodeContext) -> bool:
        size = len(self.bits)
        return any(self.sent_size.get(u, 0) < size for u in ctx.neighbors)

    # -- engine hooks ------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        self._maybe_complete(ctx)
        self._gossip_step(ctx)

    def on_wake(self, ctx: NodeContext) -> None:
        self.wake_pending = False
        self._gossip_step(ctx)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind != "gossip":  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")
        before = len(self.bits)
        self.bits.update(msg.payload)
        if len(self.bits) > before:
            self._maybe_complete(ctx)
            if not self.wake_pending and self._needy_neighbor_exists(ctx):
                self.wake_pending = True
                ctx.schedule_wakeup(ctx.now + 1)


def run_flood_counting(
    graph: Graph,
    requests: Iterable[int],
    *,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
    node_wrapper: Callable[[Node], Node] | None = None,
    faults: "FaultPlan | None" = None,
) -> CountingResult:
    """Run flood-and-rank counting on any connected graph; output verified."""
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nodes = {v: _FloodNode(v, requesting=(v in req_set)) for v in graph.vertices()}
    sim_nodes: dict[int, Node] = (
        {v: node_wrapper(n) for v, n in nodes.items()} if node_wrapper else nodes
    )
    net = SynchronousNetwork(
        graph,
        sim_nodes,
        send_capacity=1,
        recv_capacity=1,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
        faults=faults,
    )
    net.run(max_rounds=max_rounds)
    counts = {v: int(c) for v, c in net.delays.result_by_op().items()}
    verify_counting(req, counts)
    return CountingResult(
        algorithm="flood",
        requests=req,
        counts=counts,
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )
