"""The periodic counting network (Aspnes, Herlihy & Shavit 1994, Section 4).

The second classic counting network: ``Periodic[w]`` is ``log2 w``
cascaded copies of a single ``Block[w]`` network.  ``Block[2k]`` splits
its inputs by parity — even-indexed wires into one ``Block[k]``, odd-
indexed wires into the other — and joins output ``t`` of the two
sub-blocks with a final balancer whose outputs are wires ``2t`` and
``2t + 1``.  Each block has ``log2 w`` balancer layers, so the periodic
network has depth ``(log2 w)^2`` — deeper than bitonic's
``log w (log w + 1)/2`` but with a uniform, pipeline-friendly structure
(the property that made it attractive in the original paper).

The construction reuses :class:`~repro.counting.network.Balancer` /
:class:`~repro.counting.network.BitonicNetwork` containers, the
sequential traversal checker, and the distributed embedding runner, so
``run_periodic_counting`` behaves exactly like ``run_counting_network``
with the other wiring.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.problem import CountingResult
from repro.counting.network import (
    Balancer,
    BitonicNetwork,
    Entity,
    _CNetNode,
    _SharedState,
)
from repro.topology.base import Graph


def periodic_block(width: int, balancers: list[Balancer]) -> tuple[list[Entity], list[tuple]]:
    """One ``Block[width]``: returns (input entities, exit ports).

    Exit ports are ``("balside", balancer, side)`` (or ``("open",)`` for
    width 1), to be connected by the caller.
    """
    if width == 1:
        return [("wire", 0)], [("open",)]

    def new_balancer() -> Balancer:
        b = Balancer(bal_id=len(balancers))
        balancers.append(b)
        return b

    def block(w: int) -> tuple[list[Entity | None], list[tuple]]:
        # Block[w] = one "reversal" layer of balancers pairing wire i with
        # its mirror w-1-i, followed by Block[w/2] on each half — the
        # balanced merger of Dowd, Perl, Rudolph & Saks that AHS build the
        # periodic counting network from.
        if w == 1:
            return [None], [("open",)]
        k = w // 2
        layer = [new_balancer() for _ in range(k)]
        ins: list[Entity | None] = [None] * w
        for i, b in enumerate(layer):
            ins[i] = ("bal", b.bal_id)
            ins[w - 1 - i] = ("bal", b.bal_id)
        top_in, top_exits = block(k)
        bot_in, bot_exits = block(k)
        # Balancer i's top output continues on top-half wire i; its bottom
        # output continues on bottom-half wire w-1-i (= position k-1-i of
        # the bottom sub-block).
        for i, b in enumerate(layer):
            if top_in[i] is not None:
                b.out[0] = top_in[i]
            if bot_in[k - 1 - i] is not None:
                b.out[1] = bot_in[k - 1 - i]
        exits: list[tuple] = []
        for j in range(k):
            ex = top_exits[j]
            exits.append(("balside", layer[j], 0) if ex[0] == "open" else ex)
        for j in range(k):
            ex = bot_exits[j]
            exits.append(("balside", layer[k - 1 - j], 1) if ex[0] == "open" else ex)
        return ins, exits

    ins, exits = block(width)
    assert all(e is not None for e in ins)
    return ins, exits  # type: ignore[return-value]


def periodic_network(width: int) -> BitonicNetwork:
    """Construct ``Periodic[width]`` = ``log2(width)`` cascaded blocks.

    Returns the same container type as :func:`bitonic_network`, so depth
    computation, sequential traversal, and the distributed runner all
    apply unchanged.
    """
    if width < 1 or width & (width - 1):
        raise ValueError(f"width must be a power of two, got {width}")
    if width == 1:
        return BitonicNetwork(width=1, balancers=(), entries=(("wire", 0),))

    stages = max(1, width.bit_length() - 1)  # log2 w blocks
    balancers: list[Balancer] = []
    entries: list[Entity] | None = None
    prev_exits: list[tuple] | None = None
    for _ in range(stages):
        ins, exits = periodic_block(width, balancers)
        if entries is None:
            entries = list(ins)
        else:
            assert prev_exits is not None
            for wire, ex in enumerate(prev_exits):
                _, bal, side = ex
                bal.out[side] = ins[wire]
        prev_exits = exits
    assert entries is not None and prev_exits is not None
    for j, ex in enumerate(prev_exits):
        _, bal, side = ex
        bal.out[side] = ("wire", j)
    return BitonicNetwork(
        width=width, balancers=tuple(balancers), entries=tuple(entries)
    )


def run_periodic_counting(
    graph: Graph,
    requests: Iterable[int],
    *,
    width: int | None = None,
    max_rounds: int = 50_000_000,
    delay_model: DelayModel | None = None,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
) -> CountingResult:
    """Distributed counting through an embedded periodic network.

    Same embedding and delay accounting as
    :func:`repro.counting.network.run_counting_network`.
    """
    from repro.core.verify import verify_counting
    from repro.sim import SynchronousNetwork

    n = graph.n
    if width is None:
        width = 1 << max(0, n.bit_length() - 1)
    net_struct = periodic_network(width)
    shared = _SharedState(graph, net_struct)
    req = tuple(sorted(set(requests)))
    req_set = set(req)
    nodes = {
        v: _CNetNode(v, requesting=(v in req_set), shared=shared)
        for v in graph.vertices()
    }
    net = SynchronousNetwork(
        graph,
        nodes,
        send_capacity=1,
        recv_capacity=1,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
    )
    net.run(max_rounds=max_rounds)
    counts = {v: int(c) for v, c in net.delays.result_by_op().items()}
    verify_counting(req, counts)
    return CountingResult(
        algorithm=f"periodic(w={width})",
        requests=req,
        counts=counts,
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )
