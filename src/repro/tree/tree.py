"""The RootedTree value type with O(log n) distance queries."""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence


class TreeError(ValueError):
    """Raised for malformed tree constructions."""


class RootedTree:
    """A rooted tree on vertices ``0 .. n-1``.

    Construction is from a parent mapping (``parent[root] == root``).  The
    class precomputes children lists, depths, and a binary-lifting table,
    giving ``lca``/``distance`` in O(log n) — distance queries dominate
    the nearest-neighbour TSP computation (Section 4 of the paper).

    Attributes:
        root: the root vertex.
        parent: tuple where ``parent[v]`` is v's parent (root maps to itself).
        depth: tuple of vertex depths (root is 0).
    """

    __slots__ = ("root", "parent", "depth", "children", "_up", "_log")

    def __init__(self, parent: Mapping[int, int] | Sequence[int], root: int | None = None):
        if isinstance(parent, Mapping):
            n = len(parent)
            par = [0] * n
            for v in range(n):
                if v not in parent:
                    raise TreeError(f"parent mapping misses vertex {v}")
                par[v] = parent[v]
        else:
            par = list(parent)
            n = len(par)
        if n == 0:
            raise TreeError("tree needs at least one vertex")

        roots = [v for v in range(n) if par[v] == v]
        if root is not None:
            if par[root] != root:
                raise TreeError(f"declared root {root} has parent {par[root]}")
        else:
            if len(roots) != 1:
                raise TreeError(f"expected exactly one root, found {roots}")
            root = roots[0]
        if len(roots) != 1:
            raise TreeError(f"expected exactly one self-parent, found {roots}")

        children: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            p = par[v]
            if not (0 <= p < n):
                raise TreeError(f"parent of {v} out of range: {p}")
            if v != root:
                children[p].append(v)

        # BFS from the root to compute depths and detect cycles /
        # disconnected components.
        depth = [-1] * n
        depth[root] = 0
        dq: deque[int] = deque([root])
        seen = 1
        while dq:
            u = dq.popleft()
            for c in children[u]:
                if depth[c] >= 0:
                    raise TreeError(f"vertex {c} reached twice: not a tree")
                depth[c] = depth[u] + 1
                seen += 1
                dq.append(c)
        if seen != n:
            raise TreeError("parent mapping is not a connected tree")

        self.root = root
        self.parent = tuple(par)
        self.depth = tuple(depth)
        self.children = tuple(tuple(sorted(c)) for c in children)

        # Binary lifting table: _up[k][v] = 2^k-th ancestor of v.
        log = max(1, (n - 1).bit_length())
        up = [list(self.parent)]
        for k in range(1, log):
            prev = up[k - 1]
            up.append([prev[prev[v]] for v in range(n)])
        self._up = up
        self._log = log

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.parent)

    @staticmethod
    def from_path(order: Sequence[int]) -> "RootedTree":
        """A path tree rooted at ``order[0]``, for Hamilton-path spanning trees."""
        n = len(order)
        par = list(range(n))
        for i in range(1, n):
            par[order[i]] = order[i - 1]
        return RootedTree(par, root=order[0])

    @staticmethod
    def from_edges(n: int, edges: Iterable[tuple[int, int]], root: int = 0) -> "RootedTree":
        """Root an undirected tree edge list at ``root``."""
        adj: list[list[int]] = [[] for _ in range(n)]
        cnt = 0
        for u, v in edges:
            adj[u].append(v)
            adj[v].append(u)
            cnt += 1
        if cnt != n - 1:
            raise TreeError(f"a tree on {n} vertices has {n - 1} edges, got {cnt}")
        par = list(range(n))
        seen = [False] * n
        seen[root] = True
        dq: deque[int] = deque([root])
        while dq:
            u = dq.popleft()
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    par[v] = u
                    dq.append(v)
        if not all(seen):
            raise TreeError("edge list is not connected")
        return RootedTree(par, root=root)

    def ancestor(self, v: int, k: int) -> int:
        """The k-th ancestor of ``v`` (clamped at the root)."""
        for bit in range(self._log):
            if k <= 0:
                break
            if k & (1 << bit):
                v = self._up[bit][v]
                k &= ~(1 << bit)
        return v

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        du, dv = self.depth[u], self.depth[v]
        if du < dv:
            u, v = v, u
            du, dv = dv, du
        u = self.ancestor(u, du - dv)
        if u == v:
            return u
        for k in range(self._log - 1, -1, -1):
            if self._up[k][u] != self._up[k][v]:
                u = self._up[k][u]
                v = self._up[k][v]
        return self.parent[u]

    def distance(self, u: int, v: int) -> int:
        """Hop distance between ``u`` and ``v`` along the tree."""
        a = self.lca(u, v)
        return self.depth[u] + self.depth[v] - 2 * self.depth[a]

    def path(self, u: int, v: int) -> list[int]:
        """The unique tree path from ``u`` to ``v``, inclusive."""
        a = self.lca(u, v)
        left = []
        x = u
        while x != a:
            left.append(x)
            x = self.parent[x]
        right = []
        x = v
        while x != a:
            right.append(x)
            x = self.parent[x]
        return left + [a] + right[::-1]

    def edges(self) -> list[tuple[int, int]]:
        """All tree edges as ``(parent, child)`` pairs."""
        return [(self.parent[v], v) for v in range(self.n) if v != self.root]

    def degree(self, v: int) -> int:
        """Degree of ``v`` in the (undirected) tree."""
        return len(self.children[v]) + (0 if v == self.root else 1)

    def max_degree(self) -> int:
        """Maximum undirected degree over all vertices."""
        return max(self.degree(v) for v in range(self.n))

    def height(self) -> int:
        """Depth of the deepest vertex."""
        return max(self.depth)

    def __repr__(self) -> str:
        return f"RootedTree(n={self.n}, root={self.root}, height={self.height()})"


def random_tree(
    n: int, seed: int = 0, max_children: int | None = None
) -> RootedTree:
    """A seeded random rooted tree on ``n`` vertices (uniform attachment).

    Vertex ``v`` attaches below a uniformly random earlier vertex; with
    ``max_children`` set, candidates are restricted so the tree degree
    stays bounded (the constant-degree instances of Corollary 4.2).

    Deterministic for a fixed ``(n, seed, max_children)``.
    """
    import random as _random

    if n < 1:
        raise TreeError("tree needs at least one vertex")
    rng = _random.Random(seed)
    parent = [0] * n
    child_count = [0] * n
    for v in range(1, n):
        candidates = (
            range(v)
            if max_children is None
            else [p for p in range(v) if child_count[p] < max_children]
        )
        if not isinstance(candidates, range) and not candidates:
            raise TreeError(
                f"cannot attach vertex {v} with max_children={max_children}"
            )
        p = rng.choice(candidates) if not isinstance(candidates, range) else rng.randrange(v)
        parent[v] = p
        child_count[p] += 1
    return RootedTree(parent)
