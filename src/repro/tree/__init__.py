"""Rooted-tree machinery shared by the arrow protocol, TSP, and counting.

A :class:`RootedTree` stores parents/children/depths and answers distance
queries via binary-lifting LCA — the tree metric that both the arrow
protocol analysis (Theorem 4.1) and the nearest-neighbour TSP bounds
(Section 4) are stated in.
"""

from repro.tree.tree import RootedTree, TreeError, random_tree
from repro.tree.traversal import euler_tour, dfs_preorder, leaves_of, subtree_sizes

__all__ = [
    "RootedTree",
    "TreeError",
    "random_tree",
    "euler_tour",
    "dfs_preorder",
    "leaves_of",
    "subtree_sizes",
]
