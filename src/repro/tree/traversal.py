"""Tree traversals used by the TSP analysis and the combining counter."""

from __future__ import annotations

from repro.tree.tree import RootedTree


def dfs_preorder(tree: RootedTree) -> list[int]:
    """Preorder vertex list (children visited in sorted order)."""
    order: list[int] = []
    stack = [tree.root]
    while stack:
        v = stack.pop()
        order.append(v)
        # reversed so the smallest child is visited first
        stack.extend(reversed(tree.children[v]))
    return order


def euler_tour(tree: RootedTree) -> list[int]:
    """The Euler tour (each edge traversed exactly twice, 2n-1 entries).

    The tour's total edge cost is ``2(n-1)`` — the classical doubled-tree
    bound that upper-bounds any TSP on the tree metric and anchors the
    "NN-TSP is O(n)" comparisons.
    """
    tour: list[int] = []
    # Frames are (vertex, next child index); a vertex is appended on first
    # entry and again each time control returns to its parent.
    stack: list[tuple[int, int]] = [(tree.root, 0)]
    while stack:
        v, ci = stack.pop()
        kids = tree.children[v]
        if ci == 0:
            tour.append(v)
        if ci < len(kids):
            stack.append((v, ci + 1))
            stack.append((kids[ci], 0))
        elif v != tree.root:
            tour.append(tree.parent[v])
    return tour


def leaves_of(tree: RootedTree) -> list[int]:
    """All leaves (vertices with no children), sorted."""
    return [v for v in range(tree.n) if not tree.children[v]]


def subtree_sizes(tree: RootedTree) -> list[int]:
    """``sizes[v]`` = number of vertices in the subtree rooted at ``v``."""
    sizes = [1] * tree.n
    # process vertices in decreasing depth so children are done first
    for v in sorted(range(tree.n), key=lambda x: -tree.depth[x]):
        if v != tree.root:
            sizes[tree.parent[v]] += sizes[v]
    return sizes
