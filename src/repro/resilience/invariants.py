"""Round-granular safety invariant monitors.

Each monitor watches one of the paper's exact safety properties *while
the run executes* and raises a structured
:class:`~repro.sim.errors.InvariantViolation` at the end of the first
round in which the property is observably broken — with the round, the
offending nodes, and (when the run is traced) a replayable trace window
attached.

Monitors attach through the engine's ``monitors=`` hook, composed by a
:class:`MonitorSet`; like the :mod:`repro.obs` hooks they are duck-typed
and cost exactly one ``is not None`` check per call site when disabled.
On healthy protocols an enabled monitor changes nothing observable:
traces, stats, and outputs stay byte-identical.

Node-state monitors (:class:`ArrowInvariant`, :class:`TokenInvariant`)
transparently look through adapter nodes (anything exposing ``inner``,
e.g. the reliable-delivery wrapper) to the protocol state underneath.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.sim.errors import InvariantViolation, StallDetected

#: Rounds of trace context attached before the violation round.
TRACE_CONTEXT_ROUNDS = 10


def _protocol_node(node: Any) -> Any:
    """The protocol node behind ``node``, unwrapping adapter layers."""
    seen = 0
    while hasattr(node, "inner") and seen < 8:
        node = node.inner
        seen += 1
    return node


class InvariantMonitor:
    """Base class: one named invariant checked against the live network.

    Subclasses override any subset of the three hooks.  ``on_round`` runs
    at the end of every executed round (round 0 included), ``on_complete``
    on every operation completion, ``on_finish`` once at quiescence.
    """

    #: Dotted invariant name carried by raised violations.
    name = "invariant"

    def on_round(self, net: Any) -> None:
        """End-of-round check against the live engine state."""

    def on_complete(self, net: Any, op_id: Hashable, result: Any, node_id: int) -> None:
        """Check one operation completion as it is recorded."""

    def on_finish(self, net: Any) -> None:
        """Whole-run check at quiescence."""

    def _violate(
        self, net: Any, detail: str, nodes: Iterable[int] = ()
    ) -> None:
        raise InvariantViolation(self.name, net.now, tuple(nodes), detail)


class CountingInvariant(InvariantMonitor):
    """Rank uniqueness and density for counting protocols.

    Safety (Theorem 3.5 setting): the ranks handed out must be exactly
    ``{1..|R|}``, each to one requester.  Checked incrementally:

    * **uniqueness** — at the completion that hands out a rank already
      issued (or a rank outside ``[1, expected]``), not post-hoc;
    * **density** — at quiescence the issued ranks must be the contiguous
      range ``{1..k}`` with no gaps.

    Works through any node wrapper because it only watches completion
    results, so it monitors fault-tolerant runs too.

    Args:
        expected: the number of requesters ``|R|``, bounding legal ranks;
            ``None`` skips the upper-bound and exact-density checks.
    """

    name = "counting.rank-uniqueness"

    def __init__(self, expected: int | None = None) -> None:
        self.expected = expected
        #: rank -> node that completed with it.
        self.issued: dict[int, int] = {}

    def on_complete(self, net: Any, op_id: Hashable, result: Any, node_id: int) -> None:
        if not isinstance(result, int):
            return  # queuing-style result: not a rank
        holder = self.issued.get(result)
        if holder is not None:
            self._violate(
                net,
                f"rank {result} issued twice (first to node {holder}, "
                f"again to node {node_id})",
                (holder, node_id),
            )
        if result < 1 or (self.expected is not None and result > self.expected):
            upper = "" if self.expected is None else f"..{self.expected}"
            self._violate(
                net, f"rank {result} outside the legal range 1{upper}", (node_id,)
            )
        self.issued[result] = node_id

    def on_finish(self, net: Any) -> None:
        if not self.issued:
            return
        want = self.expected if self.expected is not None else len(self.issued)
        missing = sorted(set(range(1, want + 1)) - set(self.issued))
        if missing:
            shown = ", ".join(map(str, missing[:8]))
            more = "..." if len(missing) > 8 else ""
            self._violate(
                net,
                f"issued ranks are not dense: missing [{shown}{more}] "
                f"out of 1..{want}",
                self.issued.values(),
            )


class ArrowInvariant(InvariantMonitor):
    """Arrow-pointer well-formedness and queue-order consistency.

    For the arrow/directory family (path reversal over a tree — Section 4
    / Demmer & Herlihy), two properties hold at the end of every round:

    * **pointer well-formedness** — every node's arrow points at itself
      or a graph neighbor, and the number of self-pointing nodes (local
      queue tails) is exactly ``1 + q`` where ``q`` is the number of
      in-flight ``queue`` messages: every find-predecessor message in
      transit accounts for exactly one extra parked tail;
    * **queue-order consistency** — merging every node's discovered
      predecessor links never makes two operations claim the same
      predecessor (that would fork the total order).

    The message-count identity is only sound when messages are exactly
    the protocol's (no retransmitted or enveloped copies), so under
    adapter-wrapped nodes the monitor checks the wrapper-independent
    parts: pointer targets, at least one sink, and predecessor-link
    consistency.

    Args:
        queue_kind: message kind carrying queue-find requests.
    """

    name = "arrow.single-sink"

    def __init__(self, queue_kind: str = "queue") -> None:
        self.queue_kind = queue_kind

    def _in_flight_queue_msgs(self, net: Any) -> int:
        links, outboxes = net._queued_messages()
        count = 0
        for q in links:
            for m in q:
                if m.kind == self.queue_kind:
                    count += 1
        for box in outboxes:
            for m in box:
                if m.kind == self.queue_kind:
                    count += 1
        return count

    def on_round(self, net: Any) -> None:
        sinks: list[int] = []
        wrapped = False
        preds: dict[Hashable, tuple[Hashable, int]] = {}
        for v in net.node_ids:
            raw = net.node(v)
            node = _protocol_node(raw)
            wrapped = wrapped or node is not raw
            link = getattr(node, "link", None)
            if link is None:
                continue  # non-arrow node (mixed networks)
            if link != v and link not in net.neighbor_set(v):
                self._violate(
                    net, f"node {v}'s arrow points at non-neighbor {link}", (v,)
                )
            if link == v:
                sinks.append(v)
            for op, pred in getattr(node, "pred_found", {}).items():
                if pred in preds and preds[pred][0] != op:
                    other_op, other_v = preds[pred]
                    self._violate(
                        net,
                        f"operations {op!r} (node {v}) and {other_op!r} "
                        f"(node {other_v}) both claim predecessor {pred!r} "
                        "— the total order forked",
                        (v, other_v),
                    )
                preds[pred] = (op, v)
        if not sinks:
            self._violate(net, "no node points at itself: the queue tail is lost")
        if not wrapped:
            q = self._in_flight_queue_msgs(net)
            if len(sinks) != 1 + q:
                self._violate(
                    net,
                    f"{len(sinks)} self-pointing nodes but {q} queue "
                    f"messages in flight (expected sinks = 1 + in-flight)",
                    sinks,
                )


class TokenInvariant(InvariantMonitor):
    """Token uniqueness for token-passing protocols (mutex, directory).

    At the end of every round, the number of nodes holding the token plus
    the number of token messages in flight must be exactly one — a token
    is never duplicated and never destroyed.

    Args:
        holder_attr: node attribute that is truthy while holding the
            token (``"has_token"`` for the mutex, ``"has_object"`` for
            the directory).
        token_kind: message kind that carries the token on the wire.
        name: invariant name for raised violations.
    """

    def __init__(
        self,
        holder_attr: str = "has_token",
        token_kind: str = "token",
        name: str = "mutex.token-uniqueness",
    ) -> None:
        self.holder_attr = holder_attr
        self.token_kind = token_kind
        self.name = name

    def on_round(self, net: Any) -> None:
        holders = [
            v
            for v in net.node_ids
            if getattr(_protocol_node(net.node(v)), self.holder_attr, False)
        ]
        links, outboxes = net._queued_messages()
        in_flight = sum(
            1 for q in links for m in q if m.kind == self.token_kind
        ) + sum(1 for box in outboxes for m in box if m.kind == self.token_kind)
        total = len(holders) + in_flight
        if total != 1:
            what = "duplicated" if total > 1 else "lost"
            self._violate(
                net,
                f"token {what}: {len(holders)} holders and {in_flight} "
                f"token messages in flight (must total 1)",
                holders,
            )


class MonitorSet:
    """Composes invariants, a watchdog, and a checkpointer for the engine.

    This is the object handed to ``SynchronousNetwork(monitors=...)``.
    Per round it runs, in order: the checkpointer (so the last checkpoint
    *before* a violation always exists), every invariant, then the
    watchdog.  When a check raises and the run is traced, the violation
    is stamped into the trace (``"violation"`` event) and a trace window
    ending at the violation round is attached to the exception.

    Args:
        invariants: :class:`InvariantMonitor` instances to run per round.
        watchdog: optional :class:`repro.resilience.Watchdog`.
        checkpointer: optional
            :class:`repro.resilience.PeriodicCheckpointer`.
        metrics: optional metrics registry; gains
            ``resilience.rounds_checked`` and ``resilience.violations``
            counters.
    """

    def __init__(
        self,
        invariants: Iterable[InvariantMonitor] = (),
        watchdog: Any | None = None,
        checkpointer: Any | None = None,
        metrics: Any | None = None,
    ) -> None:
        self.invariants = tuple(invariants)
        self.watchdog = watchdog
        self.checkpointer = checkpointer
        self.metrics = metrics

    # ------------------------------------------------------- engine hooks

    def on_round(self, net: Any) -> None:
        if self.checkpointer is not None:
            self.checkpointer.on_round(net)
        if self.metrics is not None:
            self.metrics.inc("resilience.rounds_checked")
        try:
            for inv in self.invariants:
                inv.on_round(net)
            if self.watchdog is not None:
                self.watchdog.on_round(net)
        except (InvariantViolation, StallDetected) as exc:
            self._stamp(net, exc)
            raise

    def on_complete(self, net: Any, op_id: Hashable, result: Any, node_id: int) -> None:
        try:
            for inv in self.invariants:
                inv.on_complete(net, op_id, result, node_id)
        except InvariantViolation as exc:
            self._stamp(net, exc)
            raise

    def on_finish(self, net: Any) -> None:
        try:
            for inv in self.invariants:
                inv.on_finish(net)
            if self.watchdog is not None:
                self.watchdog.on_finish(net)
        except (InvariantViolation, StallDetected) as exc:
            self._stamp(net, exc)
            raise

    # ---------------------------------------------------------- internals

    def _stamp(self, net: Any, exc: Exception) -> None:
        """Attach trace evidence to a violation and record it."""
        if self.metrics is not None:
            self.metrics.inc("resilience.violations")
        if net.trace is not None:
            net.trace.record(
                "violation",
                net.now,
                invariant=getattr(exc, "invariant", getattr(exc, "kind", "?")),
                detail=str(exc),
            )
            if getattr(exc, "trace_slice", None) is None and hasattr(
                exc, "trace_slice"
            ):
                exc.trace_slice = net.trace.slice(
                    max(0, net.now - TRACE_CONTEXT_ROUNDS), net.now
                )

    def last_checkpoint_before(self, round_: int):
        """The newest stored checkpoint strictly before ``round_``.

        The deterministic-replay entry point: after a violation at round
        ``r``, ``last_checkpoint_before(r)`` is the state to restore and
        resume to step through the failure again.
        """
        if self.checkpointer is None:
            return None
        return self.checkpointer.before(round_)


__all__ = [
    "ArrowInvariant",
    "CountingInvariant",
    "InvariantMonitor",
    "MonitorSet",
    "TokenInvariant",
    "TRACE_CONTEXT_ROUNDS",
]
