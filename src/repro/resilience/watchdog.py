"""Liveness diagnosis: deadlock, livelock, and stalled-progress detection.

A bare :class:`~repro.sim.errors.RoundLimitExceeded` says a run did not
finish; it does not say *why*.  The :class:`Watchdog` watches the
engine's progress signals at the end of every executed round and raises
a :class:`~repro.sim.errors.StallDetected` carrying a diagnosis instead:

* **stall** — messages are in flight or wakeups are pending, but nothing
  was delivered for a full window of executed rounds;
* **livelock** — messages keep moving (retransmits, gossip churn) but no
  operation completed for a much longer window;
* **deadlock** — the network quiesced (nothing in flight, no wakeups)
  with requesters still incomplete.  Detected instantly at quiescence,
  not after a round budget expires.

The watchdog is crash-aware: rounds in which the fault plan has a node
down do not count against the windows — scheduled unavailability is not
a hang.  Retry-budget state is scanned off reliable-adapter nodes
(anything with ``pending``/``policy``) and attached to the diagnosis.
"""

from __future__ import annotations

from typing import Any

from repro.sim.errors import StallDetected


class Watchdog:
    """Progress monitor for one run (attach via :class:`MonitorSet`).

    Args:
        stall_window: executed rounds without any delivery before a
            ``"stall"`` diagnosis.
        livelock_window: executed rounds without any completion (while
            messages still move) before a ``"livelock"`` diagnosis.
            Contention-bound protocols legitimately go Theta(n^2) rounds
            between completions — size this from the instance, not from
            impatience.
        expected_completions: total operations the run must complete;
            enables the instant deadlock diagnosis at quiescence.
            ``None`` disables it (quiescence is then trusted).
    """

    def __init__(
        self,
        stall_window: int = 1_000,
        livelock_window: int = 50_000,
        expected_completions: int | None = None,
    ) -> None:
        if stall_window < 1 or livelock_window < 1:
            raise ValueError("watchdog windows must be >= 1 round")
        self.stall_window = stall_window
        self.livelock_window = livelock_window
        self.expected_completions = expected_completions
        self._last_delivery_mark = 0
        self._last_completion_mark = 0
        self._seen_delivered = -1
        self._seen_completed = -1
        #: executed-round counter mirrored from the engine (idle jumps
        #: skip model rounds; the watchdog counts rounds actually run).
        self._checked = 0

    # ------------------------------------------------------- engine hooks

    def on_round(self, net: Any) -> None:
        self._checked += 1
        inj = net._injector
        if inj is not None and any(
            inj.crashed(v, net.now)
            and inj.recovery_round(v, net.now) is not None
            for v in net._adj
        ):
            # A node is down by schedule but will recover: progress cannot
            # be demanded of this round.  Push both marks so the windows
            # restart at recovery.  Permanent crashes deliberately do NOT
            # pause the clock — a run hung on a node that never comes back
            # is exactly what the watchdog exists to diagnose.
            self._last_delivery_mark = self._checked
            self._last_completion_mark = self._checked
            return
        delivered = net.stats.messages_delivered
        completed = len(net.delays)
        if delivered != self._seen_delivered:
            self._seen_delivered = delivered
            self._last_delivery_mark = self._checked
        if completed != self._seen_completed:
            self._seen_completed = completed
            self._last_completion_mark = self._checked
        done = (
            self.expected_completions is not None
            and completed >= self.expected_completions
        )
        if done:
            return  # all operations answered; the tail is just drainage
        if self._checked - self._last_delivery_mark >= self.stall_window:
            self._diagnose(net, "stall", self._checked - self._last_delivery_mark)
        if self._checked - self._last_completion_mark >= self.livelock_window:
            self._diagnose(
                net, "livelock", self._checked - self._last_completion_mark
            )

    def on_finish(self, net: Any) -> None:
        """Quiescence reached: diagnose a deadlock if requesters remain."""
        if self.expected_completions is None:
            return
        completed = len(net.delays)
        if completed < self.expected_completions:
            self._diagnose(net, "deadlock", 0)

    # ---------------------------------------------------------- diagnosis

    def _diagnose(self, net: Any, kind: str, window: int) -> None:
        raise StallDetected(
            kind,
            net.now,
            window,
            pending_nodes=net._pending_nodes(),
            oldest=net._oldest_undelivered(),
            retry_state=self._retry_state(net),
            in_flight=net._in_flight,
            wakeups_pending=sum(len(due) for due in net._wakeups.values()),
        )

    @staticmethod
    def _retry_state(net: Any) -> dict[int, tuple[int, int]]:
        """Per-node ``(pending_envelopes, max_attempts)`` retry summaries."""
        state: dict[int, tuple[int, int]] = {}
        for v in net.node_ids:
            node = net.node(v)
            pending = getattr(node, "pending", None)
            if pending is None or not hasattr(node, "policy"):
                continue
            if pending:
                state[v] = (
                    len(pending),
                    max(p.attempts for p in pending.values()),
                )
        return state


__all__ = ["Watchdog"]
