"""Checkpoint/restore for the synchronous engine.

A :class:`Checkpoint` captures the *complete* state of a run at a round
boundary — engine queues and clocks, every protocol node, the fault
injector's RNG streams, the trace and metrics objects — as one deep
copy.  Because the engine is deterministic, a restored network resumed
with :meth:`SynchronousNetwork.resume` finishes byte-identically to the
original: same trace events, same stats, same completion order.  That is
what makes "replay deterministically from the last checkpoint before the
violation" a one-liner in the chaos workflow.

:class:`PeriodicCheckpointer` takes checkpoints on a round cadence from
inside a :class:`~repro.resilience.MonitorSet` (it runs *before* the
invariant checks, so when a check raises, the newest stored checkpoint
is from before the violation).

Disk artifacts use :mod:`pickle`: every in-repo protocol node is a
module-level class and pickles cleanly; ad-hoc nodes defined inside test
functions can be checkpointed in memory but not saved.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any, BinaryIO


class Checkpoint:
    """One frozen mid-run snapshot of a network.

    Build with :meth:`capture`; get a runnable copy back with
    :meth:`restore`.  The snapshot itself is never mutated, so one
    checkpoint can be restored (and resumed) any number of times — each
    restore yields an independent network.

    Attributes:
        round: the model-clock round at capture time.
        rounds_executed: engine rounds actually run up to capture.
    """

    __slots__ = ("round", "rounds_executed", "_net")

    def __init__(self, round_: int, rounds_executed: int, net: Any) -> None:
        self.round = round_
        self.rounds_executed = rounds_executed
        self._net = net

    @classmethod
    def capture(cls, net: Any) -> "Checkpoint":
        """Snapshot ``net`` at the current round boundary.

        The deep copy spans the full object graph — nodes, contexts,
        queues, injector RNGs, trace, monitors — with shared references
        (e.g. a node's back-pointer into the engine) preserved as shared
        references inside the copy.
        """
        return cls(net.now, net.rounds_executed, copy.deepcopy(net))

    def restore(self) -> Any:
        """A fresh, runnable network equal to the captured state.

        Returns a *copy* of the stored snapshot, so restoring is
        repeatable; continue it with ``restored.resume(max_rounds)``.
        """
        return copy.deepcopy(self._net)

    # ----------------------------------------------------------- artifacts

    def save(self, path_or_file: str | BinaryIO) -> None:
        """Pickle this checkpoint to ``path_or_file``."""
        if hasattr(path_or_file, "write"):
            pickle.dump(self, path_or_file)
        else:
            with open(path_or_file, "wb") as fh:
                pickle.dump(self, fh)

    @classmethod
    def load(cls, path_or_file: str | BinaryIO) -> "Checkpoint":
        """Load a checkpoint pickled by :meth:`save`."""
        if hasattr(path_or_file, "read"):
            obj = pickle.load(path_or_file)
        else:
            with open(path_or_file, "rb") as fh:
                obj = pickle.load(fh)
        if not isinstance(obj, cls):
            raise TypeError(f"not a checkpoint artifact: {type(obj).__name__}")
        return obj


class PeriodicCheckpointer:
    """Takes a checkpoint every ``every`` model rounds, keeping the last few.

    Attach through ``MonitorSet(checkpointer=...)``.  Within the monitor
    hook order the checkpointer runs first, so the newest retained
    checkpoint always predates any violation raised in the same round.

    Args:
        every: model-round cadence between checkpoints (round 0 is always
            captured).
        keep: retained checkpoints; older ones are discarded FIFO.
    """

    def __init__(self, every: int = 100, keep: int = 3) -> None:
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        if keep < 1:
            raise ValueError(f"must keep >= 1 checkpoints, got {keep}")
        self.every = every
        self.keep = keep
        self.checkpoints: list[Checkpoint] = []
        self._next = 0

    def on_round(self, net: Any) -> None:
        if net.now < self._next:
            return
        self.checkpoints.append(Checkpoint.capture(net))
        if len(self.checkpoints) > self.keep:
            del self.checkpoints[0]
        # Idle jumps can skip far past the cadence; schedule from now.
        self._next = net.now + self.every

    def latest(self) -> Checkpoint | None:
        """The newest retained checkpoint, or ``None``."""
        return self.checkpoints[-1] if self.checkpoints else None

    def before(self, round_: int) -> Checkpoint | None:
        """The newest retained checkpoint strictly before ``round_``."""
        for cp in reversed(self.checkpoints):
            if cp.round < round_:
                return cp
        return None

    def __deepcopy__(self, memo: dict) -> "PeriodicCheckpointer":
        # A checkpoint deep-copies the network, and the network holds the
        # monitors holding this checkpointer: without this hook every
        # snapshot would recursively re-copy all previous snapshots.  The
        # copy that lives *inside* a checkpoint starts with no history.
        clone = PeriodicCheckpointer(self.every, self.keep)
        clone._next = self._next
        memo[id(self)] = clone
        return clone


__all__ = ["Checkpoint", "PeriodicCheckpointer"]
