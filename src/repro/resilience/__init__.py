"""Runtime resilience: invariant monitors, watchdog, checkpoints, chaos.

The paper's guarantees are exact safety properties — counting must issue
the ranks ``{1..|R|}`` exactly once each, queuing must weave one total
order through predecessor links, a mutex token must exist exactly once —
yet post-hoc verification only reports *that* a run went wrong, not
*when* or *where*.  This package makes fault runs provably safe while
they execute and reproducible when they fail:

* :mod:`repro.resilience.invariants` — round-granular safety monitors
  plugged into the engine's ``monitors=`` hook (the same
  zero-cost-when-disabled pattern as :mod:`repro.obs`), raising a
  structured :class:`~repro.sim.errors.InvariantViolation` at the end of
  the offending round;
* :mod:`repro.resilience.watchdog` — liveness diagnosis: deadlock,
  livelock, and stalled-progress detection with the evidence attached
  (:class:`~repro.sim.errors.StallDetected`);
* :mod:`repro.resilience.checkpoint` — full engine+node+fault-RNG
  snapshots at round boundaries; a restored network resumes
  byte-identically, enabling deterministic replay from the last
  checkpoint before a violation;
* :mod:`repro.resilience.chaos` — a seeded chaos-search harness
  (``repro chaos``) sweeping fault plans over protocol x topology cells,
  shrinking failures to minimal reproducers, and emitting replayable
  JSON artifacts.

See ``docs/RESILIENCE.md`` for the workflow.
"""

from repro.resilience.chaos import (
    ChaosCell,
    ChaosFinding,
    ChaosReport,
    chaos_search,
    load_artifact,
    random_plan,
    replay_artifact,
    run_cell,
    save_artifact,
    shrink_plan,
)
from repro.resilience.checkpoint import Checkpoint, PeriodicCheckpointer
from repro.resilience.invariants import (
    ArrowInvariant,
    CountingInvariant,
    InvariantMonitor,
    MonitorSet,
    TokenInvariant,
)
from repro.resilience.watchdog import Watchdog

__all__ = [
    "ArrowInvariant",
    "ChaosCell",
    "ChaosFinding",
    "ChaosReport",
    "Checkpoint",
    "CountingInvariant",
    "InvariantMonitor",
    "MonitorSet",
    "PeriodicCheckpointer",
    "TokenInvariant",
    "Watchdog",
    "chaos_search",
    "load_artifact",
    "random_plan",
    "replay_artifact",
    "run_cell",
    "save_artifact",
    "shrink_plan",
]
