"""Chaos search: sweep seeded fault plans, shrink failures, replay them.

The harness behind ``repro chaos``.  It sweeps deterministically seeded
:class:`~repro.faults.FaultPlan`\\ s over *cells* — (protocol, topology,
size) triples — running each cell under full monitoring (safety
invariants + watchdog), classifies every failure, *shrinks* failing
plans to minimal reproducers by greedy delta-debugging, and emits them
as replayable JSON artifacts.

Everything is deterministic: a cell x plan pair always produces the same
outcome, so a saved artifact replays to the same failure kind at the
same round on any machine — that equality is what ``repro chaos
--replay`` asserts.

Guarantee being searched: under an *eventually-delivering* plan every
monitored protocol must complete and verify.  A failure on such a plan
is a bug (CI runs in exactly this mode); failures on plans with
permanent crashes are expected diagnoses (retry exhaustion) and are
useful as shrink/replay fixtures.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.plan import FaultPlan, LinkOutage, NodeCrash
from repro.resilience.invariants import (
    ArrowInvariant,
    CountingInvariant,
    MonitorSet,
)
from repro.resilience.watchdog import Watchdog
from repro.sim.errors import (
    InvariantViolation,
    RoundLimitExceeded,
    StallDetected,
)

#: Artifact schema tag (bump on incompatible layout changes).
ARTIFACT_SCHEMA = "repro.chaos/1"

#: Default cap on model rounds per chaos run — chaos must terminate fast.
DEFAULT_MAX_ROUNDS = 20_000


@dataclass(frozen=True)
class ChaosCell:
    """One protocol x topology x size cell of the chaos matrix."""

    protocol: str
    topology: str
    n: int

    def key(self) -> str:
        """The CLI spelling, ``protocol:topology:n``."""
        return f"{self.protocol}:{self.topology}:{self.n}"

    @classmethod
    def parse(cls, spec: str) -> "ChaosCell":
        """Parse ``protocol:topology:n`` (the ``--cells`` grammar)."""
        try:
            protocol, topology, n_s = spec.split(":")
            cell = cls(protocol, topology, int(n_s))
        except ValueError:
            raise ValueError(
                f"malformed cell spec {spec!r}; want protocol:topology:n"
            ) from None
        if cell.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {cell.protocol!r}; "
                f"known: {sorted(PROTOCOLS)}"
            )
        if cell.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {cell.topology!r}; "
                f"known: {sorted(TOPOLOGIES)}"
            )
        if cell.n < 2:
            raise ValueError(f"cell size must be >= 2, got {cell.n}")
        return cell

    def graph(self):
        """Build this cell's communication graph."""
        return TOPOLOGIES[self.topology](self.n)


def _run_arrow_cell(cell: ChaosCell, plan: FaultPlan, max_rounds: int) -> None:
    from repro.faults.runners import run_arrow_ft
    from repro.topology import bfs_spanning_tree, path_spanning_tree

    graph = cell.graph()
    spanning = (
        path_spanning_tree(graph)
        if cell.topology == "path"
        else bfs_spanning_tree(graph)
    )
    monitors = MonitorSet(
        invariants=(ArrowInvariant(),),
        watchdog=Watchdog(
            stall_window=500,
            livelock_window=5_000,
            expected_completions=cell.n,
        ),
    )
    res = run_arrow_ft(
        spanning, range(cell.n), plan, max_rounds=max_rounds, monitors=monitors
    )
    res.order()  # raises if the predecessor links do not chain


def _run_counting_cell(runner: Callable) -> Callable:
    def run(cell: ChaosCell, plan: FaultPlan, max_rounds: int) -> None:
        monitors = MonitorSet(
            invariants=(CountingInvariant(expected=cell.n),),
            watchdog=Watchdog(
                stall_window=500,
                livelock_window=5_000,
                expected_completions=cell.n,
            ),
        )
        runner(
            cell.graph(),
            range(cell.n),
            plan,
            max_rounds=max_rounds,
            monitors=monitors,
        )

    return run


def _protocols() -> dict[str, Callable[[ChaosCell, FaultPlan, int], None]]:
    from repro.faults.runners import (
        run_central_counting_ft,
        run_flood_counting_ft,
    )

    return {
        "arrow_ft": _run_arrow_cell,
        "central_ft": _run_counting_cell(run_central_counting_ft),
        "flood_ft": _run_counting_cell(run_flood_counting_ft),
    }


class _Lazy(dict):
    """Registry resolved on first use (avoids import cycles at load)."""

    def __init__(self, build: Callable[[], dict]) -> None:
        super().__init__()
        self._build = build
        self._loaded = False

    def _ensure(self) -> None:
        if not self._loaded:
            self._loaded = True
            self.update(self._build())

    def __missing__(self, key):
        self._ensure()
        if key in self:
            return self[key]
        raise KeyError(key)

    def __contains__(self, key) -> bool:
        self._ensure()
        return dict.__contains__(self, key)

    def __iter__(self):
        self._ensure()
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._ensure()
        return dict.__len__(self)


def _topologies() -> dict[str, Callable[[int], Any]]:
    from repro.topology import (
        complete_graph,
        path_graph,
        ring_graph,
        star_graph,
    )

    return {
        "path": path_graph,
        "ring": ring_graph,
        "star": star_graph,
        "complete": complete_graph,
    }


#: protocol name -> cell runner (raises on failure, returns on success).
PROTOCOLS: dict[str, Callable] = _Lazy(_protocols)
#: topology name -> graph builder.
TOPOLOGIES: dict[str, Callable] = _Lazy(_topologies)


# --------------------------------------------------------------- running


def _classify(exc: Exception) -> tuple[str, int | None]:
    """(failure kind, round) for one caught run failure."""
    from repro.faults.reliable import RetryBudgetExceeded

    if isinstance(exc, InvariantViolation):
        return f"invariant:{exc.invariant}", exc.round
    if isinstance(exc, StallDetected):
        return f"stall:{exc.kind}", exc.round
    if isinstance(exc, RetryBudgetExceeded):
        return "retry-exhausted", getattr(exc, "round", None)
    if isinstance(exc, RoundLimitExceeded):
        return "round-limit", exc.max_rounds
    if isinstance(exc, (AssertionError, ValueError)):
        return "verify", None
    raise exc  # not a modeled failure: propagate (it is a harness bug)


def run_cell(
    cell: ChaosCell, plan: FaultPlan, *, max_rounds: int = DEFAULT_MAX_ROUNDS
) -> dict[str, Any]:
    """Run one cell under one plan with full monitoring.

    Returns ``{"status": "ok"}`` or ``{"status": "fail", "kind": ...,
    "round": ..., "error": ...}``.  Deterministic: the same (cell, plan)
    always yields the same outcome.
    """
    runner = PROTOCOLS[cell.protocol]
    try:
        runner(cell, plan, max_rounds)
    except Exception as exc:  # noqa: BLE001 - classified, unknowns re-raised
        kind, round_ = _classify(exc)
        return {
            "status": "fail",
            "kind": kind,
            "round": round_,
            "error": str(exc),
        }
    return {"status": "ok"}


def random_plan(
    rng: random.Random, cell: ChaosCell, *, allow_permanent: bool = False
) -> FaultPlan:
    """One seeded random fault plan sized to ``cell``.

    Draws drop/duplicate rates, a consecutive-drop bound, and up to two
    crash windows and two link outages over the cell's real edges.  With
    ``allow_permanent=False`` (the CI default) every window is finite, so
    the plan is eventually delivering and any failure is a bug.
    """
    n = cell.n
    drop = rng.choice([0.0, 0.1, 0.2, 0.3])
    dup = rng.choice([0.0, 0.05, 0.1])
    runs = rng.randint(1, 3)
    crashes = []
    for _ in range(rng.randint(0, 2)):
        start = rng.randrange(0, 25)
        end: int | None = start + rng.randint(1, 12)
        if allow_permanent and rng.random() < 0.25:
            end = None
        crashes.append(NodeCrash(node=rng.randrange(n), start=start, end=end))
    edges = sorted(
        {(min(u, v), max(u, v)) for u, nbrs in cell.graph().adj.items() for v in nbrs}
    )
    outages = []
    for _ in range(rng.randint(0, 2)):
        u, v = edges[rng.randrange(len(edges))]
        start = rng.randrange(0, 25)
        outages.append(LinkOutage(u=u, v=v, start=start, end=start + rng.randint(1, 10)))
    plan = FaultPlan(
        seed=rng.randrange(2**31),
        drop_rate=drop,
        duplicate_rate=dup,
        max_consecutive_drops=runs,
        outages=tuple(outages),
        crashes=tuple(crashes),
    )
    if plan.is_empty():
        plan = FaultPlan(seed=plan.seed, drop_rate=0.1, max_consecutive_drops=runs)
    return plan


# -------------------------------------------------------------- shrinking


def shrink_plan(
    cell: ChaosCell,
    plan: FaultPlan,
    kind: str,
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> FaultPlan:
    """Greedy delta-debugging: the smallest plan still failing like ``kind``.

    Tries, to fixpoint: dropping each crash and each outage, zeroing the
    duplicate then the drop rate, and halving crash/outage windows.  A
    candidate is accepted when the cell still fails with the *same
    failure kind* (the round may move while shrinking; the final plan's
    round is re-pinned by the caller's artifact).
    """

    def still_fails(candidate: FaultPlan) -> bool:
        out = run_cell(cell, candidate, max_rounds=max_rounds)
        return out["status"] == "fail" and out["kind"] == kind

    current = plan
    changed = True
    while changed:
        changed = False
        for i in range(len(current.crashes)):
            candidate = _replace(
                current,
                crashes=current.crashes[:i] + current.crashes[i + 1 :],
            )
            if still_fails(candidate):
                current, changed = candidate, True
                break
        if changed:
            continue
        for i in range(len(current.outages)):
            candidate = _replace(
                current,
                outages=current.outages[:i] + current.outages[i + 1 :],
            )
            if still_fails(candidate):
                current, changed = candidate, True
                break
        if changed:
            continue
        if current.duplicate_rate > 0.0:
            candidate = _replace(current, duplicate_rate=0.0)
            if still_fails(candidate):
                current, changed = candidate, True
                continue
        if current.drop_rate > 0.0:
            candidate = _replace(current, drop_rate=0.0)
            if still_fails(candidate):
                current, changed = candidate, True
                continue
        for i, c in enumerate(current.crashes):
            if c.end is None or c.end - c.start <= 1:
                continue
            shorter = NodeCrash(c.node, c.start, c.start + (c.end - c.start) // 2)
            candidate = _replace(
                current,
                crashes=current.crashes[:i] + (shorter,) + current.crashes[i + 1 :],
            )
            if still_fails(candidate):
                current, changed = candidate, True
                break
        if changed:
            continue
        for i, o in enumerate(current.outages):
            if o.end - o.start <= 1:
                continue
            shorter = LinkOutage(o.u, o.v, o.start, o.start + (o.end - o.start) // 2)
            candidate = _replace(
                current,
                outages=current.outages[:i] + (shorter,) + current.outages[i + 1 :],
            )
            if still_fails(candidate):
                current, changed = candidate, True
                break
    return current


def _replace(plan: FaultPlan, **kwargs: Any) -> FaultPlan:
    from dataclasses import replace

    return replace(plan, **kwargs)


# -------------------------------------------------------------- artifacts


def save_artifact(
    path: str, cell: ChaosCell, plan: FaultPlan, failure: dict[str, Any]
) -> None:
    """Write one replayable reproducer artifact as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "schema": ARTIFACT_SCHEMA,
                "cell": {
                    "protocol": cell.protocol,
                    "topology": cell.topology,
                    "n": cell.n,
                },
                "plan": plan.to_dict(),
                "failure": failure,
            },
            fh,
            indent=2,
        )
        fh.write("\n")


def load_artifact(path: str) -> tuple[ChaosCell, FaultPlan, dict[str, Any]]:
    """Read an artifact written by :func:`save_artifact`."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"unsupported artifact schema {data.get('schema')!r} in {path}"
        )
    cell = ChaosCell(**data["cell"])
    return cell, FaultPlan.from_dict(data["plan"]), data["failure"]


def replay_artifact(
    cell: ChaosCell,
    plan: FaultPlan,
    failure: dict[str, Any],
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> tuple[bool, dict[str, Any]]:
    """Re-run an artifact and check it fails identically.

    Returns ``(reproduced, observed_outcome)`` where ``reproduced`` means
    the same failure kind at the same round as recorded.
    """
    observed = run_cell(cell, plan, max_rounds=max_rounds)
    reproduced = (
        observed["status"] == "fail"
        and observed["kind"] == failure["kind"]
        and observed.get("round") == failure.get("round")
    )
    return reproduced, observed


# ----------------------------------------------------------------- search


@dataclass
class ChaosFinding:
    """One failing (cell, plan) discovered by :func:`chaos_search`."""

    cell: ChaosCell
    plan: FaultPlan
    failure: dict[str, Any]
    shrunk_plan: FaultPlan | None = None
    shrunk_failure: dict[str, Any] | None = None

    @property
    def final_plan(self) -> FaultPlan:
        """The minimal reproducer when shrunk, the original otherwise."""
        return self.shrunk_plan if self.shrunk_plan is not None else self.plan

    @property
    def final_failure(self) -> dict[str, Any]:
        return (
            self.shrunk_failure
            if self.shrunk_failure is not None
            else self.failure
        )


@dataclass
class ChaosReport:
    """Aggregate outcome of one :func:`chaos_search` sweep."""

    runs: int = 0
    findings: list[ChaosFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def chaos_search(
    cells: list[ChaosCell],
    seeds: range,
    *,
    allow_permanent: bool = False,
    shrink: bool = True,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Sweep seeded plans over ``cells``; shrink and report failures.

    One plan is derived per (cell, seed) from a string-seeded RNG, so a
    sweep is reproducible independent of ``PYTHONHASHSEED``.  Each
    failure is optionally shrunk to a minimal reproducer and re-run once
    to pin its final (kind, round) into the finding.
    """
    report = ChaosReport()
    for cell in cells:
        for seed in seeds:
            rng = random.Random(f"chaos:{cell.key()}:{seed}")
            plan = random_plan(rng, cell, allow_permanent=allow_permanent)
            outcome = run_cell(cell, plan, max_rounds=max_rounds)
            report.runs += 1
            if outcome["status"] == "ok":
                continue
            if progress is not None:
                progress(
                    f"{cell.key()} seed {seed}: {outcome['kind']} "
                    f"({plan.describe()})"
                )
            finding = ChaosFinding(cell=cell, plan=plan, failure=outcome)
            if shrink:
                shrunk = shrink_plan(
                    cell, plan, outcome["kind"], max_rounds=max_rounds
                )
                finding.shrunk_plan = shrunk
                finding.shrunk_failure = run_cell(
                    cell, shrunk, max_rounds=max_rounds
                )
                if progress is not None:
                    progress(
                        f"  shrunk to: {shrunk.describe()} -> "
                        f"{finding.shrunk_failure.get('kind')}"
                    )
            report.findings.append(finding)
    return report


__all__ = [
    "ARTIFACT_SCHEMA",
    "ChaosCell",
    "ChaosFinding",
    "ChaosReport",
    "DEFAULT_MAX_ROUNDS",
    "PROTOCOLS",
    "TOPOLOGIES",
    "chaos_search",
    "load_artifact",
    "random_plan",
    "replay_artifact",
    "run_cell",
    "save_artifact",
    "shrink_plan",
]
