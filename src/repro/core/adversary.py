"""Adversarial request-set search: approximating the max over R.

The paper's complexities are worst cases over all request sets.  On tiny
graphs `exhaustive_request_sets` enumerates them; this module scales the
search to realistic sizes with a deterministic local search — start from
structured candidates, then climb by single-vertex flips — giving a
certified *lower bound* on the worst case (the true maximum can only be
higher).

Used by the adversarial-search example and by tests that check the
structured scenarios (all-nodes, far-half, alternating) are not beaten
by anything the search can find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.request import scenario_suite
from repro.topology.base import Graph


@dataclass(frozen=True)
class AdversarySearchResult:
    """Outcome of one search.

    Attributes:
        best_requests: the costliest request set found.
        best_total: its measured total delay.
        evaluations: how many candidate sets were run.
        improved_over_seeds: whether hill-climbing beat every structured
            starting point (if False, a structured scenario was already
            locally optimal).
    """

    best_requests: tuple[int, ...]
    best_total: int
    evaluations: int
    improved_over_seeds: bool


def adversarial_search(
    graph: Graph,
    cost: Callable[[list[int]], int],
    *,
    seeds: Iterable[list[int]] | None = None,
    max_evaluations: int = 400,
) -> AdversarySearchResult:
    """Local-search for a costly request set.

    Args:
        graph: the communication graph (defines the flip neighborhood).
        cost: maps a request set to the measured total delay (typically a
            closure over a protocol runner).
        seeds: starting request sets; defaults to the standard scenario
            suite evaluated on ``graph``.
        max_evaluations: budget on ``cost`` calls.

    Returns:
        The best set found.  Deterministic: flips are explored in vertex
        order and the first improving flip is taken (greedy ascent).
    """
    if seeds is None:
        seeds = [s(graph) for s in scenario_suite()]
    seeds = [sorted(set(s)) for s in seeds if s]

    evaluations = 0

    def measure(req: list[int]) -> int:
        nonlocal evaluations
        evaluations += 1
        return cost(req)

    best_req: list[int] = []
    best_total = -1
    seed_best = -1
    for seed in seeds:
        if evaluations >= max_evaluations:
            break
        total = measure(seed)
        seed_best = max(seed_best, total)
        if total > best_total:
            best_total, best_req = total, list(seed)

    # Greedy single-vertex flips from the best seed.
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        current = set(best_req)
        for v in graph.vertices():
            if evaluations >= max_evaluations:
                break
            flipped = sorted(current ^ {v})
            if not flipped:
                continue
            total = measure(flipped)
            if total > best_total:
                best_total = total
                best_req = flipped
                improved = True
                break

    return AdversarySearchResult(
        best_requests=tuple(best_req),
        best_total=best_total,
        evaluations=evaluations,
        improved_over_seeds=best_total > seed_best,
    )
