"""Problem definitions, request-set scenarios, verification, comparison.

The paper's two problems (Section 2.2):

* **counting** — requesters receive the exact ranks ``1..|R|``;
* **queuing** — requesters receive their predecessor's identity, forming
  a single chain over R.

This package defines the result types all algorithm runners return, the
validators that every run is checked against, the adversarial request-set
generators, and the counting-vs-queuing comparison harness that produces
the paper's headline tables.
"""

from repro.core.problem import CountingResult, QueuingResult
from repro.core.request import (
    RequestScenario,
    all_nodes,
    random_subset,
    far_half,
    alternating,
    single_node,
    scenario_suite,
)
from repro.core.verify import (
    VerificationError,
    verify_counting,
    verify_queuing,
    verify_total_order_consistency,
)
from repro.core.adversary import AdversarySearchResult, adversarial_search
from repro.core.comparison import ComparisonRow, compare_on_graph, growth_exponent

__all__ = [
    "CountingResult",
    "QueuingResult",
    "RequestScenario",
    "all_nodes",
    "random_subset",
    "far_half",
    "alternating",
    "single_node",
    "scenario_suite",
    "VerificationError",
    "verify_counting",
    "verify_queuing",
    "verify_total_order_consistency",
    "ComparisonRow",
    "compare_on_graph",
    "growth_exponent",
    "AdversarySearchResult",
    "adversarial_search",
]
