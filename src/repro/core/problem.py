"""Result types for counting and queuing runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.sim import RunStats


@dataclass(frozen=True)
class CountingResult:
    """Outcome of a one-shot concurrent counting execution.

    Attributes:
        algorithm: short name of the counting algorithm.
        requests: the requesting vertices, sorted.
        counts: vertex -> rank received (must be exactly ``1..len(requests)``).
        delays: vertex -> round in which the rank arrived back at the
            requester — the paper's counting delay ``l_C``.
        stats: engine accounting for the run.
    """

    algorithm: str
    requests: tuple[int, ...]
    counts: dict[int, int]
    delays: dict[int, int]
    stats: RunStats

    @property
    def total_delay(self) -> int:
        """The paper's cost: sum of per-operation delays."""
        return sum(self.delays.values())

    @property
    def max_delay(self) -> int:
        """Largest single operation delay."""
        return max(self.delays.values(), default=0)


@dataclass(frozen=True)
class QueuingResult:
    """Outcome of a one-shot concurrent queuing execution.

    Attributes:
        algorithm: short name of the queuing algorithm.
        requests: the requesting vertices, sorted.
        predecessors: operation id -> predecessor operation id; the first
            real operation's predecessor is the initial dummy operation
            ``("init", tail)``.
        delays: operation id -> round in which the operation learned its
            predecessor — the paper's queuing delay ``l_Q``.
        tail: the vertex holding the initial queue tail.
        stats: engine accounting for the run.
    """

    algorithm: str
    requests: tuple[int, ...]
    predecessors: dict[Hashable, Hashable]
    delays: dict[Hashable, int]
    tail: int
    stats: RunStats

    @property
    def total_delay(self) -> int:
        """The paper's cost: sum of per-operation delays."""
        return sum(self.delays.values())

    @property
    def max_delay(self) -> int:
        """Largest single operation delay."""
        return max(self.delays.values(), default=0)
