"""Request-set scenarios: who is counting/queuing.

The paper's complexity is a worst case over all request sets ``R``.  The
experiments approximate that maximum with structured adversarial patterns
(each known to realise the worst case on some topology) plus seeded
random subsets; for tiny instances the benchmarks also search
exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.topology.base import Graph
from repro.topology.properties import bfs_distances


@dataclass(frozen=True)
class RequestScenario:
    """A named request-set generator.

    Attributes:
        name: label used in experiment tables.
        build: maps a graph to the requesting vertex list.
    """

    name: str
    build: Callable[[Graph], list[int]]

    def __call__(self, graph: Graph) -> list[int]:
        req = self.build(graph)
        if not req:
            raise ValueError(f"scenario {self.name!r} produced an empty request set")
        return sorted(set(req))


def all_nodes() -> RequestScenario:
    """Every vertex requests — the pattern Theorems 3.5 and 3.6 analyse."""
    return RequestScenario("all", lambda g: list(g.vertices()))


def single_node(v: int = 0) -> RequestScenario:
    """Only vertex ``v`` requests — the degenerate baseline."""
    return RequestScenario(f"single({v})", lambda g: [v])


def random_subset(p: float, seed: int = 0) -> RequestScenario:
    """Each vertex requests independently with probability ``p`` (seeded).

    Guarantees at least one requester by forcing vertex 0 in when the
    draw comes out empty.
    """
    if not (0 < p <= 1):
        raise ValueError(f"p must be in (0, 1], got {p}")

    def build(g: Graph) -> list[int]:
        rng = np.random.default_rng(seed)
        mask = rng.random(g.n) < p
        req = [v for v in g.vertices() if mask[v]]
        return req or [0]

    return RequestScenario(f"random(p={p},seed={seed})", build)


def far_half(anchor: int = 0) -> RequestScenario:
    """The half of the vertices farthest from ``anchor``.

    On high-diameter graphs this forces long-haul information transfer —
    the regime of Theorem 3.6.
    """

    def build(g: Graph) -> list[int]:
        dist = bfs_distances(g, anchor)
        order = sorted(g.vertices(), key=lambda v: (-dist[v], v))
        return order[: max(1, g.n // 2)]

    return RequestScenario(f"far_half(from={anchor})", build)


def alternating(stride: int = 2) -> RequestScenario:
    """Every ``stride``-th vertex requests (spread pattern, worst for NN runs)."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    return RequestScenario(
        f"alternating({stride})", lambda g: list(range(0, g.n, stride))
    )


def scenario_suite(seed: int = 0) -> list[RequestScenario]:
    """The standard portfolio the comparison experiments sweep over."""
    return [
        all_nodes(),
        far_half(),
        alternating(2),
        random_subset(0.5, seed=seed),
        random_subset(0.1, seed=seed + 1),
    ]


def exhaustive_request_sets(n: int) -> list[list[int]]:
    """All non-empty subsets of ``{0..n-1}`` (tiny n only).

    Used by the adversarial-search example to compute the exact
    worst-case complexity on small instances.

    Raises:
        ValueError: if ``n > 16``.
    """
    if n > 16:
        raise ValueError(f"exhaustive search limited to n <= 16, got {n}")
    sets = []
    for mask in range(1, 1 << n):
        sets.append([v for v in range(n) if (mask >> v) & 1])
    return sets


def request_sets_of_size(n: int, k: int, count: int, seed: int = 0) -> list[list[int]]:
    """``count`` distinct random k-subsets of ``{0..n-1}`` (seeded)."""
    if not (1 <= k <= n):
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, ...]] = set()
    out: list[list[int]] = []
    tries = 0
    while len(out) < count and tries < count * 50:
        tries += 1
        pick = tuple(sorted(rng.choice(n, size=k, replace=False).tolist()))
        if pick not in seen:
            seen.add(pick)
            out.append(list(pick))
    return out
