"""The counting-vs-queuing comparison harness.

Produces the reproduction's headline data: for a graph family and a
request scenario, run a set of algorithms (counting and queuing), collect
the paper's total-delay metric, and fit growth exponents across sizes so
the asymptotic separations (Theorems 4.5, 4.12, 4.13, and the star
counterexample) can be checked as *shapes*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from repro.core.request import RequestScenario
from repro.topology.base import Graph


class _HasTotalDelay(Protocol):
    """Anything with the paper's cost (both result dataclasses qualify)."""

    @property
    def total_delay(self) -> int: ...  # noqa: E704 - protocol stub

    @property
    def max_delay(self) -> int: ...  # noqa: E704 - protocol stub


#: An algorithm runner: (graph, requests) -> result.
Runner = Callable[[Graph, list[int]], _HasTotalDelay]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named algorithm entry for the comparison harness.

    Attributes:
        name: display name.
        kind: ``"counting"`` or ``"queuing"``.
        run: the runner callable.
    """

    name: str
    kind: str
    run: Runner

    def __post_init__(self) -> None:
        if self.kind not in ("counting", "queuing"):
            raise ValueError(f"kind must be counting|queuing, got {self.kind!r}")


@dataclass(frozen=True)
class ComparisonRow:
    """One measured data point.

    Attributes mirror the columns of the experiment tables.
    """

    graph: str
    n: int
    scenario: str
    algorithm: str
    kind: str
    requesters: int
    total_delay: int
    max_delay: int


def compare_on_graph(
    graph: Graph,
    algorithms: Sequence[AlgorithmSpec],
    scenarios: Iterable[RequestScenario],
) -> list[ComparisonRow]:
    """Run every algorithm on every scenario of one graph.

    Returns one :class:`ComparisonRow` per (algorithm, scenario) pair.
    """
    rows: list[ComparisonRow] = []
    for scenario in scenarios:
        requests = scenario(graph)
        for spec in algorithms:
            result = spec.run(graph, list(requests))
            rows.append(
                ComparisonRow(
                    graph=graph.name,
                    n=graph.n,
                    scenario=scenario.name,
                    algorithm=spec.name,
                    kind=spec.kind,
                    requesters=len(requests),
                    total_delay=result.total_delay,
                    max_delay=result.max_delay,
                )
            )
    return rows


def growth_exponent(sizes: Sequence[int], totals: Sequence[float]) -> float:
    """Least-squares slope of ``log(total)`` against ``log(size)``.

    The shape check of the benchmarks: a ``Theta(n^2)`` family fits a
    slope near 2, a ``Theta(n)`` family near 1, ``Theta(n log n)`` a bit
    above 1.

    Raises:
        ValueError: with fewer than two points or non-positive values.
    """
    if len(sizes) != len(totals) or len(sizes) < 2:
        raise ValueError("need at least two (size, total) pairs")
    s = np.asarray(sizes, dtype=float)
    t = np.asarray(totals, dtype=float)
    if (s <= 0).any() or (t <= 0).any():
        raise ValueError("sizes and totals must be positive for log-log fit")
    slope, _intercept = np.polyfit(np.log(s), np.log(t), 1)
    return float(slope)


def ratio_series(
    rows: Iterable[ComparisonRow],
    counting_algorithm: str,
    queuing_algorithm: str,
) -> dict[int, float]:
    """``n -> counting_total / queuing_total`` for two named algorithms.

    Rows are matched on (n, scenario); multiple scenarios per n are
    averaged.  The paper's claim is that this ratio diverges on Hamilton
    path/m-ary-tree/high-diameter graphs and stays bounded on the star.
    """
    c: dict[tuple[int, str], int] = {}
    q: dict[tuple[int, str], int] = {}
    for row in rows:
        key = (row.n, row.scenario)
        if row.algorithm == counting_algorithm:
            c[key] = row.total_delay
        elif row.algorithm == queuing_algorithm:
            q[key] = row.total_delay
    per_n: dict[int, list[float]] = {}
    for key in c.keys() & q.keys():
        if q[key] > 0:
            per_n.setdefault(key[0], []).append(c[key] / q[key])
    return {n: float(np.mean(v)) for n, v in sorted(per_n.items())}
