"""Validators for the two problems' correctness conditions.

Every experiment run is passed through these before its delays are
trusted: a protocol bug that produced wrong ranks or a broken predecessor
chain would otherwise silently corrupt the delay comparison.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence


class VerificationError(AssertionError):
    """A counting or queuing output violated the problem specification."""


def verify_counting(requests: Iterable[int], counts: Mapping[int, int]) -> None:
    """Check Section 2.2's counting condition.

    The counts received by the requesters must be exactly
    ``{1, 2, ..., |R|}`` and non-requesters must not receive one.

    Raises:
        VerificationError: on any violation, including an empty request
            set (the problem is defined for ``|R| >= 1``; an empty set
            reaching a validator means the harness built a degenerate
            instance).
    """
    req = set(requests)
    if not req:
        raise VerificationError("empty request set: nothing to count")
    got = set(counts)
    if got != req:
        extra = sorted(got - req)[:5]
        missing = sorted(req - got)[:5]
        raise VerificationError(
            f"count recipients != requesters (extra={extra}, missing={missing})"
        )
    values = sorted(counts.values())
    if values != list(range(1, len(req) + 1)):
        raise VerificationError(
            f"counts are not exactly 1..{len(req)}: got {values[:10]}..."
        )


def verify_queuing(
    requests: Iterable[int],
    predecessors: Mapping[Hashable, Hashable],
    tail: int,
) -> list[Hashable]:
    """Check Section 2.2's queuing condition and return the total order.

    The predecessor pointers must form one chain that starts at the
    initial dummy operation ``("init", tail)`` and covers every
    requester's operation exactly once.

    Returns:
        The operations in queue order (excluding the dummy).

    Raises:
        VerificationError: on an empty request set, a missing operation,
            a fork (two operations with the same predecessor), or a
            cycle.
    """
    req = set(requests)
    if not req:
        raise VerificationError("empty request set: nothing to queue")
    ops = {("op", v) for v in req}
    if set(predecessors) != ops:
        raise VerificationError(
            f"predecessor map covers {len(predecessors)} ops, expected {len(ops)}"
        )
    succ: dict[Hashable, Hashable] = {}
    for op, pred in predecessors.items():
        if pred in succ:
            raise VerificationError(f"fork: {pred!r} precedes two operations")
        succ[pred] = op
    chain: list[Hashable] = []
    cur: Hashable = ("init", tail)
    seen = set()
    while cur in succ:
        cur = succ[cur]
        if cur in seen:
            raise VerificationError(f"cycle through {cur!r}")
        seen.add(cur)
        chain.append(cur)
    if len(chain) != len(ops):
        raise VerificationError(
            f"chain from the initial tail covers {len(chain)} of {len(ops)} ops"
        )
    return chain


def verify_total_order_consistency(
    orders: Sequence[Sequence[Hashable]],
) -> None:
    """Check that several reconstructed orders are identical.

    Used by the ordered-multicast application: every receiver must deliver
    the same sequence.

    Raises:
        VerificationError: if any two orders differ.
    """
    if not orders:
        return
    first = list(orders[0])
    for i, other in enumerate(orders[1:], start=1):
        if list(other) != first:
            raise VerificationError(
                f"delivery order at receiver {i} differs from receiver 0"
            )
