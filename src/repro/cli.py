"""Command-line interface: run experiments and protocols from a shell.

Usage::

    python -m repro list
    python -m repro run E9
    python -m repro run E4 --scale bench
    python -m repro run all --scale test
    python -m repro arrow --graph complete --n 32
    python -m repro count --graph mesh --n 36 --algorithm combining
    python -m repro count --graph star --n 16 --algorithm central --sanitize
    python -m repro arrow --graph path --n 32 --faults drop=0.1,seed=7
    python -m repro count --algorithm central --faults dup=0.05 --crash 3@10:20
    python -m repro lint src/repro --format json
    python -m repro trace arrow --graph path --n 8 -o arrow.perfetto.json
    python -m repro profile flood --n 32
    python -m repro count --algorithm flood --stats --metrics-json m.json

``run`` executes experiments from the suite (test-scale defaults or the
larger ``--scale bench`` parameterisations) and prints the regenerated
tables; ``arrow``/``count`` run a single protocol and print its delays —
handy for quick exploration.  ``lint`` statically checks protocol
implementations against the model rules (see ``docs/LINT.md``);
``--sanitize`` replays a protocol run and diffs the event traces to catch
nondeterminism; ``--strict`` makes the engine raise on any per-round
send/receive budget overrun instead of queuing.

Observability (see ``docs/OBSERVABILITY.md``): ``trace`` runs a protocol
with event tracing on and writes a Chrome/Perfetto ``trace_event`` JSON
(open it at https://ui.perfetto.dev) plus a flat JSONL event stream;
``profile`` times the engine's per-round phases and prints the hottest
first; ``--stats`` on ``run``/``arrow``/``count`` prints the engine's
aggregate counters, and ``--metrics-json PATH`` dumps the full metrics
registry (counters, gauges, per-op delay and link-wait histograms) — for
``run``, a per-experiment summary document — as JSON.

``--faults``/``--crash``/``--outage`` run the protocol under a seeded
fault plan with the reliable-delivery wrapper (see ``docs/FAULTS.md``):
``--faults`` takes ``drop=0.1,dup=0.05,seed=7,runs=3``; ``--crash``
takes ``node@start:end`` (empty end = permanent) and ``--outage`` takes
``u-v@start:end``, both repeatable.

Resilience (see ``docs/RESILIENCE.md``): ``chaos`` sweeps seeded fault
plans across protocol x topology cells with invariant monitors and the
watchdog attached, shrinks every failing plan to a minimal reproducer,
and (with ``--out``) saves replayable JSON artifacts; ``chaos --replay
artifact.json`` re-runs one and verifies the identical failure; ``chaos
--ci`` exits nonzero on any finding (sweep plans are eventually
delivering, so a failure is a bug, not weather).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS, render_experiment
from repro.sim.errors import StrictModeViolation


def _build_graph(name: str, n: int):
    from repro import (
        complete_graph,
        hypercube_graph,
        mesh_graph,
        path_graph,
        star_graph,
    )

    if name == "complete":
        return complete_graph(n)
    if name == "path":
        return path_graph(n)
    if name == "star":
        return star_graph(n)
    if name == "mesh":
        side = max(2, round(n**0.5))
        return mesh_graph([side, side])
    if name == "hypercube":
        d = max(1, n.bit_length() - 1)
        return hypercube_graph(d)
    raise SystemExit(f"unknown graph family {name!r}")


def cmd_list(_args: argparse.Namespace) -> int:
    for exp_id in sorted(ALL_EXPERIMENTS, key=lambda e: int(e[1:])):
        result_fn = ALL_EXPERIMENTS[exp_id]
        doc = (result_fn.__doc__ or "").strip().splitlines()[0]
        print(f"{exp_id:>4}  {doc}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.executor import run_suite

    targets = (
        sorted(ALL_EXPERIMENTS, key=lambda e: int(e[1:]))
        if args.experiment.lower() == "all"
        else [args.experiment.upper()]
    )
    for exp_id in targets:
        if exp_id not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {exp_id!r}; try `python -m repro list`"
            )
    runs = run_suite(targets, scale=args.scale, jobs=args.jobs)
    failures = 0
    for result, elapsed in runs:
        print(render_experiment(result))
        if args.stats:
            row = result.metrics_row()
            print(
                f"stats: rows={row['rows']} "
                f"checks={row['checks_passed']}/{row['checks_total']} "
                f"passed={row['passed']}"
            )
        print(f"({elapsed:.1f}s)\n")
        if not result.passed:
            failures += 1
    if args.metrics_json:
        import json

        from repro.experiments import suite_metrics

        with open(args.metrics_json, "w") as fh:
            json.dump(suite_metrics(runs), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote metrics to {args.metrics_json}")
    return 1 if failures else 0


def _fault_plan(args: argparse.Namespace):
    """The :class:`FaultPlan` requested on the command line, or ``None``."""
    if not (args.faults or args.crash or args.outage):
        return None
    from repro.faults import FaultPlan

    try:
        plan = FaultPlan.parse(
            args.faults or "", crashes=args.crash, outages=args.outage
        )
    except ValueError as exc:
        raise SystemExit(f"bad fault spec: {exc}")
    if args.strict:
        raise SystemExit(
            "--strict is incompatible with fault injection: acks and "
            "retransmits legitimately exceed the per-round budgets"
        )
    return None if plan.is_empty() else plan


def _print_stats(stats) -> None:
    """Render the RunStats counters the protocol commands hide by default."""
    print(f"  rounds      : {stats.rounds}")
    print(f"  sent        : {stats.messages_sent}")
    print(f"  delivered   : {stats.messages_delivered}")
    print(f"  dropped     : {stats.messages_dropped}")
    print(f"  duplicated  : {stats.messages_duplicated}")
    print(f"  send backlog: {stats.max_send_backlog} (max outbox)")
    print(f"  recv backlog: {stats.max_recv_backlog} (max link queue)")
    print(f"  link wait   : {stats.total_link_wait} rounds total")


def _metrics_registry(args: argparse.Namespace):
    """A fresh registry when ``--metrics-json`` was given, else ``None``."""
    if not getattr(args, "metrics_json", None):
        return None
    from repro.obs import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(args: argparse.Namespace, registry) -> None:
    if registry is not None:
        registry.write_json(args.metrics_json)
        print(f"  metrics     : wrote {args.metrics_json}")


def _print_fault_summary(plan, stats) -> None:
    print(f"  fault plan  : {plan.describe()}")
    print(f"  dropped     : {stats.messages_dropped}")
    print(f"  duplicated  : {stats.messages_duplicated}")
    print(f"  crashes     : {stats.node_crashes}")
    if not plan.eventually_delivers():
        print("  warning     : plan is not eventually-delivering; "
              "completion was not guaranteed")


def cmd_arrow(args: argparse.Namespace) -> int:
    from repro import run_arrow
    from repro.topology.spanning import bfs_spanning_tree, path_spanning_tree

    g = _build_graph(args.graph, args.n)
    try:
        st = path_spanning_tree(g)
    except Exception:
        st = bfs_spanning_tree(g)
    plan = _fault_plan(args)
    if plan is not None:
        from repro.faults import run_arrow_ft

        def runner(**kw):
            return run_arrow_ft(st, range(g.n), plan, **kw)
    else:
        def runner(**kw):
            return run_arrow(st, range(g.n), strict=args.strict, **kw)

    registry = _metrics_registry(args)
    try:
        res = runner(metrics=registry) if registry is not None else runner()
    except StrictModeViolation as exc:
        print(f"strict mode violation: {exc}")
        return 1
    print(f"{g.name}: arrow on {st.label} tree")
    print(f"  total delay : {res.total_delay}")
    print(f"  max delay   : {res.max_delay}")
    print(f"  order       : {res.order()[:12]}{'...' if g.n > 12 else ''}")
    if args.stats:
        _print_stats(res.stats)
    if plan is not None:
        _print_fault_summary(plan, res.stats)
    _write_metrics(args, registry)
    if args.sanitize:
        return _sanitize(lambda trace: runner(trace=trace))
    return 0


def cmd_count(args: argparse.Namespace) -> int:
    from repro import (
        run_central_counting,
        run_combining_counting,
        run_counting_network,
        run_flood_counting,
    )
    from repro.counting import run_periodic_counting
    from repro.topology.spanning import bfs_spanning_tree

    g = _build_graph(args.graph, args.n)
    runners = {
        "combining": lambda **kw: run_combining_counting(
            bfs_spanning_tree(g), range(g.n), **kw
        ),
        "central": lambda **kw: run_central_counting(g, range(g.n), **kw),
        "flood": lambda **kw: run_flood_counting(g, range(g.n), **kw),
        "cnet": lambda **kw: run_counting_network(g, range(g.n), **kw),
        "periodic": lambda **kw: run_periodic_counting(g, range(g.n), **kw),
    }
    if args.algorithm not in runners:
        raise SystemExit(f"unknown algorithm {args.algorithm!r}")
    plan = _fault_plan(args)
    if plan is not None:
        from repro.faults import run_central_counting_ft, run_flood_counting_ft

        ft_runners = {
            "central": lambda **kw: run_central_counting_ft(
                g, range(g.n), plan, **kw
            ),
            "flood": lambda **kw: run_flood_counting_ft(g, range(g.n), plan, **kw),
        }
        if args.algorithm not in ft_runners:
            raise SystemExit(
                f"fault injection supports algorithms "
                f"{sorted(ft_runners)}, not {args.algorithm!r}"
            )
        runner = ft_runners[args.algorithm]
    else:
        base = runners[args.algorithm]

        def runner(**kw):
            return base(strict=args.strict, **kw)

    registry = _metrics_registry(args)
    try:
        res = runner(metrics=registry) if registry is not None else runner()
    except StrictModeViolation as exc:
        print(f"strict mode violation: {exc}")
        return 1
    print(f"{g.name}: {res.algorithm}")
    print(f"  total delay : {res.total_delay}")
    print(f"  max delay   : {res.max_delay}")
    if args.stats:
        _print_stats(res.stats)
    if plan is not None:
        _print_fault_summary(plan, res.stats)
    _write_metrics(args, registry)
    if args.sanitize:
        return _sanitize(lambda trace: runner(trace=trace))
    return 0


def _sanitize(build_and_run) -> int:
    """Replay a protocol run and diff the event traces; 0 iff identical."""
    from repro.lint import check_determinism

    report = check_determinism(build_and_run)
    print(f"  sanitizer   : {report.describe()}")
    return 0 if report.deterministic else 1


#: Protocols the observability commands can run.
OBS_PROTOCOLS = ("arrow", "combining", "central", "flood", "cnet", "periodic")


def _proto_runner(args: argparse.Namespace):
    """``(graph, runner)`` for one observability protocol run.

    The runner accepts the engine observation kwargs (``trace``,
    ``metrics``, ``profiler``) and honours ``--faults``/``--crash``/
    ``--outage`` where the fault-tolerant variant exists.
    """
    g = _build_graph(args.graph, args.n)
    plan = _fault_plan(args) if hasattr(args, "faults") else None
    proto = args.protocol
    if proto == "arrow":
        from repro import run_arrow
        from repro.topology.spanning import bfs_spanning_tree, path_spanning_tree

        try:
            st = path_spanning_tree(g)
        except Exception:
            st = bfs_spanning_tree(g)
        if plan is not None:
            from repro.faults import run_arrow_ft

            return g, lambda **kw: run_arrow_ft(st, range(g.n), plan, **kw)
        return g, lambda **kw: run_arrow(st, range(g.n), **kw)

    from repro import (
        run_central_counting,
        run_combining_counting,
        run_counting_network,
        run_flood_counting,
    )
    from repro.counting import run_periodic_counting
    from repro.topology.spanning import bfs_spanning_tree

    if plan is not None:
        from repro.faults import run_central_counting_ft, run_flood_counting_ft

        ft = {
            "central": lambda **kw: run_central_counting_ft(
                g, range(g.n), plan, **kw
            ),
            "flood": lambda **kw: run_flood_counting_ft(g, range(g.n), plan, **kw),
        }
        if proto not in ft:
            raise SystemExit(
                f"fault injection supports protocols {sorted(ft)}, not {proto!r}"
            )
        return g, ft[proto]
    runners = {
        "combining": lambda **kw: run_combining_counting(
            bfs_spanning_tree(g), range(g.n), **kw
        ),
        "central": lambda **kw: run_central_counting(g, range(g.n), **kw),
        "flood": lambda **kw: run_flood_counting(g, range(g.n), **kw),
        "cnet": lambda **kw: run_counting_network(g, range(g.n), **kw),
        "periodic": lambda **kw: run_periodic_counting(g, range(g.n), **kw),
    }
    return g, runners[proto]


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, write_chrome_trace, write_jsonl
    from repro.sim import EventTrace

    g, runner = _proto_runner(args)
    trace = EventTrace()
    registry = MetricsRegistry() if args.metrics_json else None
    kw = {"trace": trace}
    if registry is not None:
        kw["metrics"] = registry
    res = runner(**kw)

    out = args.output or f"{args.protocol}.perfetto.json"
    if out.endswith(".perfetto.json"):
        base = out[: -len(".perfetto.json")]
    elif out.endswith(".json"):
        base = out[: -len(".json")]
    else:
        base = out
    jsonl_path = args.jsonl or f"{base}.jsonl"
    write_chrome_trace(
        trace, out, label=f"{args.protocol} on {g.name}"
    )
    lines = write_jsonl(trace, jsonl_path)
    print(f"{g.name}: {args.protocol}")
    print(f"  rounds      : {res.stats.rounds}")
    print(f"  events      : {len(trace)}")
    print(f"  perfetto    : {out}  (open at https://ui.perfetto.dev)")
    print(f"  jsonl       : {jsonl_path}  ({lines} lines)")
    if registry is not None:
        registry.write_json(args.metrics_json)
        print(f"  metrics     : {args.metrics_json}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import PhaseProfiler

    g, runner = _proto_runner(args)
    prof = PhaseProfiler()
    res = runner(profiler=prof)
    print(f"{g.name}: {args.protocol} (total delay {res.total_delay})")
    print(prof.render())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(prof.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote profile to {args.json}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import check_paths, render_json, render_text

    try:
        findings = check_paths(args.paths)
    except (OSError, SyntaxError) as exc:
        raise SystemExit(f"lint: cannot analyze: {exc}")
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings))
    return 1 if findings else 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf import compare_benchmarks, render_bench, run_bench

    try:
        doc = run_bench(
            repeats=args.repeats,
            fallback=not args.no_fallback,
            names=args.cells or None,
        )
    except KeyError as exc:
        raise SystemExit(f"bench: {exc}")
    print(render_bench(doc))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote benchmark document to {args.json}")
    if args.compare:
        try:
            with open(args.compare) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bench: cannot read baseline {args.compare!r}: {exc}")
        failures = compare_benchmarks(doc, baseline, threshold=args.threshold)
        if failures:
            print(f"\nREGRESSION vs {args.compare}:")
            for msg in failures:
                print(f"  {msg}")
            return 1
        print(f"\nno regression vs {args.compare} "
              f"(threshold {args.threshold:.0%})")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import os

    from repro.resilience.chaos import (
        ChaosCell,
        chaos_search,
        load_artifact,
        replay_artifact,
        save_artifact,
    )

    if args.replay:
        try:
            cell, plan, failure = load_artifact(args.replay)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"chaos: cannot load artifact {args.replay!r}: {exc}")
        print(f"replaying {cell.key()} ({plan.describe()})")
        print(f"  recorded: {failure.get('kind')} at round {failure.get('round')}")
        reproduced, observed = replay_artifact(
            cell, plan, failure, max_rounds=args.max_rounds
        )
        if observed["status"] == "ok":
            print("  observed: run completed cleanly")
        else:
            print(
                f"  observed: {observed['kind']} at round {observed['round']}"
            )
        print("REPRODUCED" if reproduced else "NOT REPRODUCED")
        return 0 if reproduced else 1

    specs = args.cells or ["flood_ft:ring:8", "central_ft:star:8", "arrow_ft:path:8"]
    try:
        cells = [ChaosCell.parse(s) for s in specs]
    except ValueError as exc:
        raise SystemExit(f"chaos: {exc}")
    report = chaos_search(
        cells,
        range(args.seeds),
        allow_permanent=args.allow_permanent,
        shrink=not args.no_shrink,
        max_rounds=args.max_rounds,
        progress=print,
    )
    print(
        f"\n{report.runs} runs over {len(cells)} cells x {args.seeds} seeds: "
        f"{len(report.findings)} failing plan(s)"
    )
    if args.out and report.findings:
        os.makedirs(args.out, exist_ok=True)
    for i, f in enumerate(report.findings):
        print(
            f"  [{i}] {f.cell.key()}: {f.final_failure.get('kind')} at round "
            f"{f.final_failure.get('round')} ({f.final_plan.describe()})"
        )
        if args.out:
            path = os.path.join(
                args.out, f"chaos-{f.cell.key().replace(':', '-')}-{i}.json"
            )
            save_artifact(path, f.cell, f.final_plan, f.final_failure)
            print(f"      wrote {path}")
    if args.ci:
        # CI sweeps eventually-delivering plans only: any failure is a bug.
        return 1 if report.findings else 0
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Concurrent counting is harder than queuing'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment suite").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. E9, or 'all'")
    run.add_argument(
        "--scale", choices=("test", "bench"), default="test",
        help="parameter scale (default: test)",
    )
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run experiment cells on N worker processes (default: 1; "
             "results and output order are identical, only wall-clock "
             "changes)",
    )
    run.add_argument("--stats", action="store_true",
                     help="print a per-experiment summary line (rows, checks)")
    run.add_argument("--metrics-json", metavar="PATH", default="",
                     help="write a per-experiment metrics document as JSON")
    run.set_defaults(func=cmd_run)

    def add_fault_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--faults", default="", metavar="SPEC",
            help="fault plan, e.g. drop=0.1,dup=0.05,seed=7,runs=3 "
                 "(runs=inf unbounds consecutive drops)",
        )
        p.add_argument(
            "--crash", action="append", default=[], metavar="N@S:E",
            help="crash node N in rounds [S, E); empty E = permanent; "
                 "repeatable",
        )
        p.add_argument(
            "--outage", action="append", default=[], metavar="U-V@S:E",
            help="take link {U, V} down in rounds [S, E); repeatable",
        )

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--stats", action="store_true",
                       help="print the engine's RunStats counters "
                            "(messages, backlogs, link wait)")
        p.add_argument("--metrics-json", metavar="PATH", default="",
                       help="attach a metrics registry and write it as JSON")

    arrow = sub.add_parser("arrow", help="run the arrow protocol once")
    arrow.add_argument("--graph", default="complete",
                       choices=("complete", "path", "star", "mesh", "hypercube"))
    arrow.add_argument("--n", type=int, default=32)
    arrow.add_argument("--sanitize", action="store_true",
                       help="re-run and diff event traces for nondeterminism")
    arrow.add_argument("--strict", action="store_true",
                       help="raise on per-round send/receive budget overruns")
    add_obs_args(arrow)
    add_fault_args(arrow)
    arrow.set_defaults(func=cmd_arrow)

    count = sub.add_parser("count", help="run one counting algorithm once")
    count.add_argument("--graph", default="complete",
                       choices=("complete", "path", "star", "mesh", "hypercube"))
    count.add_argument("--n", type=int, default=32)
    count.add_argument("--algorithm", default="combining",
                       choices=("combining", "central", "flood", "cnet", "periodic"))
    count.add_argument("--sanitize", action="store_true",
                       help="re-run and diff event traces for nondeterminism")
    count.add_argument("--strict", action="store_true",
                       help="raise on per-round send/receive budget overruns")
    add_obs_args(count)
    add_fault_args(count)
    count.set_defaults(func=cmd_count)

    trace = sub.add_parser(
        "trace",
        help="run a protocol with tracing on; write Perfetto JSON + JSONL",
    )
    trace.add_argument("protocol", choices=OBS_PROTOCOLS)
    trace.add_argument("--graph", default="complete",
                       choices=("complete", "path", "star", "mesh", "hypercube"))
    trace.add_argument("--n", type=int, default=32)
    trace.add_argument("-o", "--output", default="", metavar="PATH",
                       help="Chrome trace-event JSON path "
                            "(default: <protocol>.perfetto.json)")
    trace.add_argument("--jsonl", default="", metavar="PATH",
                       help="flat JSONL event-stream path "
                            "(default: derived from -o)")
    trace.add_argument("--metrics-json", metavar="PATH", default="",
                       help="also attach a metrics registry and write it as JSON")
    add_fault_args(trace)
    trace.set_defaults(func=cmd_trace, strict=False)

    profile = sub.add_parser(
        "profile",
        help="time the engine's per-round phases for one protocol run",
    )
    profile.add_argument("protocol", choices=OBS_PROTOCOLS)
    profile.add_argument("--graph", default="complete",
                         choices=("complete", "path", "star", "mesh", "hypercube"))
    profile.add_argument("--n", type=int, default=32)
    profile.add_argument("--json", default="", metavar="PATH",
                         help="also write the profile document as JSON")
    add_fault_args(profile)
    profile.set_defaults(func=cmd_profile, strict=False)

    lint = sub.add_parser(
        "lint", help="statically check protocol code against the model rules"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to analyze (default: src/repro)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="findings output format (default: text)")
    lint.set_defaults(func=cmd_lint)

    bench = sub.add_parser(
        "bench",
        help="time engine throughput on the fixed protocol x topology matrix",
    )
    bench.add_argument("--json", default="", metavar="PATH",
                       help="write the benchmark document as JSON")
    bench.add_argument("--repeats", type=int, default=1, metavar="N",
                       help="timings per cell; the best is kept (default: 1)")
    bench.add_argument("--cells", action="append", default=[], metavar="NAME",
                       help="run only this cell (repeatable), e.g. flood/path/512")
    bench.add_argument("--no-fallback", action="store_true",
                       help="skip the generic-path timings (fast path only)")
    bench.add_argument("--compare", default="", metavar="BASELINE",
                       help="exit 1 on normalised throughput regression vs a "
                            "baseline document (see docs/PERFORMANCE.md)")
    bench.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                       help="allowed fractional regression (default: 0.25)")
    bench.set_defaults(func=cmd_bench)

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeded fault plans over protocol cells; shrink and "
             "save failing reproducers",
    )
    chaos.add_argument(
        "--cells", action="append", default=[], metavar="PROTO:TOPO:N",
        help="cell spec, e.g. flood_ft:ring:8 (repeatable; default: a "
             "small fixed matrix)",
    )
    chaos.add_argument("--seeds", type=int, default=10, metavar="K",
                       help="plans per cell, seeds 0..K-1 (default: 10)")
    chaos.add_argument("--allow-permanent", action="store_true",
                       help="let plans include permanent crashes (failures "
                            "are then expected, useful for demos)")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip delta-debug shrinking of failing plans")
    chaos.add_argument("--max-rounds", type=int, default=20_000,
                       metavar="R", help="per-run round budget (default: 20000)")
    chaos.add_argument("--out", default="", metavar="DIR",
                       help="write replayable reproducer JSON artifacts here")
    chaos.add_argument("--ci", action="store_true",
                       help="exit 1 if any plan fails (plans are eventually "
                            "delivering, so failures are engine/protocol bugs)")
    chaos.add_argument("--replay", default="", metavar="ARTIFACT",
                       help="re-run one saved reproducer and verify the same "
                            "failure at the same round; exit 1 otherwise")
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
