"""repro — a reproduction of "Concurrent counting is harder than queuing".

Busch & Tirthapura (IPDPS 2006; TCS 411:3823-3833, 2010) compare two
distributed coordination problems on a synchronous message-passing
network where every node may send and receive at most one message per
round: *counting* (requesters learn their rank in a total order) and
*queuing* (requesters learn their predecessor).  The paper proves
counting is asymptotically harder on every graph with a Hamilton path, a
perfect m-ary spanning tree, or high diameter — and that the separation
vanishes on the star.

This library implements the whole stack from scratch:

* :mod:`repro.sim` — the synchronous network model as a deterministic
  simulator;
* :mod:`repro.topology`, :mod:`repro.tree` — the graph families and
  spanning-tree machinery of the theorems;
* :mod:`repro.arrow` — the arrow queuing protocol (the upper-bound side);
* :mod:`repro.counting` — four counting algorithms (central, combining
  tree, full-information gossip, bitonic counting network);
* :mod:`repro.faults` — seeded fault injection (drops, duplicates, link
  outages, crashes) and the reliable-delivery wrapper with ``run_*_ft``
  fault-tolerant protocol variants;
* :mod:`repro.tsp` — nearest-neighbour TSP tours and every Section-4
  bound;
* :mod:`repro.bounds` — exact evaluation of every lower/upper-bound
  expression in the paper;
* :mod:`repro.multicast`, :mod:`repro.mutex` — the motivating
  applications (totally ordered multicast, token-based mutual exclusion);
* :mod:`repro.resilience` — runtime invariant monitors, a liveness
  watchdog, checkpoint/restore with deterministic replay, and a
  chaos-search harness over seeded fault plans;
* :mod:`repro.experiments` — one runnable experiment per theorem, with
  pass criteria.

Quick start::

    from repro import complete_graph, path_spanning_tree, run_arrow

    g = complete_graph(32)
    result = run_arrow(path_spanning_tree(g), requests=range(32))
    print(result.total_delay, result.order())
"""

from repro.adding import run_central_addition, run_combining_addition
from repro.arrow import arrow_vs_tsp, run_arrow, run_arrow_longlived
from repro.bounds import (
    counting_lower_bound,
    log_star,
    theorem35_lower_bound,
    theorem36_lower_bound,
    tow,
)
from repro.core import (
    CountingResult,
    QueuingResult,
    verify_counting,
    verify_queuing,
)
from repro.counting import (
    run_central_counting,
    run_central_queuing,
    run_combining_counting,
    run_counting_network,
    run_flood_counting,
    run_periodic_counting,
)
from repro.directory import run_object_directory
from repro.experiments import ALL_EXPERIMENTS
from repro.faults import (
    FaultPlan,
    LinkOutage,
    NodeCrash,
    RetryPolicy,
    run_arrow_ft,
    run_central_counting_ft,
    run_flood_counting_ft,
    wrap_reliable,
)
from repro.multicast import run_counting_multicast, run_queuing_multicast
from repro.mutex import run_token_mutex
from repro.resilience import (
    ArrowInvariant,
    ChaosCell,
    Checkpoint,
    CountingInvariant,
    MonitorSet,
    PeriodicCheckpointer,
    TokenInvariant,
    Watchdog,
    chaos_search,
)
from repro.sim import ConstantDelay, SynchronousNetwork, TargetedDelay, UniformDelay
from repro.topology import (
    Graph,
    binary_tree_graph,
    caterpillar_graph,
    complete_graph,
    hypercube_graph,
    lollipop_graph,
    mesh_graph,
    path_graph,
    perfect_mary_tree,
    ring_graph,
    star_graph,
    torus_graph,
)
from repro.topology.spanning import (
    SpanningTree,
    bfs_spanning_tree,
    dfs_spanning_tree,
    embedded_binary_tree,
    embedded_mary_tree,
    path_spanning_tree,
    star_spanning_tree,
)
from repro.tree import RootedTree
from repro.tsp import nearest_neighbor_tour

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # protocols
    "run_arrow",
    "run_arrow_longlived",
    "arrow_vs_tsp",
    "run_central_counting",
    "run_central_queuing",
    "run_combining_counting",
    "run_counting_network",
    "run_flood_counting",
    "run_periodic_counting",
    "run_combining_addition",
    "run_central_addition",
    # fault tolerance
    "FaultPlan",
    "LinkOutage",
    "NodeCrash",
    "RetryPolicy",
    "wrap_reliable",
    "run_arrow_ft",
    "run_central_counting_ft",
    "run_flood_counting_ft",
    # resilience
    "MonitorSet",
    "CountingInvariant",
    "ArrowInvariant",
    "TokenInvariant",
    "Watchdog",
    "Checkpoint",
    "PeriodicCheckpointer",
    "ChaosCell",
    "chaos_search",
    # applications
    "run_object_directory",
    "run_counting_multicast",
    "run_queuing_multicast",
    "run_token_mutex",
    # bounds
    "tow",
    "log_star",
    "theorem35_lower_bound",
    "theorem36_lower_bound",
    "counting_lower_bound",
    # model & results
    "SynchronousNetwork",
    "ConstantDelay",
    "UniformDelay",
    "TargetedDelay",
    "CountingResult",
    "QueuingResult",
    "verify_counting",
    "verify_queuing",
    # topology
    "Graph",
    "path_graph",
    "ring_graph",
    "complete_graph",
    "star_graph",
    "mesh_graph",
    "torus_graph",
    "hypercube_graph",
    "perfect_mary_tree",
    "binary_tree_graph",
    "caterpillar_graph",
    "lollipop_graph",
    # trees
    "RootedTree",
    "SpanningTree",
    "bfs_spanning_tree",
    "dfs_spanning_tree",
    "path_spanning_tree",
    "star_spanning_tree",
    "embedded_binary_tree",
    "embedded_mary_tree",
    # tsp
    "nearest_neighbor_tour",
    # experiments
    "ALL_EXPERIMENTS",
]
