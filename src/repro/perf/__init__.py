"""Engine performance baselines and regression gating.

``repro bench`` times engine throughput (rounds/sec, messages/sec) on a
fixed protocol x topology matrix (:data:`~repro.perf.bench.BENCH_CELLS`)
and writes ``BENCH_engine.json`` — the repo's committed perf trajectory.
:func:`~repro.perf.compare.compare_benchmarks` diffs two such documents
with machine-speed normalisation so CI can fail on real engine
regressions without flaking on hardware differences.  See
``docs/PERFORMANCE.md``.
"""

from repro.perf.bench import BENCH_CELLS, BenchCell, calibrate, run_bench, render_bench
from repro.perf.compare import compare_benchmarks

__all__ = [
    "BENCH_CELLS",
    "BenchCell",
    "calibrate",
    "run_bench",
    "render_bench",
    "compare_benchmarks",
]
