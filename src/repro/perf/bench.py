"""Engine throughput benchmarks on a fixed protocol x topology matrix.

Each cell runs one protocol to quiescence on one topology and reports
engine throughput — rounds/sec and messages/sec — for the dense fast
path and (optionally) the generic fallback path on the *same* workload,
so the document doubles as a record of what the fast path buys.  The
matrix spans the engine's distinct regimes: long pipelines (path),
hub contention (star), all-to-all gossip (complete), and the arrow
protocol's tree walks.

The output document (``repro bench --json BENCH_engine.json``) is the
committed baseline that CI compares against; see
:mod:`repro.perf.compare` and ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

#: Bumped when the document layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchCell:
    """One benchmark cell: a protocol run on a fixed topology.

    Attributes:
        name: stable identifier, ``protocol/topology/n`` — compare
            matches cells across documents by this.
        protocol: protocol label (``flood``, ``arrow``, ...).
        topology: topology label (``path``, ``star``, ...).
        n: vertex count.
        run: zero-argument callable executing the cell once and returning
            the run's :class:`~repro.sim.network.RunStats`.
    """

    name: str
    protocol: str
    topology: str
    n: int
    run: Callable[[], Any]


def _flood_path(n: int) -> Any:
    from repro import path_graph, run_flood_counting

    return run_flood_counting(path_graph(n), range(n)).stats


def _flood_complete(n: int) -> Any:
    from repro import complete_graph, run_flood_counting

    return run_flood_counting(complete_graph(n), range(n)).stats


def _arrow_path(n: int) -> Any:
    from repro import path_graph, run_arrow
    from repro.topology.spanning import path_spanning_tree

    return run_arrow(path_spanning_tree(path_graph(n)), range(n)).stats


def _central_star(n: int) -> Any:
    from repro import run_central_counting, star_graph

    return run_central_counting(star_graph(n), range(n)).stats


def _combining_mesh(side: int) -> Any:
    from repro import bfs_spanning_tree, mesh_graph, run_combining_counting

    g = mesh_graph([side, side])
    return run_combining_counting(bfs_spanning_tree(g), range(side * side)).stats


def _cnet_complete(n: int) -> Any:
    from repro import complete_graph, run_counting_network

    return run_counting_network(complete_graph(n), range(n)).stats


#: The fixed matrix.  ``flood/path/512`` is the acceptance cell the PR
#: history tracks; keep names stable so baselines stay comparable.  Sizes
#: are chosen so every cell runs long enough (>~50ms) for stable timing —
#: sub-10ms cells make the regression gate flaky.
BENCH_CELLS: tuple[BenchCell, ...] = (
    BenchCell("flood/path/512", "flood", "path", 512, lambda: _flood_path(512)),
    BenchCell(
        "flood/complete/128", "flood", "complete", 128,
        lambda: _flood_complete(128),
    ),
    BenchCell("arrow/path/8192", "arrow", "path", 8192, lambda: _arrow_path(8192)),
    BenchCell(
        "central/star/4096", "central", "star", 4096,
        lambda: _central_star(4096),
    ),
    BenchCell(
        "combining/mesh/4096", "combining", "mesh", 4096,
        lambda: _combining_mesh(64),
    ),
    BenchCell(
        "cnet/complete/128", "cnet", "complete", 128,
        lambda: _cnet_complete(128),
    ),
)


def calibrate(loops: int = 2_000_000) -> float:
    """Machine-speed probe: plain-Python ops/sec on a fixed arithmetic loop.

    Stored alongside the cell timings so a comparison across machines can
    normalise out raw interpreter speed (see
    :func:`repro.perf.compare.compare_benchmarks`).
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc += i & 7
    dt = time.perf_counter() - t0
    return loops / dt if dt > 0 else 0.0


def _time_cell(cell: BenchCell, repeats: int) -> tuple[float, Any]:
    """Best-of-``repeats`` wall-clock for one cell, with its stats."""
    best = None
    stats = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        stats = cell.run()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best or 0.0, stats


def run_bench(
    *,
    repeats: int = 1,
    fallback: bool = True,
    names: Sequence[str] | None = None,
    cells: Sequence[BenchCell] | None = None,
) -> dict[str, Any]:
    """Run the benchmark matrix and return the JSON-safe document.

    Args:
        repeats: timings per cell and path; the best (minimum) is kept.
        fallback: also time each cell with the dense fast path disabled,
            recording the generic-path throughput and the speedup.
        names: restrict to these cell names (unknown names raise).
        cells: override the matrix entirely (used by tests).

    Returns:
        ``{"schema", "calibration_ops_per_sec", "cells": [...]}`` where
        each cell row carries rounds, messages, seconds, rounds_per_sec,
        messages_per_sec, and — when ``fallback`` — the generic-path
        numbers plus ``fast_path_speedup``.
    """
    from repro.sim import engine_fast_path

    matrix = list(cells if cells is not None else BENCH_CELLS)
    if names:
        by_name = {c.name: c for c in matrix}
        unknown = [n for n in names if n not in by_name]
        if unknown:
            raise KeyError(f"unknown bench cells: {unknown}; have {sorted(by_name)}")
        matrix = [by_name[n] for n in names]

    rows: list[dict[str, Any]] = []
    for cell in matrix:
        with engine_fast_path(True):
            dt, stats = _time_cell(cell, repeats)
        row: dict[str, Any] = {
            "name": cell.name,
            "protocol": cell.protocol,
            "topology": cell.topology,
            "n": cell.n,
            "rounds": stats.rounds,
            "messages": stats.messages_sent,
            "seconds": round(dt, 4),
            "rounds_per_sec": round(stats.rounds / dt, 1) if dt else 0.0,
            "messages_per_sec": round(stats.messages_sent / dt, 1) if dt else 0.0,
        }
        if fallback:
            with engine_fast_path(False):
                fdt, fstats = _time_cell(cell, repeats)
            assert fstats.messages_sent == stats.messages_sent, (
                f"{cell.name}: fallback path diverged "
                f"({fstats.messages_sent} != {stats.messages_sent} messages)"
            )
            row["fallback_seconds"] = round(fdt, 4)
            row["fallback_messages_per_sec"] = (
                round(fstats.messages_sent / fdt, 1) if fdt else 0.0
            )
            row["fast_path_speedup"] = round(fdt / dt, 3) if dt else 0.0
        rows.append(row)

    return {
        "schema": SCHEMA_VERSION,
        "calibration_ops_per_sec": round(calibrate(), 1),
        "cells": rows,
    }


def render_bench(doc: dict[str, Any]) -> str:
    """Human-readable table for one benchmark document."""
    lines = [
        f"{'cell':<24} {'rounds':>8} {'messages':>10} {'sec':>8} "
        f"{'msgs/sec':>12} {'speedup':>8}"
    ]
    for row in doc["cells"]:
        speedup = row.get("fast_path_speedup")
        tail = f"{speedup:>7.2f}x" if speedup is not None else f"{'-':>8}"
        lines.append(
            f"{row['name']:<24} {row['rounds']:>8} {row['messages']:>10} "
            f"{row['seconds']:>8.3f} {row['messages_per_sec']:>12,.0f} {tail}"
        )
    return "\n".join(lines)
