"""Benchmark regression gating with machine-speed normalisation.

CI runs on whatever hardware the runner pool hands out, so absolute
messages/sec are not comparable across runs.  Two normalisations make
the committed baseline usable as a gate anyway:

* **calibration** (preferred): every benchmark document carries
  ``calibration_ops_per_sec``, a plain-Python arithmetic loop timed on
  the same machine as the cells.  Dividing each cell's throughput ratio
  by the calibration ratio cancels raw interpreter/CPU speed while
  leaving engine-specific regressions visible.
* **median** (fallback, when a document predates calibration): dividing
  by the median cell ratio cancels any uniform machine factor; a
  *single* cell regressing stands out against the others.  (A uniform
  regression of every cell is invisible to this mode — which is why
  calibration is preferred.)

A cell fails when its normalised throughput ratio drops below
``1 - threshold`` (default 0.25, i.e. >25% regression).
"""

from __future__ import annotations

from statistics import median
from typing import Any


def compare_benchmarks(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    threshold: float = 0.25,
) -> list[str]:
    """Compare two benchmark documents; return regression messages.

    Args:
        current: the freshly measured document (:func:`repro.perf.run_bench`).
        baseline: the committed reference document.
        threshold: allowed fractional drop in normalised throughput.

    Returns:
        One message per regressed cell (empty list = gate passes).  Cells
        present in only one document are ignored; if *no* cell is
        comparable, that is itself reported as a failure so a renamed
        matrix cannot silently disable the gate.
    """
    base_cells = {c["name"]: c for c in baseline.get("cells", [])}
    ratios: dict[str, float] = {}
    for cell in current.get("cells", []):
        ref = base_cells.get(cell["name"])
        if not ref:
            continue
        base_mps = ref.get("messages_per_sec") or 0.0
        cur_mps = cell.get("messages_per_sec") or 0.0
        if base_mps > 0 and cur_mps > 0:
            ratios[cell["name"]] = cur_mps / base_mps
    if not ratios:
        return [
            "no comparable cells between current run and baseline — "
            "regenerate the committed BENCH_engine.json"
        ]

    cur_cal = current.get("calibration_ops_per_sec") or 0.0
    base_cal = baseline.get("calibration_ops_per_sec") or 0.0
    if cur_cal > 0 and base_cal > 0:
        machine = cur_cal / base_cal
        mode = "calibration"
    else:
        machine = median(ratios.values())
        mode = "median"

    failures = []
    floor = 1.0 - threshold
    for name in sorted(ratios):
        normalised = ratios[name] / machine if machine > 0 else ratios[name]
        if normalised < floor:
            failures.append(
                f"{name}: throughput regressed to {normalised:.2f}x of baseline "
                f"(raw ratio {ratios[name]:.2f}, {mode}-normalised, "
                f"threshold {floor:.2f})"
            )
    return failures
