"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and flat JSONL.

:func:`chrome_trace` turns an :class:`~repro.sim.trace.EventTrace` into
the Chrome trace-event format that https://ui.perfetto.dev (and
``chrome://tracing``) opens directly:

* one track (thread) per node, named ``node <id>``;
* a complete span (``ph="X"``) per delivered message, on the *receiver's*
  track, covering the message's link traversal plus its wait at the
  saturated receiver (``args.wait`` carries the contention rounds);
* a complete span per outbox stint when a message waited to be sent
  (send contention);
* a complete span per operation from its request (round 0 in the
  one-shot executions) to its completion round, on the completing node's
  track;
* instant events (``ph="i"``) for injected faults — drops, duplicates,
  crashes, recoveries;
* global counter tracks (``ph="C"``) for per-round sends and deliveries.

Rounds are mapped to trace microseconds at a fixed scale
(:data:`ROUND_US` per round) so one engine round reads as one
millisecond on the Perfetto timeline.

Message spans are reconstructed without per-message identifiers: links
are FIFO, so the *k*-th ``send`` on a directed link pairs with the *k*-th
``deliver`` on it.  Messages still in flight when the trace ends (e.g. a
``RoundLimitExceeded`` run) are emitted as zero-length instant events
tagged ``unmatched``.

:func:`jsonl_lines` is the structured counterpart: one JSON object per
engine event, suitable for ``jq``/pandas post-processing.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict, deque
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import EventTrace

#: Trace microseconds per engine round (1 round renders as 1 ms).
ROUND_US = 1000

#: The single Chrome trace "process" all node tracks live under.
PID = 1

#: Trace-event kinds emitted by fault injection.
FAULT_EVENT_KINDS = ("drop", "duplicate", "crash", "recover")


def _span(
    name: str, ts: int, dur: int, tid: int, args: dict[str, Any]
) -> dict[str, Any]:
    return {
        "name": name,
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": PID,
        "tid": tid,
        "args": args,
    }


def _instant(name: str, ts: int, tid: int, args: dict[str, Any]) -> dict[str, Any]:
    return {
        "name": name,
        "ph": "i",
        "s": "t",
        "ts": ts,
        "pid": PID,
        "tid": tid,
        "args": args,
    }


def chrome_trace(trace: "EventTrace", *, label: str = "repro") -> dict[str, Any]:
    """Render ``trace`` as a Chrome trace-event JSON document.

    Args:
        trace: the engine event trace to export.
        label: process name shown in the Perfetto UI.

    Returns:
        A dict with ``traceEvents`` (list of trace-event objects) and
        ``displayTimeUnit``; serialize with ``json.dump`` or
        :func:`write_chrome_trace`.
    """
    events: list[dict[str, Any]] = []
    nodes: set[int] = set()
    # FIFO pairing state per directed link.
    sends: dict[tuple[int, int], deque[int]] = defaultdict(deque)
    enqueues: dict[tuple[int, int], deque[int]] = defaultdict(deque)
    sends_per_round: Counter[int] = Counter()
    delivers_per_round: Counter[int] = Counter()

    for e in trace.events:
        d = e.data
        if e.kind == "enqueue":
            key = (d["src"], d["dst"])
            enqueues[key].append(e.round)
            nodes.add(d["src"])
            nodes.add(d["dst"])
        elif e.kind == "send":
            key = (d["src"], d["dst"])
            sends[key].append(e.round)
            sends_per_round[e.round] += 1
            if enqueues[key]:
                t0 = enqueues[key].popleft()
                if e.round > t0:  # waited in the outbox: send contention
                    events.append(
                        _span(
                            f"outbox {d['kind']}",
                            t0 * ROUND_US,
                            (e.round - t0) * ROUND_US,
                            d["src"],
                            {"dst": d["dst"], "kind": d["kind"]},
                        )
                    )
        elif e.kind == "deliver":
            key = (d["src"], d["dst"])
            delivers_per_round[e.round] += 1
            sent = sends[key].popleft() if sends[key] else e.round
            events.append(
                _span(
                    f"{d['kind']} {d['src']}->{d['dst']}",
                    sent * ROUND_US,
                    max(1, (e.round - sent)) * ROUND_US,
                    d["dst"],
                    {"src": d["src"], "kind": d["kind"], "wait": d.get("wait", 0)},
                )
            )
        elif e.kind == "complete":
            nodes.add(d["node"])
            events.append(
                _span(
                    f"op {d['op']}",
                    0,
                    max(1, e.round) * ROUND_US,
                    d["node"],
                    {"op": repr(d["op"]), "delay": e.round},
                )
            )
        elif e.kind == "drop":
            events.append(
                _instant(
                    f"drop {d['src']}-x>{d['dst']}",
                    e.round * ROUND_US,
                    d["src"],
                    {"dst": d["dst"], "kind": d["kind"],
                     "reason": d.get("reason", "drop")},
                )
            )
            # A dropped message consumed its outbox slot; discard the
            # matching enqueue so later pairings stay aligned.
            key = (d["src"], d["dst"])
            if enqueues[key]:
                enqueues[key].popleft()
        elif e.kind == "duplicate":
            events.append(
                _instant(
                    f"duplicate {d['src']}->{d['dst']}",
                    e.round * ROUND_US,
                    d["src"],
                    {"dst": d["dst"], "kind": d["kind"]},
                )
            )
        elif e.kind in ("crash", "recover"):
            nodes.add(d["node"])
            events.append(
                _instant(e.kind, e.round * ROUND_US, d["node"], {"node": d["node"]})
            )
        elif e.kind == "violation":
            # Resilience-monitor verdicts have no single owning node; they
            # render on track 0 so the red marker is hard to miss.
            events.append(
                _instant(
                    f"violation {d.get('invariant', '?')}",
                    e.round * ROUND_US,
                    0,
                    {"invariant": d.get("invariant", "?"),
                     "detail": d.get("detail", "")},
                )
            )

    # Messages never delivered (truncated run): flag them rather than
    # silently dropping the sends.
    for (src, dst), pending in sorted(sends.items()):
        for sent in pending:
            events.append(
                _instant(
                    f"unmatched send {src}->{dst}",
                    sent * ROUND_US,
                    src,
                    {"dst": dst, "unmatched": True},
                )
            )
            nodes.add(src)

    for key in sends:
        nodes.add(key[0])
        nodes.add(key[1])

    meta: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "args": {"name": label},
        }
    ]
    for v in sorted(nodes):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": v,
                "args": {"name": f"node {v}"},
            }
        )

    counters: list[dict[str, Any]] = []
    for r in sorted(set(sends_per_round) | set(delivers_per_round)):
        counters.append(
            {
                "name": "messages/round",
                "ph": "C",
                "ts": r * ROUND_US,
                "pid": PID,
                "args": {
                    "sent": sends_per_round.get(r, 0),
                    "delivered": delivers_per_round.get(r, 0),
                },
            }
        )

    events.sort(key=lambda ev: (ev["ts"], ev["tid"], ev["name"]))
    return {
        "displayTimeUnit": "ms",
        "traceEvents": meta + counters + events,
    }


def write_chrome_trace(trace: "EventTrace", path: str, *, label: str = "repro") -> None:
    """Write :func:`chrome_trace` output to ``path`` (open in ui.perfetto.dev)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(trace, label=label), fh, indent=1, sort_keys=True)
        fh.write("\n")


def jsonl_lines(trace: "EventTrace") -> Iterator[str]:
    """One compact JSON object per engine event, in trace order.

    Each line has ``event`` (engine event type) and ``round`` plus the
    event's own fields; ``repr`` is applied to non-JSON-safe values
    (operation ids are tuples).
    """
    for e in trace.events:
        doc: dict[str, Any] = {"event": e.kind, "round": e.round}
        for k, v in e.data.items():
            if isinstance(v, (int, float, str, bool)) or v is None:
                doc[k] = v
            else:
                doc[k] = repr(v)
        yield json.dumps(doc, sort_keys=True)


def write_jsonl(trace: "EventTrace", path: str) -> int:
    """Write the JSONL event stream to ``path``; returns the line count."""
    n = 0
    with open(path, "w") as fh:
        for line in jsonl_lines(trace):
            fh.write(line)
            fh.write("\n")
            n += 1
    return n


__all__ = [
    "ROUND_US",
    "PID",
    "FAULT_EVENT_KINDS",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
]
