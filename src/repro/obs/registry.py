"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the single sink every instrumented layer
publishes into — the engine (message counters, per-op delay and link-wait
histograms, per-round in-flight/backlog gauges), the fault injector
(crash counters), and the reliable-delivery wrapper (retransmit/ack
accounting).  The registry is attached explicitly
(``SynchronousNetwork(..., metrics=registry)`` or the runners'
``metrics=`` kwarg); when it is absent the instrumented call sites reduce
to a single ``is not None`` check, so a metrics-free run costs nothing
and is byte-for-byte identical to an uninstrumented one.

Histogram buckets are *fixed* (geometric, powers of two by default) so
exported metrics are comparable across runs and across protocols — the
flood-vs-arrow separation shows up as mass in different buckets, not as
different bucket edges.

The registry is deliberately engine-agnostic: :mod:`repro.sim` never
imports this module, it only calls the small duck-typed surface
(:meth:`MetricsRegistry.inc`, :meth:`~MetricsRegistry.set_gauge`,
:meth:`~MetricsRegistry.observe`, :meth:`~MetricsRegistry.sample`).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Iterator

#: Default histogram bucket upper edges, in rounds: 0, then powers of two
#: up to 2^20.  A value ``v`` lands in the first bucket whose edge is
#: ``>= v``; values beyond the last edge land in the overflow bucket.
#: These edges are part of the exported-metrics contract — tests pin them.
DEFAULT_ROUND_BUCKETS: tuple[int, ...] = (0,) + tuple(
    1 << i for i in range(21)
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def to_dict(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.high = 0

    def set(self, value: int | float) -> None:
        """Record the current value (and update the high-water mark)."""
        self.value = value
        if value > self.high:
            self.high = value

    def to_dict(self) -> dict[str, Any]:
        return {"value": self.value, "high": self.high}


class Histogram:
    """A fixed-bucket histogram of non-negative integer observations.

    Args:
        name: metric name.
        buckets: ascending upper bucket edges.  Observation ``v`` counts
            in the first bucket with edge ``>= v``; larger values count
            in a final overflow bucket, so ``len(counts) ==
            len(buckets) + 1``.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: tuple[int, ...] = DEFAULT_ROUND_BUCKETS
    ) -> None:
        if list(buckets) != sorted(set(buckets)):
            raise ValueError(f"bucket edges must be strictly ascending: {buckets}")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int | float:
        """Approximate ``q``-quantile (``0 < q <= 1``) from bucket edges.

        Returns the upper edge of the bucket containing the quantile
        (``max`` for the overflow bucket), which over-approximates by at
        most one bucket width — enough to separate growth classes.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.count == 0:
            return 0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.max if self.max is not None else 0
        return self.max if self.max is not None else 0  # pragma: no cover

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters, gauges, histograms, and per-round samples.

    Instruments publish through the get-or-create accessors
    (:meth:`counter`/:meth:`gauge`/:meth:`histogram`) or the one-shot
    conveniences (:meth:`inc`/:meth:`set_gauge`/:meth:`observe`) that the
    engine's hot paths use.  :meth:`sample` appends to a per-round time
    series (e.g. in-flight messages per round), kept separate from gauges
    because a series grows with the run.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, list[tuple[int, int | float]]] = {}

    # ------------------------------------------------------- get-or-create

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: tuple[int, ...] = DEFAULT_ROUND_BUCKETS
    ) -> Histogram:
        """The histogram called ``name``, created on first use.

        Raises:
            ValueError: if the histogram exists with different buckets.
        """
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, buckets)
        elif h.buckets != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already exists with buckets {h.buckets}"
            )
        return h

    # ------------------------------------------------- one-shot publishers

    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: int | float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: int | float) -> None:
        """Record ``value`` into histogram ``name`` (default buckets)."""
        self.histogram(name).observe(value)

    def sample(self, name: str, t: int, value: int | float) -> None:
        """Append ``(t, value)`` to the time series called ``name``."""
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = []
        s.append((t, value))

    # -------------------------------------------------------------- export

    def names(self) -> Iterator[str]:
        """All metric names, sorted."""
        yield from sorted(
            set(self.counters) | set(self.gauges)
            | set(self.histograms) | set(self.series)
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe document of every published metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.to_dict() for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
            "series": {
                n: [[t, v] for t, v in s] for n, s in sorted(self.series.items())
            },
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as stable, indented JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def run_stats_view(self):
        """The engine-published metrics as a ``RunStats`` (thin view).

        Demonstrates that the instrumented call sites fully cover the
        legacy aggregate: for any instrumented run this equals the
        engine's own ``net.stats``.
        """
        from repro.sim.network import RunStats

        c = self.counters
        g = self.gauges

        def cval(name: str) -> int:
            cc = c.get(name)
            return cc.value if cc is not None else 0

        def ghigh(name: str) -> int:
            gg = g.get(name)
            return int(gg.high) if gg is not None else 0

        return RunStats(
            rounds=int(g["engine.rounds"].value) if "engine.rounds" in g else 0,
            messages_sent=cval("engine.messages_sent"),
            messages_delivered=cval("engine.messages_delivered"),
            max_send_backlog=ghigh("engine.send_backlog"),
            max_recv_backlog=ghigh("engine.recv_backlog"),
            total_link_wait=cval("engine.link_wait_total"),
            messages_dropped=cval("engine.messages_dropped"),
            messages_duplicated=cval("engine.messages_duplicated"),
            node_crashes=cval("faults.node_crashes"),
        )


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_ROUND_BUCKETS",
]
