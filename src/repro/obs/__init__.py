"""Observability: metrics, trace export, and engine profiling.

The package has three sibling layers, all opt-in and all zero-cost when
not attached:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry`: counters,
  gauges, and fixed-bucket histograms that the engine, fault injector,
  and reliable-delivery wrapper publish into
  (``SynchronousNetwork(..., metrics=reg)`` or the runners' ``metrics=``
  kwarg);
* :mod:`repro.obs.export` — :func:`chrome_trace` / :func:`jsonl_lines`:
  turn an :class:`~repro.sim.trace.EventTrace` into Chrome/Perfetto
  ``trace_event`` JSON (open it at https://ui.perfetto.dev) or a flat
  JSONL event stream;
* :mod:`repro.obs.profile` — :class:`PhaseProfiler`: wall-clock timing
  of the engine's per-round phases (``profiler=`` kwarg), reported as a
  hottest-first table.

CLI surfaces: ``python -m repro trace <proto>``, ``python -m repro
profile <proto>``, and ``--metrics-json``/``--stats`` on
``run``/``arrow``/``count``.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    FAULT_EVENT_KINDS,
    ROUND_US,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.registry import (
    DEFAULT_ROUND_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_ROUND_BUCKETS",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "ROUND_US",
    "FAULT_EVENT_KINDS",
    "PhaseProfiler",
]
