"""Wall-clock profiling of the engine's per-round phases.

A :class:`PhaseProfiler` is attached to a network
(``SynchronousNetwork(..., profiler=prof)`` or a runner's ``profiler=``
kwarg).  The engine then times each phase of every executed round — send
drain, link advance + delivery, node wakeups, fault-injector ticks, and
the protocol's own ``on_receive`` compute (reported nested inside the
receive phase) — and the profiler aggregates totals, call counts, and
maxima per phase.  Like the metrics registry, the hook is zero-cost when
absent: the engine checks one local against ``None`` per phase.

The profiler observes wall time only; it never feeds anything back into
the engine, so a profiled run is event-for-event identical to an
unprofiled one (the determinism sanitizer passes with it attached).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

#: Phases reported nested inside another phase (their time is already
#: included in the parent's total, so shares are computed against the
#: top-level phases only).
NESTED_PHASES = frozenset({"node.on_receive"})


class PhaseProfiler:
    """Aggregates wall-clock time per engine phase.

    Attributes:
        rounds: rounds the engine actually executed (idle jumps skip
            rounds, so this can be far below the final round number).
    """

    __slots__ = ("_acc", "rounds", "wall")

    def __init__(self) -> None:
        #: phase -> [total_seconds, calls, max_seconds]
        self._acc: dict[str, list[float]] = {}
        self.rounds = 0
        self.wall = 0.0

    # -------------------------------------------------- engine-facing API

    def clock(self) -> float:
        """The timestamp source (monotonic seconds)."""
        return perf_counter()

    def add(self, phase: str, seconds: float) -> None:
        """Credit ``seconds`` of wall time to ``phase``."""
        acc = self._acc.get(phase)
        if acc is None:
            self._acc[phase] = [seconds, 1, seconds]
            return
        acc[0] += seconds
        acc[1] += 1
        if seconds > acc[2]:
            acc[2] = seconds

    def tick_round(self) -> None:
        """Count one executed engine round."""
        self.rounds += 1

    # ------------------------------------------------------------ reports

    def phases(self) -> list[dict[str, Any]]:
        """Per-phase rows sorted by total time, hottest first."""
        top_total = sum(
            acc[0] for name, acc in self._acc.items() if name not in NESTED_PHASES
        )
        rows = []
        for name, (total, calls, mx) in self._acc.items():
            rows.append(
                {
                    "phase": name,
                    "total_s": total,
                    "calls": int(calls),
                    "mean_us": (total / calls) * 1e6 if calls else 0.0,
                    "max_us": mx * 1e6,
                    "share": (total / top_total) if top_total else 0.0,
                    "nested": name in NESTED_PHASES,
                }
            )
        rows.sort(key=lambda r: (-r["total_s"], r["phase"]))
        return rows

    def hottest(self) -> str | None:
        """Name of the phase with the largest total time (None if empty)."""
        rows = self.phases()
        return rows[0]["phase"] if rows else None

    def render(self) -> str:
        """The phase table as aligned text, hottest phase first."""
        rows = self.phases()
        if not rows:
            return "(no phases recorded)"
        header = (
            f"{'phase':<18} {'total ms':>10} {'calls':>9} "
            f"{'mean us':>9} {'max us':>9} {'share':>7}"
        )
        lines = [header, "-" * len(header)]
        for r in rows:
            name = r["phase"] + (" *" if r["nested"] else "")
            lines.append(
                f"{name:<18} {r['total_s'] * 1e3:>10.3f} {r['calls']:>9d} "
                f"{r['mean_us']:>9.2f} {r['max_us']:>9.2f} "
                f"{r['share'] * 100:>6.1f}%"
            )
        lines.append(
            f"rounds executed: {self.rounds}   wall: {self.wall * 1e3:.3f} ms"
            "   (* nested inside receive)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe profile document."""
        return {
            "rounds": self.rounds,
            "wall_s": self.wall,
            "phases": self.phases(),
        }


__all__ = ["PhaseProfiler", "NESTED_PHASES"]
