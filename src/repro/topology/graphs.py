"""Constructors for the graph families in the paper.

Vertex labelling conventions (used throughout tests and experiments):

* ``path_graph`` / ``ring_graph``: vertices in path/ring order.
* ``star_graph``: vertex 0 is the hub.
* ``mesh_graph`` / ``torus_graph``: row-major order over the given dims.
* ``hypercube_graph``: vertex ids are the corner bit strings.
* ``perfect_mary_tree`` / ``binary_tree_graph``: heap order — the children
  of vertex ``v`` are ``m*v + 1 .. m*v + m``, so vertex 0 is the root.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.topology.base import Graph, TopologyError


def path_graph(n: int) -> Graph:
    """The list (path) on ``n`` vertices: the paper's canonical high-diameter graph."""
    return Graph.from_edges(n, ((i, i + 1) for i in range(n - 1)), name=f"path({n})")


def ring_graph(n: int) -> Graph:
    """The cycle on ``n`` vertices (n >= 3)."""
    if n < 3:
        raise TopologyError(f"ring needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(n, edges, name=f"ring({n})")


def complete_graph(n: int) -> Graph:
    """The complete graph K_n: the paper's most powerful communication graph."""
    edges = ((u, v) for u in range(n) for v in range(u + 1, n))
    return Graph.from_edges(n, edges, name=f"complete({n})")


def star_graph(n: int) -> Graph:
    """The star S_n with hub 0: the paper's Section-5 counterexample topology."""
    if n < 2:
        raise TopologyError(f"star needs n >= 2, got {n}")
    return Graph.from_edges(n, ((0, v) for v in range(1, n)), name=f"star({n})")


def _mixed_radix_strides(dims: Sequence[int]) -> list[int]:
    strides = [1] * len(dims)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]
    return strides


def mesh_graph(dims: Sequence[int]) -> Graph:
    """The d-dimensional mesh with side lengths ``dims`` (row-major ids).

    ``mesh_graph([k, k])`` is the paper's two-dimensional mesh with
    diameter ``2(k-1) = Theta(sqrt(n))``.
    """
    dims = list(dims)
    if not dims or any(d < 1 for d in dims):
        raise TopologyError(f"mesh dims must be positive, got {dims}")
    n = math.prod(dims)
    strides = _mixed_radix_strides(dims)
    edges = []
    for v in range(n):
        rem = v
        coord = []
        for s, d in zip(strides, dims):
            coord.append(rem // s)
            rem %= s
        for axis, c in enumerate(coord):
            if c + 1 < dims[axis]:
                edges.append((v, v + strides[axis]))
    label = "x".join(str(d) for d in dims)
    return Graph.from_edges(n, edges, name=f"mesh({label})")


def torus_graph(dims: Sequence[int]) -> Graph:
    """The d-dimensional torus (mesh with wraparound edges)."""
    dims = list(dims)
    if not dims or any(d < 3 for d in dims):
        raise TopologyError(f"torus dims must be >= 3, got {dims}")
    n = math.prod(dims)
    strides = _mixed_radix_strides(dims)
    edges = set()
    for v in range(n):
        rem = v
        coord = []
        for s, d in zip(strides, dims):
            coord.append(rem // s)
            rem %= s
        for axis, c in enumerate(coord):
            nxt = (c + 1) % dims[axis]
            u = v + (nxt - c) * strides[axis]
            edges.add((min(u, v), max(u, v)))
    label = "x".join(str(d) for d in dims)
    return Graph.from_edges(n, edges, name=f"torus({label})")


def hypercube_graph(d: int) -> Graph:
    """The hypercube Q_d on ``2^d`` vertices; ids are the corner bit strings."""
    if d < 1:
        raise TopologyError(f"hypercube needs d >= 1, got {d}")
    n = 1 << d
    edges = ((v, v ^ (1 << b)) for v in range(n) for b in range(d) if v < v ^ (1 << b))
    return Graph.from_edges(n, edges, name=f"hypercube({d})")


def perfect_mary_tree(m: int, depth: int) -> Graph:
    """The perfect m-ary tree of the given depth (all leaves at depth ``depth``).

    Vertices are heap-ordered: the children of ``v`` are
    ``m*v + 1 .. m*v + m``.  The tree has ``(m^(depth+1) - 1) / (m - 1)``
    vertices for ``m >= 2``.
    """
    if m < 2:
        raise TopologyError(f"perfect m-ary tree needs m >= 2, got {m}")
    if depth < 0:
        raise TopologyError(f"depth must be >= 0, got {depth}")
    n = (m ** (depth + 1) - 1) // (m - 1)
    internal = (m**depth - 1) // (m - 1)
    edges = ((v, m * v + i) for v in range(internal) for i in range(1, m + 1))
    return Graph.from_edges(n, edges, name=f"mary_tree(m={m},d={depth})")


def binary_tree_graph(n: int) -> Graph:
    """The heap-shaped binary tree on ``n`` vertices (leaf depths differ <= 1).

    This is the "perfect binary tree" in the paper's sense (Section 4.2):
    depth ``floor(log2 n)`` and all leaves within one level of each other.
    """
    if n < 1:
        raise TopologyError(f"binary tree needs n >= 1, got {n}")
    edges = []
    for v in range(n):
        for c in (2 * v + 1, 2 * v + 2):
            if c < n:
                edges.append((v, c))
    return Graph.from_edges(n, edges, name=f"binary_tree({n})")


def caterpillar_graph(spine: int, legs_per_vertex: int = 1) -> Graph:
    """A caterpillar: a path spine with ``legs_per_vertex`` leaves per spine vertex.

    High diameter (``Theta(spine)``) with a constant-degree spanning tree —
    the graph family of Theorem 4.13.
    """
    if spine < 2:
        raise TopologyError(f"caterpillar needs spine >= 2, got {spine}")
    if legs_per_vertex < 0:
        raise TopologyError("legs_per_vertex must be >= 0")
    n = spine * (1 + legs_per_vertex)
    edges = [(i, i + 1) for i in range(spine - 1)]
    leaf = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((i, leaf))
            leaf += 1
    return Graph.from_edges(n, edges, name=f"caterpillar({spine},{legs_per_vertex})")


def lollipop_graph(clique: int, tail: int) -> Graph:
    """A clique on ``clique`` vertices with a path of ``tail`` vertices attached.

    Diameter ``Theta(tail)`` with dense local structure; another
    high-diameter family for Theorem 4.13 experiments.
    """
    if clique < 1 or tail < 1:
        raise TopologyError(f"lollipop needs clique,tail >= 1, got {clique},{tail}")
    n = clique + tail
    edges = [(u, v) for u in range(clique) for v in range(u + 1, clique)]
    edges.append((clique - 1, clique))
    edges.extend((clique + i, clique + i + 1) for i in range(tail - 1))
    return Graph.from_edges(n, edges, name=f"lollipop({clique},{tail})")


def random_regular_graph(n: int, d: int, seed: int = 0, max_tries: int = 200) -> Graph:
    """A uniformly sampled simple connected d-regular graph (pairing model).

    Args:
        n: vertex count (``n * d`` must be even, ``d < n``).
        d: degree.
        seed: RNG seed (deterministic output for a fixed seed).
        max_tries: resampling budget before giving up.

    Raises:
        TopologyError: on infeasible parameters or if no simple connected
            sample is found within ``max_tries`` attempts.
    """
    if d < 1 or d >= n or (n * d) % 2 != 0:
        raise TopologyError(f"no {d}-regular graph on {n} vertices")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n), d)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edges = set()
        ok = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if not ok:
            continue
        g = Graph.from_edges(n, edges, name=f"random_regular({n},{d},seed={seed})")
        from repro.topology.properties import is_connected

        if is_connected(g):
            return g
    raise TopologyError(
        f"could not sample a simple connected {d}-regular graph on {n} "
        f"vertices in {max_tries} tries"
    )
