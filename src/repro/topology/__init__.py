"""Interconnection topologies studied by the paper.

Constructors for every graph family the paper's theorems mention — the
list (path), complete graph, d-dimensional mesh, hypercube, perfect m-ary
tree, star — plus auxiliary families used by the high-diameter experiments
(ring, torus, caterpillar, lollipop, random regular), explicit Hamilton
path constructions (Lemma 4.6), spanning-tree machinery (Section 4), and
graph-property computations (diameter for Theorem 3.6).
"""

from repro.topology.base import Graph
from repro.topology.graphs import (
    path_graph,
    ring_graph,
    complete_graph,
    star_graph,
    mesh_graph,
    torus_graph,
    hypercube_graph,
    perfect_mary_tree,
    caterpillar_graph,
    lollipop_graph,
    random_regular_graph,
    binary_tree_graph,
)
from repro.topology.hamilton import (
    hamilton_path_complete,
    hamilton_path_mesh,
    hamilton_path_hypercube,
    hamilton_path_of,
    is_hamilton_path,
)
from repro.topology.spanning import (
    SpanningTree,
    bfs_spanning_tree,
    dfs_spanning_tree,
    path_spanning_tree,
    star_spanning_tree,
    embedded_binary_tree,
    embedded_mary_tree,
    validate_spanning_tree,
)
from repro.topology.properties import (
    bfs_distances,
    all_pairs_distances,
    eccentricity,
    diameter,
    max_degree,
    is_connected,
    degree_histogram,
)

__all__ = [
    "Graph",
    "path_graph",
    "ring_graph",
    "complete_graph",
    "star_graph",
    "mesh_graph",
    "torus_graph",
    "hypercube_graph",
    "perfect_mary_tree",
    "caterpillar_graph",
    "lollipop_graph",
    "random_regular_graph",
    "binary_tree_graph",
    "hamilton_path_complete",
    "hamilton_path_mesh",
    "hamilton_path_hypercube",
    "hamilton_path_of",
    "is_hamilton_path",
    "SpanningTree",
    "bfs_spanning_tree",
    "dfs_spanning_tree",
    "path_spanning_tree",
    "star_spanning_tree",
    "embedded_binary_tree",
    "embedded_mary_tree",
    "validate_spanning_tree",
    "bfs_distances",
    "all_pairs_distances",
    "eccentricity",
    "diameter",
    "max_degree",
    "is_connected",
    "degree_histogram",
]
