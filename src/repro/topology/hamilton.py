"""Explicit Hamilton path constructions (Lemma 4.6 of the paper).

Theorem 4.5 runs the arrow protocol on a Hamilton path chosen as the
spanning tree; Lemma 4.6 proves the complete graph, the d-dimensional
mesh, and the hypercube all have one.  This module materialises those
existence proofs as constructions:

* complete graph — any vertex order;
* d-dimensional mesh — the boustrophedon (snake) order, which is exactly
  the inductive "stack (d-1)-dimensional meshes and alternate direction"
  construction in the proof of Lemma 4.6;
* hypercube — the binary-reflected Gray code, the standard inductive
  construction.

A generic backtracking search is included for validating small ad-hoc
graphs in tests.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.topology.base import Graph, TopologyError


def hamilton_path_complete(n: int) -> list[int]:
    """A Hamilton path of K_n (any vertex order works; we use 0..n-1)."""
    if n < 1:
        raise TopologyError(f"need n >= 1, got {n}")
    return list(range(n))


def hamilton_path_mesh(dims: Sequence[int]) -> list[int]:
    """The boustrophedon Hamilton path of the d-dimensional mesh.

    Mirrors the inductive proof of Lemma 4.6: a d-dimensional mesh is a
    stack of (d-1)-dimensional meshes; traverse each layer's path in
    alternating direction so consecutive layer endpoints are adjacent.
    Vertex ids are row-major, matching :func:`repro.topology.mesh_graph`.
    """
    dims = list(dims)
    if not dims or any(d < 1 for d in dims):
        raise TopologyError(f"mesh dims must be positive, got {dims}")

    def build(ds: list[int]) -> list[int]:
        if len(ds) == 1:
            return list(range(ds[0]))
        sub = build(ds[1:])
        stride = math.prod(ds[1:])
        order: list[int] = []
        for layer in range(ds[0]):
            chunk = sub if layer % 2 == 0 else sub[::-1]
            order.extend(layer * stride + v for v in chunk)
        return order

    return build(dims)


def hamilton_path_hypercube(d: int) -> list[int]:
    """The Gray-code Hamilton path of the hypercube Q_d.

    ``gray(i) = i XOR (i >> 1)`` visits every corner, changing exactly one
    bit per step — each step is a hypercube edge.
    """
    if d < 1:
        raise TopologyError(f"need d >= 1, got {d}")
    return [i ^ (i >> 1) for i in range(1 << d)]


def is_hamilton_path(graph: Graph, order: Sequence[int]) -> bool:
    """Whether ``order`` is a Hamilton path of ``graph``.

    Requires every vertex exactly once and every consecutive pair to be an
    edge.
    """
    if sorted(order) != list(range(graph.n)):
        return False
    return all(graph.has_edge(order[i], order[i + 1]) for i in range(len(order) - 1))


def find_hamilton_path(graph: Graph, node_budget: int = 2_000_000) -> list[int] | None:
    """Backtracking search for a Hamilton path (small graphs only).

    Tries every start vertex with a degree-ordered depth-first search.
    Returns ``None`` when no path exists or the search budget is spent.
    Intended for validating constructions on small instances, not for
    production-size graphs (the problem is NP-hard).
    """
    n = graph.n
    if n == 1:
        return [0]
    budget = node_budget

    def extend(pathv: list[int], used: set[int]) -> list[int] | None:
        nonlocal budget
        budget -= 1
        if budget <= 0:
            return None
        if len(pathv) == n:
            return pathv
        tip = pathv[-1]
        # Prefer low-degree-remaining neighbors (Warnsdorff-style) to
        # keep the search shallow on structured graphs.
        cands = [v for v in graph.adj[tip] if v not in used]
        cands.sort(key=lambda v: sum(1 for w in graph.adj[v] if w not in used))
        for v in cands:
            used.add(v)
            pathv.append(v)
            out = extend(pathv, used)
            if out is not None:
                return out
            pathv.pop()
            used.remove(v)
        return None

    starts = sorted(graph.vertices(), key=graph.degree)
    for s in starts:
        got = extend([s], {s})
        if got is not None:
            return got
        if budget <= 0:
            return None
    return None


def hamilton_path_of(graph: Graph) -> list[int]:
    """A Hamilton path for a recognised family, else backtracking search.

    Recognition is by the constructor-assigned ``name`` prefix
    (``complete``, ``mesh``, ``hypercube``, ``path``); other graphs fall
    back to :func:`find_hamilton_path`.

    Raises:
        TopologyError: if no Hamilton path is found.
    """
    name = graph.name
    if name.startswith("complete("):
        return hamilton_path_complete(graph.n)
    if name.startswith("path("):
        return list(range(graph.n))
    if name.startswith("mesh("):
        dims = [int(x) for x in name[len("mesh(") : -1].split("x")]
        return hamilton_path_mesh(dims)
    if name.startswith("hypercube("):
        d = int(name[len("hypercube(") : -1])
        return hamilton_path_hypercube(d)
    got = find_hamilton_path(graph)
    if got is None:
        raise TopologyError(f"no Hamilton path found for {graph!r}")
    return got
