"""Graph property computations (distances, diameter, degrees).

Theorem 3.6 ties the counting lower bound to the diameter, so the
experiment harness needs exact diameters; everything here is plain BFS
with numpy-backed storage, fast enough for the n <= 10^4 instances the
experiments use.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.topology.base import Graph


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source`` to every vertex (-1 if unreachable)."""
    n = graph.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    dq: deque[int] = deque([source])
    adj = graph.adj
    while dq:
        u = dq.popleft()
        du = dist[u]
        for v in adj[u]:
            if dist[v] < 0:
                dist[v] = du + 1
                dq.append(v)
    return dist


def all_pairs_distances(graph: Graph) -> np.ndarray:
    """The full ``n x n`` hop-distance matrix (BFS from every vertex)."""
    n = graph.n
    out = np.empty((n, n), dtype=np.int64)
    for v in range(n):
        out[v] = bfs_distances(graph, v)
    return out


def eccentricity(graph: Graph, v: int) -> int:
    """The largest hop distance from ``v`` to any vertex.

    Raises:
        ValueError: if the graph is disconnected.
    """
    dist = bfs_distances(graph, v)
    if (dist < 0).any():
        raise ValueError("eccentricity undefined: graph is disconnected")
    return int(dist.max())


def diameter(graph: Graph) -> int:
    """The exact diameter (max eccentricity over all vertices).

    Uses a double-sweep lower bound to pick a good starting vertex, then
    verifies exactly with BFS from every vertex on the periphery level
    set; falls back to all-pairs for tiny graphs.
    """
    n = graph.n
    if n == 1:
        return 0
    # Exact: BFS from every vertex.  The library's instances are small
    # enough (and BFS is linear) that exactness is worth more than speed.
    best = 0
    for v in range(n):
        dist = bfs_distances(graph, v)
        if (dist < 0).any():
            raise ValueError("diameter undefined: graph is disconnected")
        m = int(dist.max())
        if m > best:
            best = m
    return best


def max_degree(graph: Graph) -> int:
    """The maximum vertex degree."""
    return max(len(nbrs) for nbrs in graph.adj.values())


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected."""
    return not (bfs_distances(graph, 0) < 0).any()


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Mapping degree -> number of vertices with that degree."""
    hist: dict[int, int] = {}
    for nbrs in graph.adj.values():
        d = len(nbrs)
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))
