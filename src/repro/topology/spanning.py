"""Spanning trees of communication graphs.

The arrow protocol runs on a spanning tree chosen at initialization
(Section 4 of the paper); the quality of the tree determines the queuing
upper bound:

* a Hamilton path as spanning tree gives CQ = O(n) (Theorem 4.5);
* a perfect m-ary spanning tree gives CQ = O(n) (Theorem 4.12);
* any constant-degree spanning tree gives CQ = O(n log n) (Corollary 4.2).

:class:`SpanningTree` binds a :class:`~repro.tree.RootedTree` to the host
graph it spans, with validation that every tree edge is a graph edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.topology.base import Graph, TopologyError
from repro.topology.hamilton import hamilton_path_of
from repro.tree import RootedTree


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree of a host graph.

    Attributes:
        graph: the host communication graph.
        tree: the rooted tree; every tree edge must exist in ``graph``.
        label: how the tree was constructed (for experiment reports).
    """

    graph: Graph
    tree: RootedTree
    label: str = "spanning"

    def __post_init__(self) -> None:
        validate_spanning_tree(self.graph, self.tree)

    @property
    def root(self) -> int:
        """Root vertex of the tree."""
        return self.tree.root

    @property
    def n(self) -> int:
        """Number of vertices (same as the host graph)."""
        return self.tree.n

    def max_degree(self) -> int:
        """Maximum degree within the tree (drives arrow's expanded steps)."""
        return self.tree.max_degree()

    def as_graph(self) -> Graph:
        """The tree itself as a :class:`Graph` (for running protocols on it)."""
        return Graph.from_edges(self.n, self.tree.edges(), name=f"tree[{self.label}]")


def validate_spanning_tree(graph: Graph, tree: RootedTree) -> None:
    """Check that ``tree`` spans ``graph`` using only graph edges.

    Raises:
        TopologyError: on vertex-set mismatch or a tree edge missing from
            the graph.
    """
    if tree.n != graph.n:
        raise TopologyError(f"tree has {tree.n} vertices, graph has {graph.n}")
    for p, c in tree.edges():
        if not graph.has_edge(p, c):
            raise TopologyError(f"tree edge ({p},{c}) is not a graph edge")


def bfs_spanning_tree(graph: Graph, root: int = 0) -> SpanningTree:
    """Breadth-first spanning tree rooted at ``root`` (shortest-path tree)."""
    from repro.topology.properties import bfs_distances  # local: avoid cycle

    dist = bfs_distances(graph, root)
    if (dist < 0).any():
        raise TopologyError("graph is disconnected; no spanning tree")
    par = list(range(graph.n))
    # Assign each vertex the smallest-id neighbor one level closer.
    for v in range(graph.n):
        if v == root:
            continue
        for u in graph.adj[v]:
            if dist[u] == dist[v] - 1:
                par[v] = u
                break
    tree = RootedTree(par, root=root)
    return SpanningTree(graph, tree, label=f"bfs(root={root})")


def dfs_spanning_tree(graph: Graph, root: int = 0) -> SpanningTree:
    """Depth-first spanning tree rooted at ``root`` (tends to be deep)."""
    n = graph.n
    par = list(range(n))
    seen = [False] * n
    # Mark on pop (not on push) so the tree is a genuine depth-first tree:
    # on K_n this yields a Hamilton path, not a star.
    stack: list[tuple[int, int]] = [(root, root)]
    while stack:
        v, p = stack.pop()
        if seen[v]:
            continue
        seen[v] = True
        par[v] = p
        for u in reversed(graph.adj[v]):
            if not seen[u]:
                stack.append((u, v))
    if not all(seen):
        raise TopologyError("graph is disconnected; no spanning tree")
    tree = RootedTree(par, root=root)
    return SpanningTree(graph, tree, label=f"dfs(root={root})")


def path_spanning_tree(graph: Graph, order: Sequence[int] | None = None) -> SpanningTree:
    """A Hamilton-path spanning tree (Theorem 4.5's choice).

    Args:
        graph: the host graph.
        order: an explicit Hamilton path; when omitted, a construction is
            found via :func:`repro.topology.hamilton.hamilton_path_of`.

    Raises:
        TopologyError: if ``order`` is not a Hamilton path of ``graph``.
    """
    if order is None:
        order = hamilton_path_of(graph)
    from repro.topology.hamilton import is_hamilton_path

    if not is_hamilton_path(graph, order):
        raise TopologyError("given order is not a Hamilton path of the graph")
    tree = RootedTree.from_path(list(order))
    return SpanningTree(graph, tree, label="hamilton_path")


def star_spanning_tree(graph: Graph, hub: int = 0) -> SpanningTree:
    """The depth-1 star tree rooted at ``hub`` (requires hub adjacent to all).

    This is the natural (and only) spanning tree of the star graph, and a
    legal — maximally contended — choice on the complete graph.
    """
    n = graph.n
    par = list(range(n))
    for v in range(n):
        if v != hub:
            if not graph.has_edge(hub, v):
                raise TopologyError(f"hub {hub} not adjacent to {v}")
            par[v] = hub
    return SpanningTree(graph, RootedTree(par, root=hub), label=f"star(hub={hub})")


def embedded_mary_tree(graph: Graph, m: int, root: int = 0) -> SpanningTree:
    """The heap-ordered m-ary tree over vertex ids, as a spanning tree.

    Vertex ``v``'s children are ``m*v + 1 .. m*v + m`` (when < n).  Valid
    whenever all heap edges exist in the graph — always on the complete
    graph (the embedding used for Theorem 4.12 experiments on K_n), and by
    construction on :func:`repro.topology.perfect_mary_tree` graphs.

    Raises:
        TopologyError: if a heap edge is missing from the graph.
    """
    if m < 2:
        raise TopologyError(f"m must be >= 2, got {m}")
    if root != 0:
        raise TopologyError("heap embedding requires root 0")
    n = graph.n
    par = list(range(n))
    for v in range(1, n):
        p = (v - 1) // m
        if not graph.has_edge(p, v):
            raise TopologyError(f"heap edge ({p},{v}) is not a graph edge")
        par[v] = p
    return SpanningTree(graph, RootedTree(par, root=0), label=f"mary(m={m})")


def embedded_binary_tree(graph: Graph, root: int = 0) -> SpanningTree:
    """The heap-ordered binary spanning tree (Section 4.2's perfect binary tree)."""
    return embedded_mary_tree(graph, 2, root=root)
