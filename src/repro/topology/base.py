"""The Graph value type shared by the whole library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


class TopologyError(ValueError):
    """Raised for malformed graph constructions or invalid parameters."""


@dataclass(frozen=True)
class Graph:
    """An undirected simple graph on vertices ``0 .. n-1``.

    The representation is an immutable adjacency mapping with sorted
    neighbor tuples; all the library's graphs are built through
    :meth:`from_edges` which validates simplicity (no loops, no parallel
    edges) and vertex labelling.

    Attributes:
        adj: mapping vertex -> sorted tuple of neighbors.
        name: human-readable family label, e.g. ``"mesh(8x8)"``.
    """

    adj: Mapping[int, tuple[int, ...]]
    name: str = field(default="graph", compare=False)

    @staticmethod
    def from_edges(n: int, edges: Iterable[tuple[int, int]], name: str = "graph") -> "Graph":
        """Build a graph on ``{0..n-1}`` from an edge list.

        Raises:
            TopologyError: on self-loops, out-of-range endpoints, or n < 1.
        """
        if n < 1:
            raise TopologyError(f"graph needs at least one vertex, got n={n}")
        adj: dict[int, set[int]] = {v: set() for v in range(n)}
        for u, v in edges:
            if u == v:
                raise TopologyError(f"self-loop at vertex {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(f"edge ({u},{v}) out of range for n={n}")
            adj[u].add(v)
            adj[v].add(u)
        return Graph({v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}, name=name)

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.adj)

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self.adj.values()) // 2

    def vertices(self) -> range:
        """The vertex set as ``range(n)``."""
        return range(self.n)

    def edges(self) -> Iterator[tuple[int, int]]:
        """All edges as ordered pairs ``(u, v)`` with ``u < v``."""
        for u in sorted(self.adj):
            for v in self.adj[u]:
                if u < v:
                    yield (u, v)

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self.adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self.adj.get(u, ())

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self.adj[v]

    def __repr__(self) -> str:
        return f"Graph(name={self.name!r}, n={self.n}, m={self.m})"
