"""The model-conformance rule catalog and finding container.

The simulator enforces the paper's Section 2.1 model at *runtime*
(neighbor-only sends, per-round capacities, single completion per
operation).  The linter enforces the same discipline *statically*, before
a simulation ever runs, over every :class:`repro.sim.Node` subclass it
can find.  Each rule has a stable identifier ``R1..R5`` used in findings,
tests, and the documentation (``docs/LINT.md``):

R1  engine-internals
    Protocol code reaches into private engine state (``ctx._network``,
    ``_enqueue_send``, ...) instead of going through the
    :class:`~repro.sim.node.NodeContext` API.  Anything the context does
    not expose is not part of the model.

R2  send-discipline
    ``ctx.send`` is invoked from code not reachable from the engine
    callbacks (``on_start`` / ``on_receive`` / ``on_wake``), or with a
    destination that is statically known not to be a neighbor (a node is
    never its own neighbor in the simple graphs the model runs on).

R3  nondeterminism
    A hazard that can break the engine's deterministic ``(sent_at, seq)``
    delivery order between runs: iteration over a ``set``/``dict``
    without ``sorted(...)``, calls into the unseeded global ``random``
    module, or wall-clock reads (``time.time``, ``datetime.now``, ...).

R4  shared-class-state
    Mutable state (list/dict/set/...) declared at class level is shared
    by every node instance — an accidental global channel that bypasses
    the message-passing model entirely.

R5  double-completion
    An ``on_receive``-reachable ``ctx.complete`` call whose operation id
    is derived only from per-node constants and that is not guarded by
    any runtime-mutated instance attribute.  ``on_receive`` runs once per
    delivered message, so such a call can complete the same operation
    twice (a :class:`~repro.sim.errors.ProtocolViolation` at runtime —
    but only on the execution that happens to trigger it).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class Rule:
    """One entry of the catalog.

    Attributes:
        rule_id: stable identifier (``"R1"``..``"R5"``).
        name: short kebab-case name used in human-readable output.
        summary: one-line description of what the rule catches.
    """

    rule_id: str
    name: str
    summary: str


RULES: Mapping[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule("R1", "engine-internals",
             "protocol code accesses private engine internals"),
        Rule("R2", "send-discipline",
             "ctx.send outside engine callbacks or to a statically-known "
             "non-neighbor"),
        Rule("R3", "nondeterminism",
             "unordered set/dict iteration, unseeded random, or clock "
             "reads in protocol code"),
        Rule("R4", "shared-class-state",
             "mutable class-level state shared across node instances"),
        Rule("R5", "double-completion",
             "on_receive can complete the same operation twice"),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location.

    Attributes:
        rule_id: which rule fired (key into :data:`RULES`).
        path: file the finding is in.
        line: 1-based line number of the offending construct.
        col: 0-based column offset.
        obj: dotted name of the class/method the construct lives in
            (``""`` for module-level findings).
        message: human-readable explanation of this occurrence.
    """

    rule_id: str
    path: str
    line: int
    col: int
    obj: str
    message: str

    def render(self) -> str:
        """``file:line:col: R3 [nondeterminism] message (in Obj)`` text."""
        rule = RULES[self.rule_id]
        where = f" (in {self.obj})" if self.obj else ""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{rule.name}] {self.message}{where}"
        )


def render_text(findings: Iterable[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    items = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
    lines = [f.render() for f in items]
    n = len(items)
    lines.append(
        "lint: clean" if n == 0 else
        f"lint: {n} finding{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Structured report: ``{"findings": [...], "count": N}`` JSON."""
    items = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
    payload = {
        "findings": [
            {**asdict(f), "rule_name": RULES[f.rule_id].name} for f in items
        ],
        "count": len(items),
    }
    return json.dumps(payload, indent=2)
