"""Static protocol-conformance analysis and runtime determinism checks.

The simulator enforces the paper's Section 2.1 model while a run is in
flight; this package enforces it *before* and *around* runs:

* :mod:`repro.lint.checker` — an AST analyzer that flags model
  violations (rules R1–R5, see :mod:`repro.lint.rules` and
  ``docs/LINT.md``) in any :class:`repro.sim.Node` subclass without
  executing it.  CLI: ``python -m repro lint [paths]``.
* :mod:`repro.lint.sanitizer` — runs a protocol repeatedly (optionally
  across interpreters with different hash seeds) and diffs the event
  traces to catch nondeterminism the type of which static analysis can
  only guess at.  CLI: ``--sanitize`` on ``python -m repro arrow/count``.

Together with the opt-in ``strict=True`` mode of
:class:`~repro.sim.network.SynchronousNetwork` (per-round budget
assertions as messages are consumed), these are the repo's conformance
tooling layer.
"""

from repro.lint.checker import (
    ProtocolChecker,
    check_file,
    check_paths,
    check_source,
    iter_python_files,
)
from repro.lint.rules import RULES, Finding, Rule, render_json, render_text
from repro.lint.sanitizer import (
    SanitizerReport,
    TraceDivergence,
    check_determinism,
    check_determinism_subprocess,
    diff_fingerprints,
    trace_fingerprint,
)

__all__ = [
    "ProtocolChecker",
    "check_file",
    "check_paths",
    "check_source",
    "iter_python_files",
    "RULES",
    "Rule",
    "Finding",
    "render_text",
    "render_json",
    "SanitizerReport",
    "TraceDivergence",
    "check_determinism",
    "check_determinism_subprocess",
    "diff_fingerprints",
    "trace_fingerprint",
]
