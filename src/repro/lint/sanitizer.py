"""Runtime determinism sanitizer: run a protocol twice, diff the traces.

The engine's correctness story (and every delay number the experiments
report) rests on runs being exactly reproducible: deliveries happen in
deterministic ``(sent_at, seq)`` order, so the same protocol on the same
input must produce the same event trace every time.  A protocol that
iterates an unordered container, consults the global ``random`` state, or
reads a clock can silently break that — the run still *completes*, the
validators still pass, but the delays are no longer a function of the
input.  The sanitizer makes such protocols fail loudly:

* :func:`check_determinism` executes a builder callable several times in
  the current process, recording an :class:`~repro.sim.trace.EventTrace`
  per run, and reports the first event where any two traces diverge.
  This catches unseeded randomness, clock reads, and id()-dependent
  ordering.

* :func:`check_determinism_subprocess` additionally re-executes the runs
  in fresh interpreters with *different* ``PYTHONHASHSEED`` values.  Set
  and (string-keyed) dict iteration orders are functions of the hash
  seed, so hazards that are stable within one process — the classic
  "works on my machine" nondeterminism — surface as a trace divergence
  between seeds.

Both return a :class:`SanitizerReport`; ``report.deterministic`` is the
verdict and ``report.divergence`` pinpoints the first mismatching event.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.sim.trace import EventTrace

#: One normalized trace event: (event kind, round, sorted data items).
Fingerprint = list[tuple[str, int, list[tuple[str, str]]]]


def trace_fingerprint(trace: EventTrace) -> Fingerprint:
    """Reduce a trace to a comparable, JSON-stable event list.

    Data values are rendered with ``repr`` so arbitrary payload-derived
    fields (tuples, None, ints) compare reliably across process
    boundaries.
    """
    return [
        (e.kind, e.round, sorted((k, repr(v)) for k, v in e.data.items()))
        for e in trace.events
    ]


@dataclass(frozen=True)
class TraceDivergence:
    """First point where two runs disagreed.

    Attributes:
        index: position in the event stream (0-based).
        run_a: label of the first run (e.g. ``"run 0"`` or a hash seed).
        run_b: label of the second run.
        event_a: the event run A recorded at ``index`` (None = trace ended).
        event_b: the event run B recorded at ``index`` (None = trace ended).
    """

    index: int
    run_a: str
    run_b: str
    event_a: Any
    event_b: Any

    def describe(self) -> str:
        return (
            f"traces diverge at event {self.index}: "
            f"{self.run_a} saw {self.event_a!r}, "
            f"{self.run_b} saw {self.event_b!r}"
        )


@dataclass(frozen=True)
class SanitizerReport:
    """Outcome of a determinism check.

    Attributes:
        deterministic: True iff every run produced an identical trace.
        runs: number of runs compared.
        events: trace length of the reference run.
        divergence: first mismatch, when ``deterministic`` is False.
    """

    deterministic: bool
    runs: int
    events: int
    divergence: TraceDivergence | None = None

    def describe(self) -> str:
        if self.deterministic:
            return (
                f"deterministic: {self.runs} runs produced identical "
                f"traces ({self.events} events)"
            )
        assert self.divergence is not None
        return "NONDETERMINISTIC — " + self.divergence.describe()


def diff_fingerprints(
    a: Fingerprint, b: Fingerprint, label_a: str, label_b: str
) -> TraceDivergence | None:
    """First index where two fingerprints differ, or None if identical."""
    for i, (ea, eb) in enumerate(zip(a, b)):
        if ea != eb:
            return TraceDivergence(i, label_a, label_b, ea, eb)
    if len(a) != len(b):
        i = min(len(a), len(b))
        return TraceDivergence(
            i, label_a, label_b,
            a[i] if i < len(a) else None,
            b[i] if i < len(b) else None,
        )
    return None


def _compare_all(
    fingerprints: Sequence[Fingerprint], labels: Sequence[str]
) -> SanitizerReport:
    reference = fingerprints[0]
    for fp, label in zip(fingerprints[1:], labels[1:]):
        div = diff_fingerprints(reference, fp, labels[0], label)
        if div is not None:
            return SanitizerReport(
                deterministic=False,
                runs=len(fingerprints),
                events=len(reference),
                divergence=div,
            )
    return SanitizerReport(
        deterministic=True, runs=len(fingerprints), events=len(reference)
    )


def check_determinism(
    build_and_run: Callable[[EventTrace], Any], *, runs: int = 2
) -> SanitizerReport:
    """Run a protocol ``runs`` times in-process and diff the traces.

    Args:
        build_and_run: callable that constructs a *fresh* protocol
            instance (graph, nodes, network) and runs it to quiescence,
            recording into the :class:`EventTrace` it is handed.  It must
            not reuse node or network objects between calls — the whole
            point is comparing independent executions.
        runs: how many executions to compare (>= 2).
    """
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    fingerprints: list[Fingerprint] = []
    labels: list[str] = []
    for i in range(runs):
        trace = EventTrace()
        build_and_run(trace)
        fingerprints.append(trace_fingerprint(trace))
        labels.append(f"run {i}")
    return _compare_all(fingerprints, labels)


# --------------------------------------------------------------------------
# Cross-interpreter check (hash-seed perturbation)
# --------------------------------------------------------------------------

_CHILD_TEMPLATE = """\
import json, sys
sys.path[:0] = {paths}
import importlib
mod = importlib.import_module({module!r})
trace = getattr(mod, {func!r})()
events = [
    [e.kind, e.round, sorted((k, repr(v)) for k, v in e.data.items())]
    for e in trace.events
]
json.dump(events, sys.stdout)
"""


def check_determinism_subprocess(
    spec: str,
    *,
    hash_seeds: Sequence[int] = (0, 1, 2, 3),
    extra_sys_path: Sequence[str] = (),
    timeout: float = 300.0,
) -> SanitizerReport:
    """Execute ``module:callable`` under several hash seeds and diff traces.

    The callable must take no arguments and return the
    :class:`EventTrace` of one complete protocol run.  Each execution
    happens in a fresh interpreter started with a different
    ``PYTHONHASHSEED``, so iteration order of sets and string-keyed
    dicts differs between runs — exactly the hazard class the static R3
    rule looks for, probed dynamically.

    Args:
        spec: ``"package.module:function"`` naming the trace producer.
        hash_seeds: seeds to run under (>= 2 distinct values).
        extra_sys_path: entries prepended to ``sys.path`` in the child
            (e.g. a test-fixture directory).
        timeout: per-run wall-clock limit in seconds.

    Raises:
        ValueError: on a malformed spec or too few seeds.
        RuntimeError: if a child run fails.
    """
    if ":" not in spec:
        raise ValueError(f"spec must be 'module:callable', got {spec!r}")
    if len(set(hash_seeds)) < 2:
        raise ValueError("need at least 2 distinct hash seeds")
    module, func = spec.split(":", 1)
    paths = list(extra_sys_path) + [p for p in sys.path if p]
    code = _CHILD_TEMPLATE.format(paths=json.dumps(paths),
                                  module=module, func=func)
    fingerprints: list[Fingerprint] = []
    labels: list[str] = []
    for seed in hash_seeds:
        env = dict(os.environ, PYTHONHASHSEED=str(seed))
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"sanitizer child (PYTHONHASHSEED={seed}) failed:\n"
                f"{proc.stderr.strip()}"
            )
        raw = json.loads(proc.stdout)
        fingerprints.append(
            [(k, r, [tuple(item) for item in data]) for k, r, data in raw]
        )
        labels.append(f"PYTHONHASHSEED={seed}")
    return _compare_all(fingerprints, labels)
