"""AST-based static protocol-conformance analyzer.

Walks Python sources, finds every :class:`repro.sim.Node` subclass, and
applies the rule catalog of :mod:`repro.lint.rules` to its methods.  The
analysis is purely syntactic — nothing is imported or executed — so it is
safe to run over arbitrary user protocol files.

Node-subclass detection is a per-module fixpoint over base-class *names*:
a class is a protocol node if one of its bases is named ``Node``, ends in
``Node`` (the repo-wide convention: ``ArrowNode``, ``_SweepNode``, ...),
or is itself a node class defined earlier in the same module.  Cross-file
inheritance therefore relies on the naming convention; that trade-off is
documented in ``docs/LINT.md``.

Intraprocedural facts the rules share:

* a per-class *call graph* over ``self.method(...)`` calls, giving the
  set of methods reachable from the engine callbacks (R2) and from
  ``on_receive`` alone (R5);
* per-class *attribute typing* for attributes assigned set/dict literals
  anywhere in the class (R3);
* per-class *mutated attributes* — instance attributes written outside
  ``__init__``, including mutating method calls like ``.append`` — used
  as evidence that a completion guard can actually change value (R5);
* per-function *parameter taint* — values flowing in through parameters
  (message payloads travel this way) are considered message-derived and
  exempt a ``ctx.complete`` from R5.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.rules import Finding

# ---------------------------------------------------------------------------
# Rule data
# ---------------------------------------------------------------------------

#: Engine attributes protocol code must never touch, even via ``self``.
_ENGINE_ONLY_ATTRS = frozenset(
    {"_network", "_enqueue_send", "_record_completion", "_schedule_wakeup"}
)
#: Additional private engine state flagged when accessed on anything that
#: is not ``self`` (a protocol may legitimately name its own ``_ready``).
_ENGINE_PRIVATE_ATTRS = _ENGINE_ONLY_ATTRS | frozenset(
    {"_links", "_outbox", "_ready", "_wakeups", "_nodes", "_ctx",
     "_msg_seq", "_in_flight", "_adj", "_nbr_sets",
     "_receive_phase", "_send_phase", "_wake_phase"}
)

#: The engine callbacks protocol logic is allowed to originate from.
_CALLBACKS = ("on_start", "on_receive", "on_wake")

#: ``random`` module functions that draw from the unseeded global state.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {"random", "randint", "randrange", "choice", "choices", "shuffle",
     "sample", "uniform", "getrandbits", "gauss", "normalvariate",
     "expovariate", "betavariate", "triangular", "vonmisesvariate",
     "paretovariate", "weibullvariate", "lognormvariate", "randbytes"}
)
#: ``module attr`` pairs that read a wall clock.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
}

#: Builtins whose result does not depend on iteration order — a
#: comprehension/genexp used directly as their argument is safe.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"any", "all", "sum", "min", "max", "len", "set", "frozenset",
     "sorted", "Counter"}
)
#: Wrappers that preserve (and therefore leak) iteration order.
_ORDER_PRESERVING_WRAPPERS = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate"}
)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "remove", "discard",
     "pop", "popitem", "clear", "setdefault", "appendleft", "extendleft"}
)

#: Class-body value constructors considered mutable shared state (R4).
_MUTABLE_FACTORY_NAMES = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter",
     "OrderedDict", "bytearray"}
)


def _base_name(node: ast.expr) -> str | None:
    """Last dotted segment of a base-class expression, if nameable."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotate_parents(tree: ast.AST) -> None:
    """Attach a ``_lint_parent`` backlink to every AST node."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._lint_parent = parent  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_lint_parent", None)


def _names_in(node: ast.AST) -> set[str]:
    """All bare names read anywhere inside ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _self_attrs_in(node: ast.AST) -> set[str]:
    """Attributes read as ``self.X`` anywhere inside ``node``."""
    out: set[str] = set()
    for n in ast.walk(node):
        if (isinstance(n, ast.Attribute)
                and isinstance(n.value, ast.Name) and n.value.id == "self"):
            out.add(n.attr)
    return out


def _assign_target_names(target: ast.expr) -> Iterator[str]:
    """Bare names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _assign_target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _assign_target_names(target.value)


def _is_terminal_branch(body: Sequence[ast.stmt]) -> bool:
    """Does this block always leave the function/loop (guard shape)?"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


# ---------------------------------------------------------------------------
# Per-class fact gathering
# ---------------------------------------------------------------------------


class _ClassFacts:
    """Syntactic facts about one Node subclass, shared by the rules."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.methods: dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.set_attrs: set[str] = set()
        self.dict_attrs: set[str] = set()
        self.mutated_attrs: set[str] = set()
        self._collect_attr_facts()
        self.reachable_from_callbacks = self._reachable(
            [m for m in _CALLBACKS if m in self.methods]
        )
        self.reachable_from_receive = self._reachable(
            ["on_receive"] if "on_receive" in self.methods else []
        )

    # -- call graph ------------------------------------------------------

    def _calls_of(self, fn: ast.FunctionDef) -> set[str]:
        out = set()
        for n in ast.walk(fn):
            if (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and isinstance(n.func.value, ast.Name)
                    and n.func.value.id == "self"
                    and n.func.attr in self.methods):
                out.add(n.func.attr)
        return out

    def _reachable(self, roots: Iterable[str]) -> set[str]:
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self._calls_of(self.methods[name]) - seen)
        return seen

    # -- attribute facts -------------------------------------------------

    def _value_kind(self, value: ast.expr) -> str | None:
        """``"set"``/``"dict"`` if the expression builds one, else None."""
        if isinstance(value, ast.Set) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        ):
            return "set"
        if isinstance(value, ast.Dict) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("dict", "defaultdict", "OrderedDict")
        ):
            return "dict"
        if isinstance(value, ast.IfExp):  # e.g. {...} if flag else set()
            kinds = {self._value_kind(value.body), self._value_kind(value.orelse)}
            kinds.discard(None)
            if len(kinds) == 1:
                return kinds.pop()
        return None

    def _collect_attr_facts(self) -> None:
        for name, fn in self.methods.items():
            in_init = name == "__init__"
            for n in ast.walk(fn):
                # self.X = <set/dict literal>  (typing facts)
                if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        n.targets if isinstance(n, ast.Assign) else [n.target]
                    )
                    value = n.value
                    for t in targets:
                        if (isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"):
                            if value is not None:
                                kind = self._value_kind(value)
                                if kind == "set":
                                    self.set_attrs.add(t.attr)
                                elif kind == "dict":
                                    self.dict_attrs.add(t.attr)
                            if not in_init:
                                self.mutated_attrs.add(t.attr)
                        # self.X[k] = v mutates X
                        elif (isinstance(t, ast.Subscript)
                                and isinstance(t.value, ast.Attribute)
                                and isinstance(t.value.value, ast.Name)
                                and t.value.value.id == "self"
                                and not in_init):
                            self.mutated_attrs.add(t.value.attr)
                if in_init:
                    continue
                # self.X.append(...) and friends
                if (isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Attribute)
                        and n.func.attr in _MUTATING_METHODS
                        and isinstance(n.func.value, ast.Attribute)
                        and isinstance(n.func.value.value, ast.Name)
                        and n.func.value.value.id == "self"):
                    self.mutated_attrs.add(n.func.value.attr)
                # del self.X[k]
                if isinstance(n, ast.Delete):
                    for t in n.targets:
                        if (isinstance(t, ast.Subscript)
                                and isinstance(t.value, ast.Attribute)
                                and isinstance(t.value.value, ast.Name)
                                and t.value.value.id == "self"):
                            self.mutated_attrs.add(t.value.attr)


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class ProtocolChecker:
    """Applies rules R1–R5 to the Node subclasses of one module."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.tree = tree
        self.path = path
        self.findings: list[Finding] = []
        _annotate_parents(tree)
        self._random_aliases = self._module_random_imports()

    # -- entry point -----------------------------------------------------

    def run(self) -> list[Finding]:
        for cls in self._node_classes():
            facts = _ClassFacts(cls)
            self._current_facts = facts
            self._check_class_level_state(cls)           # R4
            for name, fn in facts.methods.items():
                obj = f"{cls.name}.{name}"
                ctx_names = self._ctx_params(fn)
                self._check_engine_internals(fn, obj)    # R1
                self._check_sends(fn, name, facts, ctx_names, obj)   # R2
                self._check_nondeterminism(fn, ctx_names, obj)       # R3
                self._check_double_completion(fn, name, facts,
                                              ctx_names, obj)        # R5
        return self.findings

    #: facts of the class currently being checked (set by :meth:`run`).
    _current_facts: _ClassFacts

    def _emit(self, rule: str, node: ast.AST, obj: str, message: str) -> None:
        self.findings.append(
            Finding(
                rule_id=rule,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                obj=obj,
                message=message,
            )
        )

    # -- node-class discovery --------------------------------------------

    def _node_classes(self) -> list[ast.ClassDef]:
        classes = [
            n for n in ast.walk(self.tree) if isinstance(n, ast.ClassDef)
        ]
        node_names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for cls in classes:
                if cls.name in node_names:
                    continue
                for base in cls.bases:
                    name = _base_name(base)
                    if name is None:
                        continue
                    if name == "Node" or name.endswith("Node") or (
                            name in node_names):
                        node_names.add(cls.name)
                        changed = True
                        break
        return [c for c in classes if c.name in node_names]

    @staticmethod
    def _ctx_params(fn: ast.FunctionDef) -> set[str]:
        """Parameters that carry the NodeContext (by name or annotation)."""
        out = set()
        args = fn.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if a.arg == "ctx":
                out.add(a.arg)
            elif a.annotation is not None:
                ann = _base_name(a.annotation)
                if ann == "NodeContext":
                    out.add(a.arg)
        return out

    def _module_random_imports(self) -> set[str]:
        """Names bound to the global ``random`` module or its functions."""
        aliases: set[str] = set()
        for n in ast.walk(self.tree):
            if isinstance(n, ast.Import):
                for alias in n.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
            elif isinstance(n, ast.ImportFrom) and n.module == "random":
                for alias in n.names:
                    if alias.name in _GLOBAL_RANDOM_FUNCS:
                        aliases.add(alias.asname or alias.name)
        return aliases

    # -- R1 ---------------------------------------------------------------

    def _check_engine_internals(self, fn: ast.FunctionDef, obj: str) -> None:
        for n in ast.walk(fn):
            if not isinstance(n, ast.Attribute):
                continue
            on_self = isinstance(n.value, ast.Name) and n.value.id == "self"
            if n.attr in _ENGINE_ONLY_ATTRS or (
                    not on_self and n.attr in _ENGINE_PRIVATE_ATTRS):
                self._emit(
                    "R1", n, obj,
                    f"access to private engine internal `{n.attr}`; use the "
                    f"NodeContext API (send/complete/schedule_wakeup) instead",
                )

    # -- R2 ---------------------------------------------------------------

    def _send_calls(self, fn: ast.FunctionDef, ctx_names: set[str]
                    ) -> list[ast.Call]:
        out = []
        for n in ast.walk(fn):
            if (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "send"
                    and isinstance(n.func.value, ast.Name)
                    and n.func.value.id in ctx_names):
                out.append(n)
        return out

    def _check_sends(self, fn: ast.FunctionDef, name: str,
                     facts: _ClassFacts, ctx_names: set[str],
                     obj: str) -> None:
        sends = self._send_calls(fn, ctx_names)
        if not sends:
            return
        if name not in facts.reachable_from_callbacks:
            for call in sends:
                self._emit(
                    "R2", call, obj,
                    f"ctx.send in `{name}`, which is not reachable from any "
                    f"engine callback (on_start/on_receive/on_wake); the "
                    f"engine only meters sends made inside callbacks",
                )
        for call in sends:
            if not call.args:
                continue
            dst = call.args[0]
            if (isinstance(dst, ast.Attribute)
                    and dst.attr == "node_id"
                    and isinstance(dst.value, ast.Name)
                    and dst.value.id in ctx_names | {"self"}):
                self._emit(
                    "R2", call, obj,
                    "ctx.send to the node's own id — a node is never its "
                    "own neighbor in the model's simple graphs",
                )

    # -- R3 ---------------------------------------------------------------

    def _unwrap_order_preserving(self, expr: ast.expr) -> ast.expr:
        while (isinstance(expr, ast.Call)
               and isinstance(expr.func, ast.Name)
               and expr.func.id in _ORDER_PRESERVING_WRAPPERS
               and expr.args):
            expr = expr.args[0]
        return expr

    def _local_kinds(self, fn: ast.FunctionDef
                     ) -> tuple[set[str], set[str]]:
        """Local names assigned a set/dict literal inside ``fn``."""
        set_locals: set[str] = set()
        dict_locals: set[str] = set()
        for n in ast.walk(fn):
            if isinstance(n, ast.Assign) and len(n.targets) == 1 and (
                    isinstance(n.targets[0], ast.Name)):
                name = n.targets[0].id
                if isinstance(n.value, ast.Set) or (
                        isinstance(n.value, ast.Call)
                        and isinstance(n.value.func, ast.Name)
                        and n.value.func.id in ("set", "frozenset")):
                    set_locals.add(name)
                elif isinstance(n.value, ast.Dict) or (
                        isinstance(n.value, ast.Call)
                        and isinstance(n.value.func, ast.Name)
                        and n.value.func.id == "dict"):
                    dict_locals.add(name)
                elif isinstance(n.value, ast.SetComp):
                    set_locals.add(name)
                elif isinstance(n.value, ast.DictComp):
                    dict_locals.add(name)
        return set_locals, dict_locals

    def _iter_kind(self, expr: ast.expr, facts: _ClassFacts,
                   set_locals: set[str], dict_locals: set[str]) -> str | None:
        """Is iterating ``expr`` an unordered set/dict traversal?"""
        expr = self._unwrap_order_preserving(expr)
        # direct literals / constructors
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("set", "frozenset"):
                return "set"
            if expr.func.id == "dict" and expr.args:
                return "dict"
        # dict views: <dictish>.keys()/.values()/.items()
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("keys", "values", "items")):
            base = expr.func.value
            if self._is_dictish(base, facts, dict_locals):
                return "dict"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in set_locals:
                return "set"
            if expr.id in dict_locals:
                return "dict"
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            if expr.attr in facts.set_attrs:
                return "set"
            if expr.attr in facts.dict_attrs:
                return "dict"
        return None

    @staticmethod
    def _is_dictish(base: ast.expr, facts: _ClassFacts,
                    dict_locals: set[str]) -> bool:
        if isinstance(base, ast.Name):
            return base.id in dict_locals
        return (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in facts.dict_attrs)

    def _comp_is_order_insensitive(self, comp: ast.expr) -> bool:
        """Is this genexp/comprehension the direct arg of any()/sum()/...?"""
        parent = _parent(comp)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE_CALLS)

    def _check_nondeterminism(self, fn: ast.FunctionDef,
                              ctx_names: set[str], obj: str) -> None:
        facts = self._current_facts
        set_locals, dict_locals = self._local_kinds(fn)
        for n in ast.walk(fn):
            iters: list[ast.expr] = []
            if isinstance(n, ast.For):
                iters.append(n.iter)
            elif isinstance(n, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                # any()/sum()/sorted()/... over a genexp can't leak order;
                # a SetComp's result is itself unordered (flagged at its
                # own use site instead).
                if not self._comp_is_order_insensitive(n):
                    iters.extend(g.iter for g in n.generators)
            for it in iters:
                kind = self._iter_kind(it, facts, set_locals, dict_locals)
                if kind is not None:
                    self._emit(
                        "R3", it, obj,
                        f"iteration over a {kind} — order is not part of the "
                        f"deterministic model; wrap the iterable in sorted()",
                    )
            if isinstance(n, ast.Call):
                self._check_random_or_clock_call(n, obj)

    def _check_random_or_clock_call(self, call: ast.Call, obj: str) -> None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self._random_aliases:
            self._emit(
                "R3", call, obj,
                f"call to unseeded `random.{func.id}`; use a seeded "
                f"random.Random(seed) instance so runs are reproducible",
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        base_name = _base_name(base) if isinstance(
            base, (ast.Name, ast.Attribute)) else None
        if base_name in self._random_aliases and (
                func.attr in _GLOBAL_RANDOM_FUNCS):
            self._emit(
                "R3", call, obj,
                f"call to unseeded `random.{func.attr}`; use a seeded "
                f"random.Random(seed) instance so runs are reproducible",
            )
        elif (base_name, func.attr) in _CLOCK_CALLS:
            self._emit(
                "R3", call, obj,
                f"wall-clock read `{base_name}.{func.attr}()`; protocol "
                f"logic must depend only on rounds (ctx.now)",
            )

    # -- R4 ---------------------------------------------------------------

    def _check_class_level_state(self, cls: ast.ClassDef) -> None:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or "__slots__" in names:
                continue
            if self._is_mutable_value(value):
                self._emit(
                    "R4", stmt, cls.name,
                    f"mutable class-level attribute "
                    f"`{', '.join(names)}` is shared by every node "
                    f"instance; initialise it per-instance in __init__",
                )

    @staticmethod
    def _is_mutable_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_FACTORY_NAMES)

    # -- R5 ---------------------------------------------------------------

    def _tainted_names(self, fn: ast.FunctionDef) -> set[str]:
        """Names carrying values that flowed in through parameters.

        Seeded with every parameter except ``self``/``ctx`` (message
        payloads and caller-provided op ids arrive this way) and
        propagated through simple assignments.
        """
        args = fn.args
        tainted = {
            a.arg
            for a in list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
            if a.arg not in ("self",) and a.arg not in self._ctx_params(fn)
        }
        changed = True
        while changed:
            changed = False
            for n in ast.walk(fn):
                if isinstance(n, ast.Assign):
                    if _names_in(n.value) & tainted:
                        for t in n.targets:
                            for name in _assign_target_names(t):
                                if name not in tainted:
                                    tainted.add(name)
                                    changed = True
                elif isinstance(n, (ast.AnnAssign, ast.AugAssign)):
                    if n.value is not None and _names_in(n.value) & tainted:
                        for name in _assign_target_names(n.target):
                            if name not in tainted:
                                tainted.add(name)
                                changed = True
        return tainted

    def _guard_attrs(self, fn: ast.FunctionDef, call: ast.Call) -> set[str]:
        """``self`` attributes read in conditions dominating ``call``.

        Two guard shapes are recognised: enclosing ``if``/``while`` tests
        on the parent chain of the call, and earlier terminal branches
        (``if cond: return/raise/continue/break``) anywhere up the chain.
        """
        attrs: set[str] = set()
        node: ast.AST | None = call
        while node is not None and not isinstance(node, ast.FunctionDef):
            parent = _parent(node)
            if isinstance(parent, (ast.If, ast.While)):
                attrs |= _self_attrs_in(parent.test)
            if parent is not None:
                for field in ("body", "orelse", "finalbody"):
                    block = getattr(parent, field, None)
                    if isinstance(block, list) and node in block:
                        for prior in block[: block.index(node)]:
                            if isinstance(prior, ast.If) and (
                                    _is_terminal_branch(prior.body)):
                                attrs |= _self_attrs_in(prior.test)
            node = parent
        return attrs

    def _check_double_completion(self, fn: ast.FunctionDef, name: str,
                                 facts: _ClassFacts, ctx_names: set[str],
                                 obj: str) -> None:
        if name not in facts.reachable_from_receive:
            return
        tainted = self._tainted_names(fn)
        for n in ast.walk(fn):
            if not (isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "complete"
                    and isinstance(n.func.value, ast.Name)
                    and n.func.value.id in ctx_names):
                continue
            if not n.args:
                continue
            op = n.args[0]
            if _names_in(op) & tainted:
                continue  # op id derived from the message / caller — unique
            guards = self._guard_attrs(fn, n)
            if guards & facts.mutated_attrs:
                continue  # guarded by state that actually changes at runtime
            self._emit(
                "R5", n, obj,
                "ctx.complete reachable from on_receive with a fixed "
                "per-node op id and no guard on runtime-mutated state — a "
                "second delivery would complete the same operation twice",
            )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def check_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one Python source string; returns findings (possibly empty).

    Raises:
        SyntaxError: if the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    return ProtocolChecker(tree, path).run()


def check_file(path: str | Path) -> list[Finding]:
    """Lint one file.

    Raises:
        SyntaxError: if the file does not parse — the engine could not
            import such a protocol either, so this is not swallowed.
    """
    p = Path(path)
    return check_source(p.read_text(encoding="utf-8"), str(p))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            r = c.resolve()
            if r not in seen:
                seen.add(r)
                yield c


def check_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(check_file(f))
    return findings
