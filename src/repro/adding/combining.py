"""Combining-tree fetch-and-add.

The combining counter of :mod:`repro.counting.combining`, generalised to
arbitrary integer increments: the up phase aggregates subtree *sums*
instead of request counts, and the down phase distributes prefix *sums*
instead of rank intervals.  The message pattern — hence the delay
profile — is identical to combining-tree counting, demonstrating that
addition is at least as expensive as counting on the same tree (and
strictly harder to shortcut: the result depends on every predecessor's
value, not just their number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sim import Message, Node, NodeContext, RunStats, SynchronousNetwork
from repro.topology.spanning import SpanningTree


@dataclass(frozen=True)
class AdditionResult:
    """Outcome of a one-shot fetch-and-add execution.

    Attributes:
        algorithm: short name of the adding algorithm.
        increments: vertex -> its contributed increment.
        prior_sums: vertex -> the accumulator value *before* its own
            increment took effect (fetch-and-add's return value).
        order: the induced total order of the requesters.
        delays: vertex -> round the prior sum arrived back.
        stats: engine accounting.
    """

    algorithm: str
    increments: dict[int, int]
    prior_sums: dict[int, int]
    order: tuple[int, ...]
    delays: dict[int, int]
    stats: RunStats

    @property
    def total_delay(self) -> int:
        """The paper's cost metric: sum of per-operation delays."""
        return sum(self.delays.values())

    @property
    def max_delay(self) -> int:
        """Largest single operation delay."""
        return max(self.delays.values(), default=0)

    def verify(self) -> None:
        """Check the fetch-and-add specification.

        Along ``order``, every prior sum must equal the prefix sum of the
        increments ordered before it.

        Raises:
            AssertionError: on any mismatch.
        """
        running = 0
        for v in self.order:
            if self.prior_sums[v] != running:
                raise AssertionError(
                    f"vertex {v}: prior sum {self.prior_sums[v]} != prefix {running}"
                )
            running += self.increments[v]


class _AddNode(Node):
    """One node of the combining-adder.

    Messages:
        ``up``: payload = (subtree increment sum); child -> parent.
        ``down``: payload = base prefix sum for the subtree.
    """

    __slots__ = (
        "parent",
        "children",
        "delta",
        "participating",
        "pending",
        "child_sums",
        "subtotal",
        "completed",
    )

    def __init__(
        self,
        node_id: int,
        parent: int,
        children: tuple[int, ...],
        delta: int | None,
    ) -> None:
        super().__init__(node_id)
        self.parent = parent
        self.children = children
        self.delta = delta
        self.participating = delta is not None
        self.pending = len(children)
        self.child_sums: dict[int, tuple[int, bool]] = {}
        self.subtotal = delta or 0
        self.completed = False

    def _report_or_finish(self, ctx: NodeContext) -> None:
        if self.parent != self.node_id:
            ctx.send(
                self.parent,
                "up",
                payload=(self.subtotal, self._subtree_participates()),
            )
        else:
            self._distribute(0, ctx)

    def _subtree_participates(self) -> bool:
        return self.participating or any(p for _s, p in self.child_sums.values())

    def _distribute(self, base: int, ctx: NodeContext) -> None:
        nxt = base
        if self.participating and not self.completed:
            self.completed = True
            ctx.complete(self.node_id, result=nxt)
            nxt += self.delta
        for c in self.children:
            s, participates = self.child_sums[c]
            if participates:
                ctx.send(c, "down", payload=nxt)
            nxt += s

    def on_start(self, ctx: NodeContext) -> None:
        if self.pending == 0:
            self._report_or_finish(ctx)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind == "up":
            s, participates = msg.payload
            self.child_sums[msg.src] = (s, participates)
            self.subtotal += s
            self.pending -= 1
            if self.pending == 0:
                self._report_or_finish(ctx)
        elif msg.kind == "down":
            self._distribute(msg.payload, ctx)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")


def run_combining_addition(
    spanning: SpanningTree,
    increments: Mapping[int, int],
    *,
    capacity: int = 1,
    delay_model=None,
    max_rounds: int = 50_000_000,
) -> AdditionResult:
    """Run combining-tree fetch-and-add; the result is verified.

    Args:
        spanning: the spanning tree to combine along.
        increments: mapping vertex -> integer increment (vertices absent
            from the mapping do not participate).
        capacity: per-round message budget (1 = strict model).
        delay_model: optional link-delay model.
        max_rounds: engine safety limit.
    """
    tree = spanning.tree
    for v in increments:
        if not (0 <= v < tree.n):
            raise ValueError(f"vertex {v} out of range")
    nodes = {
        v: _AddNode(
            v,
            parent=tree.parent[v],
            children=tree.children[v],
            delta=increments.get(v),
        )
        for v in range(tree.n)
    }
    net = SynchronousNetwork(
        spanning.as_graph(),
        nodes,
        send_capacity=capacity,
        recv_capacity=capacity,
        delay_model=delay_model,
    )
    net.run(max_rounds=max_rounds)

    prior = {v: int(s) for v, s in net.delays.result_by_op().items()}
    # The induced order is the DFS order of participants: recover it by
    # walking the tree exactly as _distribute did (iteratively — spanning
    # trees can be path-shaped and deeper than the recursion limit).
    order: list[int] = []
    stack = [tree.root]
    while stack:
        v = stack.pop()
        if nodes[v].participating:
            order.append(v)
        stack.extend(
            c
            for c in reversed(nodes[v].children)
            if nodes[c]._subtree_participates()
        )
    result = AdditionResult(
        algorithm=f"combining-add[{spanning.label}]",
        increments=dict(increments),
        prior_sums=prior,
        order=tuple(order),
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )
    result.verify()
    return result
