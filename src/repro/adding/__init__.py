"""Distributed addition (fetch-and-add) — the paper's open question.

Section 5 asks how other total-order coordination problems, such as
*distributed addition* (Fatourou & Herlihy's adding networks, the
paper's reference [5]), compare to counting and queuing.  This package
implements fetch-and-add so the question can be probed empirically:
every requester contributes an integer increment, the operations are
organised into a total order, and each requester receives the sum of all
increments ordered before its own (the accumulator's prior value).

Counting is the special case of unit increments (rank = prior sum + 1),
so the counting lower bounds of Section 3 apply verbatim to addition —
while queuing does not get easier.  The E19 experiment measures exactly
that.
"""

from repro.adding.combining import AdditionResult, run_combining_addition
from repro.adding.central import run_central_addition

__all__ = ["AdditionResult", "run_combining_addition", "run_central_addition"]
