"""Central-server fetch-and-add (baseline)."""

from __future__ import annotations

from typing import Mapping

from repro.adding.combining import AdditionResult
from repro.counting.central import _routing
from repro.sim import Message, Node, NodeContext, SynchronousNetwork
from repro.topology.base import Graph


class _CentralAddNode(Node):
    """Requests route to the root; the root applies increments in arrival
    order and returns the prior accumulator value."""

    __slots__ = ("next_hop", "delta", "is_root", "accumulator", "arrival_order", "_down_paths")

    def __init__(self, node_id: int, next_hop: int, delta: int | None, is_root: bool) -> None:
        super().__init__(node_id)
        self.next_hop = next_hop
        self.delta = delta
        self.is_root = is_root
        self.accumulator = 0
        self.arrival_order: list[int] = []
        self._down_paths: dict[int, list[int]] = {}

    def _serve(self, origin: int, delta: int, ctx: NodeContext) -> None:
        prior = self.accumulator
        self.accumulator += delta
        self.arrival_order.append(origin)
        if origin == self.node_id:
            ctx.complete(origin, result=prior)
        else:
            path = self._down_paths[origin]
            ctx.send(path[0], "reply", payload=(origin, path[1:], prior))

    def on_start(self, ctx: NodeContext) -> None:
        if self.delta is None:
            return
        if self.is_root:
            self._serve(self.node_id, self.delta, ctx)
        else:
            ctx.send(self.next_hop, "req", payload=(self.node_id, self.delta))

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind == "req":
            origin, delta = msg.payload
            if self.is_root:
                self._serve(origin, delta, ctx)
            else:
                ctx.send(self.next_hop, "req", payload=(origin, delta))
        elif msg.kind == "reply":
            origin, path, prior = msg.payload
            if origin == self.node_id:
                ctx.complete(origin, result=prior)
            else:
                ctx.send(path[0], "reply", payload=(origin, path[1:], prior))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected message kind {msg.kind!r}")


def run_central_addition(
    graph: Graph,
    increments: Mapping[int, int],
    *,
    root: int = 0,
    delay_model=None,
    max_rounds: int = 50_000_000,
) -> AdditionResult:
    """Run central-server fetch-and-add; the result is verified."""
    for v in increments:
        if not (0 <= v < graph.n):
            raise ValueError(f"vertex {v} out of range")
    next_hop, down_paths = _routing(graph, root)
    nodes = {
        v: _CentralAddNode(
            v, next_hop=next_hop[v], delta=increments.get(v), is_root=(v == root)
        )
        for v in graph.vertices()
    }
    nodes[root]._down_paths = down_paths
    net = SynchronousNetwork(
        graph, nodes, send_capacity=1, recv_capacity=1, delay_model=delay_model
    )
    net.run(max_rounds=max_rounds)
    result = AdditionResult(
        algorithm=f"central-add(root={root})",
        increments=dict(increments),
        prior_sums={v: int(s) for v, s in net.delays.result_by_op().items()},
        order=tuple(nodes[root].arrival_order),
        delays=net.delays.delay_by_op(),
        stats=net.stats,
    )
    result.verify()
    return result
