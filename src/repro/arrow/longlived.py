"""Long-lived arrow: requests arriving over time (extension).

The paper analyses the one-shot scenario; Kuhn & Wattenhofer (SPAA 2004,
reference [8]) study the dynamic case where queuing requests arrive while
the protocol is running.  This module reproduces that setting as an
extension experiment: each node may issue its operation at an arbitrary
round, and the delay of an operation is measured from its *issue* time to
the round its ``queue()`` message terminates.

The protocol logic is identical to the one-shot case — the arrow rules
are oblivious to time — only issuance is scheduled through the engine's
wakeup mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.arrow.protocol import ArrowNode, op_of
from repro.sim import NodeContext, RunStats, SynchronousNetwork
from repro.topology.spanning import SpanningTree
from repro.tree import RootedTree


class _TimedArrowNode(ArrowNode):
    """Arrow node that issues its operation at a scheduled round."""

    __slots__ = ("issue_at",)

    def __init__(self, node_id: int, link: int, issue_at: int | None) -> None:
        super().__init__(node_id, link, requesting=False)
        self.issue_at = issue_at

    def on_start(self, ctx: NodeContext) -> None:
        if self.issue_at is None:
            return
        if self.issue_at == 0:
            self._issue(ctx)
        else:
            ctx.schedule_wakeup(self.issue_at)

    def on_wake(self, ctx: NodeContext) -> None:
        self._issue(ctx)

    def _issue(self, ctx: NodeContext) -> None:
        a = op_of(self.node_id)
        w = self.link
        self.link = self.node_id
        if w == self.node_id:
            pred = self.parked
            self.parked = a
            self.pred_found[a] = pred
            ctx.complete(a, result=pred)
        else:
            self.parked = a
            ctx.send(w, "queue", payload=a)


@dataclass(frozen=True)
class LongLivedResult:
    """Outcome of a long-lived arrow execution.

    Attributes:
        issue_times: vertex -> round its operation was issued.
        completion: operation id -> round its queue() message terminated.
        predecessors: operation id -> predecessor operation id.
        stats: engine accounting.
    """

    issue_times: dict[int, int]
    completion: dict[Hashable, int]
    predecessors: dict[Hashable, Hashable]
    stats: RunStats

    def response_times(self) -> dict[int, int]:
        """Vertex -> (completion round - issue round)."""
        return {
            v: self.completion[op_of(v)] - t for v, t in self.issue_times.items()
        }

    @property
    def total_response_time(self) -> int:
        """Sum of response times — the dynamic analogue of the paper's cost."""
        return sum(self.response_times().values())


def run_arrow_longlived(
    spanning: SpanningTree,
    issue_times: Mapping[int, int],
    *,
    tail: int | None = None,
    capacity: int | None = None,
    max_rounds: int = 10_000_000,
) -> LongLivedResult:
    """Run arrow with per-vertex issue rounds.

    Args:
        spanning: the spanning tree to run on.
        issue_times: mapping vertex -> issue round (>= 0); vertices absent
            from the mapping issue nothing.
        tail: initial tail node (default: tree root).
        capacity: per-round message budget (default: tree max degree).
        max_rounds: engine safety limit.
    """
    tree = spanning.tree
    if tail is None:
        tail = tree.root
    if capacity is None:
        capacity = max(1, spanning.max_degree())

    if tail == tree.root:
        parent_toward_tail = tree.parent
    else:
        rerooted = RootedTree.from_edges(tree.n, tree.edges(), root=tail)
        parent_toward_tail = rerooted.parent

    for v, t in issue_times.items():
        if not (0 <= v < tree.n):
            raise ValueError(f"vertex {v} out of range")
        if t < 0:
            raise ValueError(f"issue time for {v} must be >= 0, got {t}")

    nodes = {
        v: _TimedArrowNode(
            v, link=parent_toward_tail[v], issue_at=issue_times.get(v)
        )
        for v in range(tree.n)
    }
    net = SynchronousNetwork(
        spanning.as_graph(), nodes, send_capacity=capacity, recv_capacity=capacity
    )
    stats = net.run(max_rounds=max_rounds)

    predecessors: dict[Hashable, Hashable] = {}
    for v in range(tree.n):
        predecessors.update(nodes[v].pred_found)

    return LongLivedResult(
        issue_times=dict(issue_times),
        completion=net.delays.delay_by_op(),
        predecessors=predecessors,
        stats=stats,
    )


def poisson_issue_times(
    n: int, rate: float, horizon: int, seed: int = 0
) -> dict[int, int]:
    """A random arrival schedule: each vertex issues once, at a round
    drawn uniformly from a Poisson-process-like schedule over ``[0, horizon)``.

    A convenience generator for the long-lived benchmarks; ``rate`` scales
    how many of the ``n`` vertices participate (expected ``rate * n``).
    """
    if not (0 < rate <= 1):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    rng = np.random.default_rng(seed)
    participants = rng.random(n) < rate
    times = rng.integers(0, horizon, size=n)
    return {v: int(times[v]) for v in range(n) if participants[v]}
