"""The arrow node state machine.

State per node ``v`` (Section 4 of the paper):

* ``link``: the arrow — a tree neighbor of ``v``, or ``v`` itself when the
  queue tail is parked here;
* ``parked``: the identifier of the operation currently queued at ``v``
  (the paper's ``id(v)``); meaningful as the queue tail exactly when
  ``link == v``.

Rules (path reversal):

* *Issue* ``a`` at ``v``: remember ``w = link``; set ``link = v`` and
  ``parked = a``; if ``w == v`` the previous parked operation is ``a``'s
  predecessor (complete immediately), otherwise send ``queue(a)`` to ``w``.
* *Receive* ``queue(a)`` from ``y`` at ``v``: remember ``w = link``; set
  ``link = y``; if ``w == v`` then ``a``'s predecessor is ``parked``
  (complete, and park ``a`` here), otherwise forward ``queue(a)`` to ``w``.

Several ``queue()`` messages arriving at a node in the same round are
processed sequentially within the round in deterministic order — the
paper's "expanded time step" convention for constant-degree trees.
"""

from __future__ import annotations

from typing import Hashable

from repro.sim import Message, Node, NodeContext


def init_op(tail: int) -> tuple[str, int]:
    """The dummy operation parked at the initial tail node ``tail``."""
    return ("init", tail)


def op_of(v: int) -> tuple[str, int]:
    """The identifier of the queuing operation issued by node ``v``."""
    return ("op", v)


class ArrowNode(Node):
    """One node of the arrow protocol.

    Args:
        node_id: this vertex.
        link: initial arrow (tree parent toward the tail; the tail points
            at itself).
        requesting: whether this node issues a queuing operation at time 0.
        record_successors: kept so the runner can reconstruct the total
            order without scanning messages.
    """

    __slots__ = ("link", "parked", "requesting", "pred_found")

    def __init__(self, node_id: int, link: int, requesting: bool) -> None:
        super().__init__(node_id)
        self.link = link
        self.parked: Hashable = init_op(node_id) if link == node_id else None
        self.requesting = requesting
        #: predecessor assignments discovered at this node: op -> pred op
        self.pred_found: dict[Hashable, Hashable] = {}

    def on_start(self, ctx: NodeContext) -> None:
        if not self.requesting:
            return
        a = op_of(self.node_id)
        w = self.link
        self.link = self.node_id
        if w == self.node_id:
            pred = self.parked
            self.parked = a
            self.pred_found[a] = pred
            ctx.complete(a, result=pred)
        else:
            self.parked = a
            ctx.send(w, "queue", payload=a)

    def on_receive(self, msg: Message, ctx: NodeContext) -> None:
        if msg.kind != "queue":  # pragma: no cover - defensive
            raise ValueError(f"arrow node got unexpected message {msg.kind!r}")
        a = msg.payload
        y = msg.src
        w = self.link
        self.link = y
        if w == self.node_id:
            pred = self.parked
            self.parked = a
            self.pred_found[a] = pred
            ctx.complete(a, result=pred)
        else:
            ctx.send(w, "queue", payload=a)
