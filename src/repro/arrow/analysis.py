"""Empirical check of Theorem 4.1: arrow cost vs the nearest-neighbour TSP."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.arrow.runner import ArrowResult, run_arrow
from repro.topology.spanning import SpanningTree
from repro.tsp.nearest_neighbor import NNTour, nearest_neighbor_tour


@dataclass(frozen=True)
class ArrowTspComparison:
    """Side-by-side of a one-shot arrow run and the NN tour it is bounded by.

    Theorem 4.1 states ``arrow_total <= 2 * tsp_cost`` whenever the
    spanning tree has constant degree; ``ratio`` should therefore never
    exceed 2 (and the benchmarks assert it doesn't).
    """

    arrow: ArrowResult
    tour: NNTour

    @property
    def arrow_total(self) -> int:
        """Measured arrow total delay."""
        return self.arrow.total_delay

    @property
    def tsp_cost(self) -> int:
        """Nearest-neighbour tour cost on the same tree and request set."""
        return self.tour.cost

    @property
    def ratio(self) -> float:
        """``arrow_total / tsp_cost`` (0 when the tour has zero cost)."""
        if self.tour.cost == 0:
            return 0.0
        return self.arrow_total / self.tour.cost

    @property
    def within_theorem41(self) -> bool:
        """Whether the factor-2 bound of Theorem 4.1 holds for this run."""
        return self.arrow_total <= 2 * self.tsp_cost


def arrow_vs_tsp(
    spanning: SpanningTree,
    requests: Iterable[int],
    *,
    tail: int | None = None,
    max_rounds: int = 10_000_000,
) -> ArrowTspComparison:
    """Run arrow and compute the NN tour on identical inputs.

    The tour starts at the tail node (the initial position of the queue),
    matching the setup of Theorem 4.1.
    """
    req = sorted(set(requests))
    result = run_arrow(spanning, req, tail=tail, max_rounds=max_rounds)
    tour = nearest_neighbor_tour(spanning.tree, req, start=result.tail)
    return ArrowTspComparison(arrow=result, tour=tour)
