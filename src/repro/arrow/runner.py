"""One-shot concurrent execution of the arrow protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.arrow.protocol import ArrowNode, init_op
from repro.sim import DelayModel, EventTrace, Node, RunStats, SynchronousNetwork
from repro.topology.spanning import SpanningTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class ArrowResult:
    """Outcome of a one-shot arrow execution.

    Attributes:
        requests: the requesting vertices, sorted.
        tail: the node holding the initial (dummy) queue tail.
        delays: operation id -> completion round.  Operation ids are
            ``("op", v)``; the initial dummy op never appears.
        predecessors: operation id -> predecessor operation id (the
            queuing problem's answer; the first real operation's
            predecessor is ``("init", tail)``).
        stats: engine accounting for the run.
    """

    requests: tuple[int, ...]
    tail: int
    delays: dict[Hashable, int]
    predecessors: dict[Hashable, Hashable]
    stats: RunStats

    @property
    def total_delay(self) -> int:
        """The paper's cost: sum of per-operation completion rounds."""
        return sum(self.delays.values())

    @property
    def max_delay(self) -> int:
        """Largest single operation delay."""
        return max(self.delays.values(), default=0)

    def order(self) -> list[int]:
        """The induced total order as a list of requesting vertices.

        Reconstructed by chaining predecessor pointers from the initial
        dummy operation.

        Raises:
            ValueError: if the predecessor pointers do not form one chain
                over all requests (a protocol bug — tested never to
                happen).
        """
        succ: dict[Hashable, Hashable] = {}
        for op, pred in self.predecessors.items():
            if pred in succ:
                raise ValueError(f"two operations claim predecessor {pred!r}")
            succ[pred] = op
        chain: list[int] = []
        cur: Hashable = init_op(self.tail)
        while cur in succ:
            cur = succ[cur]
            chain.append(cur[1])
        if len(chain) != len(self.requests):
            raise ValueError(
                f"predecessor chain covers {len(chain)} of "
                f"{len(self.requests)} operations"
            )
        return chain


def run_arrow(
    spanning: SpanningTree,
    requests: Iterable[int],
    *,
    tail: int | None = None,
    capacity: int | None = None,
    delay_model: DelayModel | None = None,
    max_rounds: int = 10_000_000,
    trace: EventTrace | None = None,
    metrics: Any | None = None,
    profiler: Any | None = None,
    strict: bool = False,
    node_wrapper: Callable[[Node], Node] | None = None,
    faults: "FaultPlan | None" = None,
    monitors: Any | None = None,
) -> ArrowResult:
    """Run the one-shot concurrent arrow protocol.

    Args:
        spanning: the spanning tree the protocol runs on; messages travel
            only along tree edges.
        requests: the vertices issuing queuing operations at time 0.
        tail: initial queue-tail node (default: the tree root).  The
            arrows are initialised to point toward it along the tree —
            this is the free initialization step of Section 2.2.
        capacity: per-round send/receive message budget per node; defaults
            to the tree's maximum degree, the paper's expanded-time-step
            convention (Section 4).  Pass 1 for the strict model.
        delay_model: per-message link-delay model (default: the paper's
            unit delay; see :mod:`repro.sim.delays` for async adversaries).
        max_rounds: engine safety limit.
        trace: optional :class:`EventTrace` recording engine events (used
            by the determinism sanitizer).
        metrics: optional :class:`repro.obs.MetricsRegistry` the engine
            publishes counters/gauges/histograms into.
        profiler: optional :class:`repro.obs.PhaseProfiler` timing the
            engine phases.
        strict: enable the engine's strict per-round budget assertions.
        node_wrapper: optional adapter applied to every protocol node
            before the run (e.g. :func:`repro.faults.wrap_reliable`); the
            per-operation results are still read off the inner nodes.
        faults: optional :class:`repro.faults.FaultPlan` injected into
            the engine.
        monitors: optional :class:`repro.resilience.MonitorSet` running
            end-of-round invariant checks against the live network.

    Returns:
        An :class:`ArrowResult` with per-operation delays and the induced
        total order.
    """
    tree = spanning.tree
    if tail is None:
        tail = tree.root
    req = tuple(sorted(set(requests)))
    for v in req:
        if not (0 <= v < tree.n):
            raise ValueError(f"request vertex {v} out of range")

    if capacity is None:
        capacity = max(1, spanning.max_degree())

    # Arrows point toward the tail: on the tree rooted at the *tail*, each
    # node's arrow is its parent.  Re-rooting at the tail gives exactly
    # that orientation.
    if tail == tree.root:
        parent_toward_tail = tree.parent
    else:
        from repro.tree import RootedTree

        rerooted = RootedTree.from_edges(tree.n, tree.edges(), root=tail)
        parent_toward_tail = rerooted.parent

    req_set = set(req)
    nodes = {
        v: ArrowNode(v, link=parent_toward_tail[v], requesting=(v in req_set))
        for v in range(tree.n)
    }
    sim_nodes: dict[int, Node] = (
        {v: node_wrapper(n) for v, n in nodes.items()} if node_wrapper else nodes
    )
    net = SynchronousNetwork(
        spanning.as_graph(),
        sim_nodes,
        send_capacity=capacity,
        recv_capacity=capacity,
        delay_model=delay_model,
        trace=trace,
        metrics=metrics,
        profiler=profiler,
        strict=strict,
        faults=faults,
        monitors=monitors,
    )
    stats = net.run(max_rounds=max_rounds)

    predecessors: dict[Hashable, Hashable] = {}
    for v in range(tree.n):
        predecessors.update(nodes[v].pred_found)

    return ArrowResult(
        requests=req,
        tail=tail,
        delays=net.delays.delay_by_op(),
        predecessors=predecessors,
        stats=stats,
    )


def arrow_order_positions(result: ArrowResult) -> dict[int, int]:
    """Vertex -> 1-based rank in the arrow total order (for comparisons)."""
    return {v: i + 1 for i, v in enumerate(result.order())}
