"""The arrow distributed queuing protocol (Raymond 1989; Demmer & Herlihy 1998).

The protocol the paper's upper bounds are about (Section 4): every node
keeps an *arrow* ``link(v)`` pointing along a spanning tree toward the
current queue tail; a queuing request travels along the arrows, flipping
each one to point back the way it came, until it reaches a node whose
arrow points at itself — the operation parked there is the request's
predecessor in the distributed total order.

:func:`run_arrow` executes the one-shot concurrent scenario of the paper
on the synchronous simulator and reports per-operation delays, the
induced total order, and the paper's total-delay cost.
"""

from repro.arrow.protocol import ArrowNode, init_op, op_of
from repro.arrow.runner import ArrowResult, run_arrow
from repro.arrow.analysis import arrow_vs_tsp, ArrowTspComparison
from repro.arrow.longlived import LongLivedResult, run_arrow_longlived

__all__ = [
    "ArrowNode",
    "init_op",
    "op_of",
    "ArrowResult",
    "run_arrow",
    "arrow_vs_tsp",
    "ArrowTspComparison",
    "LongLivedResult",
    "run_arrow_longlived",
]
